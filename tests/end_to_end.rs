//! End-to-end integration: load XMark data into MASS, query through the
//! full compile → optimize → execute pipeline, and validate against the
//! independent DOM oracle.

use vamana::baseline::dom::DomEngine;
use vamana::baseline::XPathEngine;
use vamana::xmark::{generate_string, XmarkConfig};
use vamana::{DocId, Engine, MassStore, VamanaAdapter};

fn xmark_xml() -> &'static str {
    use std::sync::OnceLock;
    static XML: OnceLock<String> = OnceLock::new();
    XML.get_or_init(|| generate_string(&XmarkConfig::with_scale(0.01)))
}

fn engine() -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", xmark_xml()).unwrap();
    Engine::new(store)
}

/// Queries spanning every axis, predicate type and the core functions.
const CROSS_CHECK_QUERIES: &[&str] = &[
    // the paper's five evaluation queries
    "//person/address",
    "//watches/watch/ancestor::person",
    "/descendant::name/parent::*/self::person/address",
    "//itemref/following-sibling::price/parent::*",
    "//province[text()='Vermont']/ancestor::person",
    // every axis at least once
    "/site/people/person",
    "//person/child::name",
    "//city/parent::address",
    "//city/ancestor::person",
    "//city/ancestor-or-self::*",
    "//person[1]/following::open_auction",
    "//price/preceding::itemref",
    "//itemref/following-sibling::*",
    "//price/preceding-sibling::itemref",
    "//person/descendant-or-self::name",
    "//person/self::person",
    "//watch/@open_auction",
    "//person/attribute::id",
    // predicates: value, range, position, boolean, functions
    "//person[address]",
    "//person[not(address)]",
    "//person[address and watches]",
    "//person[address or watches]",
    "//person[@id='person3']",
    "//person[2]",
    "//person[last()]",
    "//person[position() <= 3]",
    "//closed_auction[price > 250]",
    "//closed_auction[price <= 250]",
    "//open_auction[count(bidder) >= 2]",
    "//person[contains(name, 'a')]",
    "//person[starts-with(name, 'Y')]",
    "//item[quantity = 1]",
    // range predicates rewritten onto the numeric value index
    "//price[text() > 250]",
    "//price[text() <= 250]",
    "//initial[text() < 50]",
    "//person[@id = 'person7']",
    "//profile[age > 40]/parent::person",
    "//person[profile/age >= 18]/name",
    "//item[mailbox]",
    "//interest/@category",
    "//person[name][address]",
    // nested predicates
    "//person[address[province]]",
    "//person[watches[watch]]",
    // unions & filters
    "//itemref | //price",
    "(//person)[1]/name",
    // kind tests
    "//name/text()",
    "//address/node()",
    // deep paths
    "/site/open_auctions/open_auction/bidder/increase",
    "//regions//item/location",
];

#[test]
fn vamana_matches_dom_oracle_on_broad_query_set() {
    let vamana_opt = VamanaAdapter::optimized(engine());
    let vamana_dflt = VamanaAdapter::default_plan(engine());
    let oracle = DomEngine::from_xml(xmark_xml()).unwrap();
    for q in CROSS_CHECK_QUERIES {
        let expected = oracle
            .identities(q)
            .unwrap_or_else(|e| panic!("oracle rejects {q}: {e}"));
        let got_opt = vamana_opt
            .identities(q)
            .unwrap_or_else(|e| panic!("vamana-opt rejects {q}: {e}"));
        let got_dflt = vamana_dflt
            .identities(q)
            .unwrap_or_else(|e| panic!("vamana rejects {q}: {e}"));
        assert_eq!(got_opt, expected, "optimized engine differs on {q}");
        assert_eq!(got_dflt, expected, "default engine differs on {q}");
    }
}

#[test]
fn all_thirteen_axes_execute() {
    let e = engine();
    for axis in vamana::flex::Axis::ALL {
        let q = format!("//person/{}::node()", axis.as_str());
        let r = e.query(&q);
        assert!(r.is_ok(), "axis {axis} failed: {:?}", r.err());
    }
}

#[test]
fn optimizer_output_is_always_equivalent_and_never_slower_in_cost() {
    let e = engine();
    for q in CROSS_CHECK_QUERIES {
        let plan = e.compile(q).unwrap();
        let outcome = e.optimize_plan(plan, DocId(0)).unwrap();
        assert!(
            outcome.final_cost <= outcome.initial_cost,
            "{q}: cost rose {} -> {}",
            outcome.initial_cost,
            outcome.final_cost
        );
    }
}

#[test]
fn scalar_evaluation_matches_oracle() {
    let e = engine();
    let oracle = DomEngine::from_xml(xmark_xml()).unwrap();
    for q in [
        "count(//person)",
        "count(//watch)",
        "sum(//closed_auction/price)",
        "count(//person[address])",
        "string-length(string(//person[1]/name))",
    ] {
        let ours = match e.evaluate(DocId(0), q).unwrap() {
            vamana::Value::Num(n) => n,
            other => panic!("expected number from {q}, got {other:?}"),
        };
        let theirs = oracle.eval_number(q).unwrap();
        assert!((ours - theirs).abs() < 1e-6, "{q}: {ours} vs {theirs}");
    }
}

#[test]
fn updates_are_visible_to_queries_and_statistics() {
    let mut e = engine();
    let before = e.query("//person").unwrap().len();
    let people_key = {
        let id = e.store().name_id("people").unwrap();
        let flat = e
            .store()
            .name_index()
            .elements(id)
            .iter()
            .next()
            .unwrap()
            .to_vec();
        vamana::flex::FlexKey::from_flat(flat)
    };
    let p = e
        .store_mut()
        .unwrap()
        .append_element(&people_key, "person")
        .unwrap();
    let n = e.store_mut().unwrap().append_element(&p, "name").unwrap();
    e.store_mut().unwrap().append_text(&n, "Edge Case").unwrap();

    assert_eq!(e.query("//person").unwrap().len(), before + 1);
    assert_eq!(e.query("//person[name='Edge Case']").unwrap().len(), 1);

    // The optimizer's value-index rewrite works against the fresh value.
    let explain = e.explain(DocId(0), "//name[text()='Edge Case']").unwrap();
    assert!(
        explain.applied.contains(&"value-index-step"),
        "{:?}",
        explain.applied
    );

    e.store_mut().unwrap().delete_subtree(&p).unwrap();
    assert_eq!(e.query("//person").unwrap().len(), before);
    assert_eq!(e.query("//person[name='Edge Case']").unwrap().len(), 0);
}

#[test]
fn file_backed_store_round_trips_queries() {
    let dir = std::env::temp_dir().join(format!("vamana-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("auction.mass");
    let mut store = MassStore::create_file(&path, 256).unwrap();
    store.load_xml("auction.xml", xmark_xml()).unwrap();
    let engine = Engine::new(store);
    let in_memory = self::engine();
    for q in [
        "//person/address",
        "//province[text()='Vermont']/ancestor::person",
    ] {
        assert_eq!(
            engine.query(q).unwrap().len(),
            in_memory.query(q).unwrap().len(),
            "{q} differs between file-backed and memory store"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn small_buffer_pool_still_answers_correctly() {
    // Force heavy eviction: 4-page pool over a multi-hundred-page store.
    let mut store = MassStore::open_memory_with_capacity(4);
    store.load_xml("auction.xml", xmark_xml()).unwrap();
    let e = Engine::new(store);
    let full = engine();
    for q in ["//person/address", "//watches/watch/ancestor::person"] {
        assert_eq!(e.query(q).unwrap(), full.query(q).unwrap(), "{q}");
    }
    let stats = e.store().stats();
    assert!(
        stats.buffer.evictions > 0,
        "expected evictions with a tiny pool"
    );
}

#[test]
fn multi_document_stores_answer_per_document() {
    let mut store = MassStore::open_memory();
    store
        .load_xml("a", "<site><person><name>OnlyA</name></person></site>")
        .unwrap();
    store.load_xml("b", xmark_xml()).unwrap();
    let e = Engine::new(store);
    assert_eq!(e.query_doc(DocId(0), "//person").unwrap().len(), 1);
    assert!(e.query_doc(DocId(1), "//person").unwrap().len() > 100);
    // Cross-document query unions both.
    let total = e.query("//person").unwrap().len();
    assert_eq!(total, 1 + e.query_doc(DocId(1), "//person").unwrap().len());
}
