//! Property-based oracle testing: for random documents and random XPath
//! expressions, the VAMANA engine (default *and* optimized plans, so the
//! whole transformation library is exercised) must agree with the
//! independent DOM evaluator node for node.

use proptest::prelude::*;
use vamana::baseline::dom::DomEngine;
use vamana::baseline::XPathEngine;
use vamana::{Engine, MassStore, VamanaAdapter};

const NAMES: &[&str] = &["a", "b", "c", "person", "name"];
const VALUES: &[&str] = &["x", "yy", "Vermont", "7", "12.5"];

/// A random XML tree, rendered as text.
#[derive(Debug, Clone)]
struct Tree {
    name: usize,
    attr: Option<(usize, usize)>,
    text: Option<usize>,
    children: Vec<Tree>,
}

impl Tree {
    fn render(&self, out: &mut String) {
        out.push('<');
        out.push_str(NAMES[self.name]);
        if let Some((n, v)) = self.attr {
            out.push_str(&format!(" {}=\"{}\"", NAMES[n], VALUES[v]));
        }
        out.push('>');
        if let Some(t) = self.text {
            out.push_str(VALUES[t]);
        }
        for c in &self.children {
            c.render(out);
        }
        out.push_str("</");
        out.push_str(NAMES[self.name]);
        out.push('>');
    }
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (
        0..NAMES.len(),
        proptest::option::of((0..NAMES.len(), 0..VALUES.len())),
        proptest::option::of(0..VALUES.len()),
    )
        .prop_map(|(name, attr, text)| Tree {
            name,
            attr,
            text,
            children: Vec::new(),
        });
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            0..NAMES.len(),
            proptest::option::of((0..NAMES.len(), 0..VALUES.len())),
            proptest::option::of(0..VALUES.len()),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attr, text, children)| Tree {
                name,
                attr,
                text,
                children,
            })
    })
}

/// One random location step.
#[derive(Debug, Clone)]
struct RandStep {
    axis: usize,
    test: usize,
    pred: usize,
}

const AXES: &[&str] = &[
    "child",
    "descendant",
    "descendant-or-self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following",
    "following-sibling",
    "preceding",
    "preceding-sibling",
    "self",
    "attribute",
    "namespace",
];

impl RandStep {
    fn render(&self, out: &mut String) {
        out.push_str(AXES[self.axis]);
        out.push_str("::");
        // test: 0..NAMES = name, NAMES = *, NAMES+1 = node(), NAMES+2 = text()
        if self.test < NAMES.len() {
            out.push_str(NAMES[self.test]);
        } else if self.test == NAMES.len() {
            out.push('*');
        } else if self.test == NAMES.len() + 1 {
            out.push_str("node()");
        } else {
            out.push_str("text()");
        }
        match self.pred {
            0 => {}
            1 => out.push_str("[1]"),
            2 => out.push_str("[last()]"),
            3 => out.push_str(&format!("[{}]", NAMES[0])),
            4 => out.push_str(&format!("[@{} = '{}']", NAMES[1], VALUES[0])),
            5 => out.push_str(&format!("[text() = '{}']", VALUES[2])),
            6 => out.push_str("[position() <= 2]"),
            7 => out.push_str(&format!("[{}/{}]", NAMES[1], NAMES[2])),
            8 => out.push_str(&format!("[.//{}]", NAMES[4])),
            9 => out.push_str(&format!("[count({}) > 1]", NAMES[0])),
            10 => out.push_str(&format!("[{} = '{}']", NAMES[3], VALUES[1])),
            11 => out.push_str(&format!("[not({})]", NAMES[2])),
            12 => out.push_str("[text() > 5]"),
            13 => out.push_str(&format!("[@{} <= 10]", NAMES[0])),
            _ => out.push_str(&format!("[{}[2]]", NAMES[0])),
        }
    }
}

fn query_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        (0..AXES.len(), 0..NAMES.len() + 3, 0usize..15).prop_map(|(axis, test, pred)| RandStep {
            axis,
            test,
            pred,
        }),
        1..4,
    )
    .prop_map(|steps| {
        let mut q = String::from("/");
        // Absolute path: /step/step...
        for (i, s) in steps.iter().enumerate() {
            if i > 0 {
                q.push('/');
            }
            s.render(&mut q);
        }
        q
    })
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(192)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    #[test]
    fn vamana_agrees_with_dom_on_random_inputs(tree in tree_strategy(), query in query_strategy()) {
        let mut xml = String::new();
        tree.render(&mut xml);

        let oracle = DomEngine::from_xml(&xml).expect("oracle parse");
        let expected = oracle.identities(&query).expect("oracle eval");

        let build = || {
            let mut store = MassStore::open_memory();
            store.load_xml("doc", &xml).expect("load");
            Engine::new(store)
        };
        let optimized = VamanaAdapter::optimized(build());
        let default = VamanaAdapter::default_plan(build());

        let got_opt = optimized.identities(&query).expect("vamana-opt eval");
        prop_assert_eq!(&got_opt, &expected, "optimized differs on `{}` over {}", query, xml);
        let got_dflt = default.identities(&query).expect("vamana eval");
        prop_assert_eq!(&got_dflt, &expected, "default differs on `{}` over {}", query, xml);
    }

    #[test]
    fn mass_round_trips_random_documents(tree in tree_strategy()) {
        let mut xml = String::new();
        tree.render(&mut xml);
        let doc = vamana::xml::parse(&xml).expect("parse");
        let mut store = MassStore::open_memory();
        store.load_document("doc", &doc).expect("load");

        // Every element/attribute/text node of the DOM is findable in
        // MASS, with the same counts per name.
        use std::collections::HashMap;
        let mut dom_elems: HashMap<String, u64> = HashMap::new();
        let mut dom_texts = 0u64;
        for n in doc.descendants(vamana::xml::Document::ROOT) {
            match doc.kind(n) {
                vamana::xml::NodeKind::Element { name } => {
                    *dom_elems.entry(name.to_string()).or_default() += 1;
                }
                vamana::xml::NodeKind::Text { .. } => dom_texts += 1,
                _ => {}
            }
        }
        for (name, count) in dom_elems {
            let id = store.name_id(&name).expect("interned");
            prop_assert_eq!(store.count_elements(id), count, "count mismatch for {}", name);
        }
        prop_assert_eq!(store.count_text_in(&vamana::flex::KeyRange::all()), dom_texts);

        // Reconstructed string value of the root element matches the DOM.
        let root_elem = doc.root_element().expect("root");
        let dom_value = doc.string_value(root_elem);
        let site = store.documents()[0].doc_key.clone();
        let mass_value = store.string_value(&site).expect("string value");
        prop_assert_eq!(dom_value, mass_value);
    }
}
