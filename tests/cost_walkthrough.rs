//! Pins the paper's §VI-B cost-estimation walkthrough (Figs 6 and 7) on
//! a real generated document: not the absolute numbers (those depend on
//! scale) but every *relationship* the text derives.

use vamana::core::cost::{estimate, PlanCosts};
use vamana::core::opt::cleanup::cleanup;
use vamana::core::{build_plan, QueryPlan};
use vamana::flex::KeyRange;
use vamana::xmark::{generate_string, XmarkConfig};
use vamana::MassStore;

fn store() -> MassStore {
    let mut s = MassStore::open_memory();
    s.load_xml(
        "auction.xml",
        &generate_string(&XmarkConfig::with_scale(0.01)),
    )
    .unwrap();
    s
}

fn costed(s: &MassStore, q: &str) -> (QueryPlan, PlanCosts) {
    let mut plan = build_plan(&vamana::xpath::parse(q).unwrap()).unwrap();
    cleanup(&mut plan);
    let scope = KeyRange::subtree(&s.documents()[0].doc_key);
    let costs = estimate(&plan, s, &scope).unwrap();
    (plan, costs)
}

#[test]
fn fig6_walkthrough_relationships_hold() {
    let s = store();
    // Paper Q1/§III (eval Q3) after clean-up:
    // descendant::name / parent::person / child::address
    let (plan, costs) = costed(&s, "/descendant::name/parent::*/self::person/address");
    let path = plan.context_path(); // top-down: address, person, name
    assert_eq!(path.len(), 3);
    let addr = costs.get(path[0]).unwrap();
    let person = costs.get(path[1]).unwrap();
    let name = costs.get(path[2]).unwrap();

    // Leaf (case 1): IN = OUT = COUNT.
    assert_eq!(name.input, name.count.unwrap());
    assert_eq!(name.output, name.count.unwrap());

    // XMark shape: more names than persons (items/categories have names).
    assert!(name.count.unwrap() > person.count.unwrap());

    // parent::person (up-axis, Table I): OUT = IN even though COUNT < IN.
    assert_eq!(person.input, name.output);
    assert_eq!(person.output, person.input);
    assert!(person.count.unwrap() < person.input);

    // child::address (down-axis): COUNT < IN, so OUT = COUNT — "there is
    // a smaller number of address than person ... the upper bound is
    // determined by φ2" (§VI-C.1).
    assert_eq!(addr.input, person.output);
    assert!(addr.count.unwrap() < addr.input);
    assert_eq!(addr.output, addr.count.unwrap());

    // The address step is the most selective operator in L(P) — the
    // optimizer's starting point.
    assert_eq!(costs.ordered[0].0, path[0]);
    assert!(addr.selectivity() < person.selectivity());
}

#[test]
fn fig7_walkthrough_relationships_hold() {
    let s = store();
    // One unique full name anchors TC ≈ small, as 'Yung Flach' in Fig 7.
    // Find a name value that occurs exactly once.
    let unique = {
        let name_id = s.name_id("name").unwrap();
        let mut found = None;
        for flat in s.name_index().elements(name_id).iter().take(200) {
            let key = vamana::flex::FlexKey::from_flat(flat.to_vec());
            let v = s.string_value(&key).unwrap();
            if !v.is_empty() && s.text_count(&v) == 1 {
                found = Some(v);
                break;
            }
        }
        found.expect("some name value occurs exactly once")
    };
    let q = format!("//name[text() = '{unique}']/following-sibling::emailaddress");
    let (plan, costs) = costed(&s, &q);
    let path = plan.context_path(); // following-sibling, name
    assert_eq!(path.len(), 2);
    let sib = costs.get(path[0]).unwrap();
    let name = costs.get(path[1]).unwrap();

    // TC caps the name step's output at 1 (case 5), out of thousands in.
    assert_eq!(name.output, 1);
    assert!(name.input > 100);

    // The following-sibling step (up/lateral, Table I) is bounded by its
    // input: at most one tuple flows on.
    assert_eq!(sib.input, 1);
    assert_eq!(sib.output, 1);

    // δ of the name step is (near) zero — it ranks among the most
    // selective operators of L(P) (tied with its literal/β children,
    // which share the TC-capped output).
    assert!(name.selectivity() < 0.01);
    let rank = costs
        .ordered
        .iter()
        .position(|(id, _)| *id == path[1])
        .unwrap();
    assert!(rank <= 3, "name step ranked {rank} in L(P)");
}

#[test]
fn scope_controls_count_granularity() {
    // §I.A: costs "over the entire database ... or specific to a
    // particular XML document or even a specific point within one".
    let mut s = MassStore::open_memory();
    s.load_xml("a", "<site><person><name>A</name></person></site>")
        .unwrap();
    s.load_xml("b", &generate_string(&XmarkConfig::with_scale(0.005)))
        .unwrap();

    let name = s.name_id("name").unwrap();
    let whole_db = s.count_elements_in(name, &KeyRange::all());
    let doc_a = s.count_elements_in(name, &KeyRange::subtree(&s.documents()[0].doc_key));
    let doc_b = s.count_elements_in(name, &KeyRange::subtree(&s.documents()[1].doc_key));
    assert_eq!(doc_a, 1);
    assert_eq!(whole_db, doc_a + doc_b);

    // A specific point: one person's subtree within document b.
    let person = s.name_id("person").unwrap();
    let some_person = vamana::flex::FlexKey::from_flat(
        s.name_index()
            .elements(person)
            .iter()
            .nth(1)
            .unwrap()
            .to_vec(),
    );
    let point = s.count_elements_in(name, &KeyRange::subtree(&some_person));
    assert!(point >= 1 && point < doc_b);
}
