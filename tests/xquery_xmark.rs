//! XQuery-lite over generated XMark data: FLWOR results cross-checked
//! against equivalent plain-XPath evaluations (which are themselves
//! oracle-tested), closing the loop on the paper's XQuery positioning.

use vamana::xquery::{Item, XQueryEngine};
use vamana::{Engine, MassStore};

fn engine() -> Engine {
    let xml = vamana::xmark::generate_string(&vamana::xmark::XmarkConfig::with_scale(0.008));
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).unwrap();
    Engine::new(store)
}

fn node_count(items: &[Item]) -> usize {
    items.iter().filter(|i| matches!(i, Item::Node(_))).count()
}

#[test]
fn flwor_for_matches_plain_xpath() {
    let e = engine();
    let xq = XQueryEngine::new(&e);
    let via_flwor = xq.eval("for $p in //person return $p/name").unwrap();
    let via_xpath = e.query("//person/name").unwrap();
    assert_eq!(node_count(&via_flwor), via_xpath.len());
}

#[test]
fn flwor_where_matches_predicate() {
    let e = engine();
    let xq = XQueryEngine::new(&e);
    let via_flwor = xq
        .eval("for $p in //person where $p/address/province = 'Vermont' return $p")
        .unwrap();
    let via_xpath = e.query("//person[address/province = 'Vermont']").unwrap();
    assert_eq!(node_count(&via_flwor), via_xpath.len());
    assert!(
        node_count(&via_flwor) > 0,
        "generator must produce Vermonters"
    );
}

#[test]
fn flwor_value_join_matches_manual_check() {
    let e = engine();
    let xq = XQueryEngine::new(&e);
    // Watches reference open auctions by id: join them through values.
    let joined = xq
        .eval(
            "for $w in //watches/watch, $a in //open_auction \
             where $w/@open_auction = $a/@id \
             return $a",
        )
        .unwrap();
    // Every watch whose target auction exists contributes one binding.
    let watches = e.query("//watches/watch").unwrap();
    let mut expected = 0;
    for w in &watches {
        let refs = e.query_from(w, "@open_auction").unwrap();
        let target = e.string_values(&refs).unwrap().pop().unwrap();
        let hit = e
            .query(&format!("//open_auction[@id = '{target}']"))
            .unwrap()
            .len();
        expected += hit;
    }
    assert_eq!(joined.len(), expected);
    assert!(expected > 0);
}

#[test]
fn ordered_report_is_sorted() {
    let e = engine();
    let xq = XQueryEngine::new(&e);
    let out = xq
        .eval_to_xml(
            "for $c in //closed_auction \
             order by $c/price/text() descending \
             return <p>{ $c/price/text() }</p>",
        )
        .unwrap();
    let prices: Vec<f64> = out
        .split("<p>")
        .filter_map(|s| s.split("</p>").next())
        .filter_map(|s| s.parse().ok())
        .collect();
    assert!(!prices.is_empty());
    assert!(
        prices.windows(2).all(|w| w[0] >= w[1]),
        "not descending: {prices:?}"
    );
}

#[test]
fn constructors_nest_and_aggregate() {
    let e = engine();
    let xq = XQueryEngine::new(&e);
    let out = xq
        .eval_to_xml("<report><persons>{ count(//person) }</persons><auctions>{ count(//open_auction) }</auctions></report>")
        .unwrap();
    assert!(out.starts_with("<report><persons>"), "{out}");
    assert!(out.ends_with("</auctions></report>"), "{out}");
    // The embedded counts agree with the engine.
    let persons = e.query("//person").unwrap().len();
    assert!(
        out.contains(&format!("<persons>{persons}</persons>")),
        "{out}"
    );
}
