//! Concurrent read access: queries take `&Engine`, and the MASS buffer
//! pool synchronizes internally, so many threads can query the same
//! store simultaneously. These tests pin that property down (including
//! the `Send + Sync` bounds) and check results stay correct under
//! parallel load.

use vamana::xmark::{generate_string, XmarkConfig};
use vamana::{Engine, MassStore};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn store_and_engine_are_send_and_sync() {
    assert_send_sync::<MassStore>();
    assert_send_sync::<Engine>();
}

#[test]
fn parallel_queries_agree_with_serial_execution() {
    let xml = generate_string(&XmarkConfig::with_scale(0.005));
    let mut store = MassStore::open_memory_with_capacity(16); // force pool contention
    store.load_xml("auction.xml", &xml).unwrap();
    let engine = Engine::new(store);

    let queries = [
        "//person/address",
        "//watches/watch/ancestor::person",
        "//province[text()='Vermont']/ancestor::person",
        "//itemref/following-sibling::price/parent::*",
        "//person[@id='person3']",
    ];
    let expected: Vec<usize> = queries
        .iter()
        .map(|q| engine.query(q).unwrap().len())
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for round in 0..5 {
                    for (q, want) in queries.iter().zip(&expected) {
                        let got = engine.query(q).unwrap().len();
                        assert_eq!(got, *want, "{q} differed in round {round}");
                    }
                }
            });
        }
    });
}

#[test]
fn parallel_mixed_queries_and_scalar_evaluation() {
    let xml = generate_string(&XmarkConfig::with_scale(0.005));
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).unwrap();
    let engine = Engine::new(store);
    let persons = engine.query("//person").unwrap().len() as f64;

    std::thread::scope(|scope| {
        let count_thread = scope.spawn(|| {
            for _ in 0..20 {
                match engine
                    .evaluate(vamana::DocId(0), "count(//person)")
                    .unwrap()
                {
                    vamana::Value::Num(n) => assert_eq!(n, persons),
                    other => panic!("{other:?}"),
                }
            }
        });
        let query_thread = scope.spawn(|| {
            for _ in 0..20 {
                assert!(!engine.query("//name").unwrap().is_empty());
            }
        });
        count_thread.join().unwrap();
        query_thread.join().unwrap();
    });
}
