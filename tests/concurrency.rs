//! Concurrent read access: queries take `&Engine`, and the MASS buffer
//! pool synchronizes internally, so many threads can query the same
//! store simultaneously. These tests pin that property down (including
//! the `Send + Sync` bounds) and check results stay correct under
//! parallel load.

use std::sync::Arc;
use vamana::xmark::{generate_string, XmarkConfig};
use vamana::{Engine, MassStore, SharedEngine};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn store_and_engine_are_send_and_sync() {
    assert_send_sync::<MassStore>();
    assert_send_sync::<Engine>();
    assert_send_sync::<SharedEngine>();
}

#[test]
fn parallel_queries_agree_with_serial_execution() {
    let xml = generate_string(&XmarkConfig::with_scale(0.005));
    let mut store = MassStore::open_memory_with_capacity(16); // force pool contention
    store.load_xml("auction.xml", &xml).unwrap();
    let engine = Engine::new(store);

    let queries = [
        "//person/address",
        "//watches/watch/ancestor::person",
        "//province[text()='Vermont']/ancestor::person",
        "//itemref/following-sibling::price/parent::*",
        "//person[@id='person3']",
    ];
    let expected: Vec<usize> = queries
        .iter()
        .map(|q| engine.query(q).unwrap().len())
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for round in 0..5 {
                    for (q, want) in queries.iter().zip(&expected) {
                        let got = engine.query(q).unwrap().len();
                        assert_eq!(got, *want, "{q} differed in round {round}");
                    }
                }
            });
        }
    });
}

/// Serving-layer acceptance: eight threads issuing a mixed query load
/// against one shared engine must each see exactly the node sets (keys,
/// not just cardinalities) that single-threaded execution produces.
#[test]
fn eight_threads_mixed_queries_match_single_threaded_results() {
    let xml = generate_string(&XmarkConfig::with_scale(0.005));
    let mut store = MassStore::open_memory_with_capacity(16); // force pool contention
    store.load_xml("auction.xml", &xml).unwrap();
    let engine = Arc::new(Engine::new(store));

    let queries = [
        "//person/name",
        "//open_auction/bidder",
        "//address[province]",
        "//closed_auction/itemref",
        "//category",
        "//person[watches]",
    ];
    let expected: Vec<_> = queries.iter().map(|q| engine.query(q).unwrap()).collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let engine = Arc::clone(&engine);
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..6 {
                    // Each thread starts at a different query so the mix
                    // genuinely interleaves.
                    let i = (t + round) % queries.len();
                    let got = engine.query(queries[i]).unwrap();
                    assert_eq!(got, expected[i], "{} in round {round}", queries[i]);
                }
            });
        }
    });
}

/// A cached plan must stop validating once `load_xml` mutates the store:
/// the generation bump turns the next lookup into a miss.
#[test]
fn plan_cache_entries_are_invalidated_by_load_xml() {
    use vamana::server::PlanCache;

    let mut store = MassStore::open_memory();
    store.load_xml("first", "<r><a>1</a></r>").unwrap();
    let shared = SharedEngine::new(Engine::new(store));
    let cache = PlanCache::new(16);
    let doc = vamana::DocId(0);

    let generation = shared.generation();
    let plan = Arc::new(shared.read().compile("//a").unwrap());
    cache.insert("//a", doc, generation, plan);
    assert!(cache.get("//a", doc, generation).is_some());

    shared.load_xml("second", "<r><a>2</a></r>").unwrap();
    let after = shared.generation();
    assert!(
        after > generation,
        "load_xml must bump the store generation"
    );
    assert!(
        cache.get("//a", doc, after).is_none(),
        "stale plan served after load_xml"
    );
    assert!(cache.is_empty(), "stale entry must be evicted on lookup");
}

#[test]
fn parallel_mixed_queries_and_scalar_evaluation() {
    let xml = generate_string(&XmarkConfig::with_scale(0.005));
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).unwrap();
    let engine = Engine::new(store);
    let persons = engine.query("//person").unwrap().len() as f64;

    std::thread::scope(|scope| {
        let count_thread = scope.spawn(|| {
            for _ in 0..20 {
                match engine
                    .evaluate(vamana::DocId(0), "count(//person)")
                    .unwrap()
                {
                    vamana::Value::Num(n) => assert_eq!(n, persons),
                    other => panic!("{other:?}"),
                }
            }
        });
        let query_thread = scope.spawn(|| {
            for _ in 0..20 {
                assert!(!engine.query("//name").unwrap().is_empty());
            }
        });
        count_thread.join().unwrap();
        query_thread.join().unwrap();
    });
}
