//! # vamana
//!
//! Umbrella crate for the VAMANA reproduction — *"VAMANA: A Scalable
//! Cost-Driven XPath Engine"* (Raghavan, Deschler & Rundensteiner,
//! ICDE 2005) — re-exporting every layer of the stack:
//!
//! | layer | crate |
//! |---|---|
//! | XML model & parser | [`xml`] |
//! | FLEX structural keys | [`flex`] |
//! | MASS storage structure | [`mass`] |
//! | XPath 1.0 compiler | [`xpath`] |
//! | **VAMANA engine** (algebra, cost model, optimizer, executor) | [`core`] |
//! | baseline engines (DOM, structural join) | [`baseline`] |
//! | XMark-style data generator | [`xmark`] |
//! | concurrent query service (TCP protocol, plan cache, metrics) | [`server`] |
//!
//! ```
//! use vamana::{Engine, MassStore};
//!
//! let mut store = MassStore::open_memory();
//! store.load_xml("auction",
//!     "<site><person id='p0'><name>Yung Flach</name></person></site>").unwrap();
//! let engine = Engine::new(store);
//! assert_eq!(engine.query("//person[name = 'Yung Flach']").unwrap().len(), 1);
//! ```

pub use vamana_baseline as baseline;
pub use vamana_core as core;
pub use vamana_flex as flex;
pub use vamana_mass as mass;
pub use vamana_server as server;
pub use vamana_xmark as xmark;
pub use vamana_xml as xml;
pub use vamana_xpath as xpath;
pub use vamana_xquery as xquery;

pub use vamana_core::{Engine, EngineOptions, Explain, QueryProfile, SharedEngine, Value};
pub use vamana_mass::{DocId, MassStore, NodeEntry};

use vamana_baseline::{BaselineError, NodeIdentity, XPathEngine};

/// Adapter that lets a VAMANA [`Engine`] be driven through the
/// cross-engine [`XPathEngine`] interface used by the benchmark harness
/// and the correctness oracle tests.
pub struct VamanaAdapter {
    engine: Engine,
    label: String,
}

impl VamanaAdapter {
    /// Wraps an engine with optimization on ("VQP-OPT" in the paper's
    /// charts).
    pub fn optimized(mut engine: Engine) -> Self {
        engine.options_mut().optimize = true;
        VamanaAdapter {
            engine,
            label: "vamana-opt".to_string(),
        }
    }

    /// Wraps an engine with optimization off (the paper's "VQP": default
    /// plans executed as submitted).
    pub fn default_plan(mut engine: Engine) -> Self {
        engine.options_mut().optimize = false;
        VamanaAdapter {
            engine,
            label: "vamana-default".to_string(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl XPathEngine for VamanaAdapter {
    fn label(&self) -> &str {
        &self.label
    }

    fn count(&self, xpath: &str) -> Result<usize, BaselineError> {
        self.engine
            .query(xpath)
            .map(|r| r.len())
            .map_err(|e| BaselineError::Unsupported(e.to_string()))
    }

    fn identities(&self, xpath: &str) -> Result<Vec<NodeIdentity>, BaselineError> {
        let entries = self
            .engine
            .query(xpath)
            .map_err(|e| BaselineError::Unsupported(e.to_string()))?;
        let names = self
            .engine
            .names_of(&entries)
            .map_err(|e| BaselineError::Unsupported(e.to_string()))?;
        let values = self
            .engine
            .string_values(&entries)
            .map_err(|e| BaselineError::Unsupported(e.to_string()))?;
        Ok(names
            .into_iter()
            .zip(values)
            .map(|(name, value)| NodeIdentity { name, value })
            .collect())
    }
}
