//! Engine shootout: run the paper's five evaluation queries on one
//! generated document across all four engines (VAMANA default, VAMANA
//! optimized, DOM traversal, structural join) and print a timing table —
//! a one-document preview of Figures 12–16.
//!
//! ```sh
//! cargo run --release --example engine_shootout [megabytes]
//! ```

use std::time::Instant;
use vamana::baseline::dom::DomEngine;
use vamana::baseline::join::StructuralJoinEngine;
use vamana::baseline::XPathEngine;
use vamana::xmark::{generate_string, scale};
use vamana::{Engine, MassStore, VamanaAdapter};

const QUERIES: &[(&str, &str)] = &[
    ("Q1", "//person/address"),
    ("Q2", "//watches/watch/ancestor::person"),
    ("Q3", "/descendant::name/parent::*/self::person/address"),
    ("Q4", "//itemref/following-sibling::price/parent::*"),
    ("Q5", "//province[text()='Vermont']/ancestor::person"),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let megabytes: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2.0);
    eprintln!("generating ~{megabytes} MB XMark document...");
    let xml = generate_string(&scale::config_for_megabytes(megabytes));
    eprintln!("actual size: {:.1} MB", xml.len() as f64 / 1_048_576.0);

    eprintln!("building engines...");
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml)?;
    let vamana_opt = VamanaAdapter::optimized(Engine::new(store));
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml)?;
    let vamana_default = VamanaAdapter::default_plan(Engine::new(store));
    let dom = DomEngine::from_xml(&xml)?;
    let join = StructuralJoinEngine::from_xml(&xml)?;

    let engines: Vec<&dyn XPathEngine> = vec![&vamana_opt, &vamana_default, &dom, &join];

    println!(
        "\n{:<4} {:<16} {:>10} {:>12}",
        "qry", "engine", "results", "time"
    );
    println!("{}", "-".repeat(46));
    for (label, query) in QUERIES {
        for engine in &engines {
            let start = Instant::now();
            match engine.count(query) {
                Ok(n) => {
                    println!(
                        "{:<4} {:<16} {:>10} {:>10.2?}",
                        label,
                        engine.label(),
                        n,
                        start.elapsed()
                    );
                }
                Err(e) => {
                    println!(
                        "{:<4} {:<16} {:>10} {:>12}",
                        label,
                        engine.label(),
                        "-",
                        "unsupported"
                    );
                    let _ = e;
                }
            }
        }
        println!();
    }
    Ok(())
}
