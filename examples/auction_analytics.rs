//! Auction analytics: a realistic workload over a generated XMark
//! auction site — the use case the paper's introduction motivates
//! (structural queries over large XML data), including live updates with
//! always-fresh statistics.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use vamana::xmark::{generate, XmarkConfig};
use vamana::{DocId, Engine, MassStore, Value};

fn num(v: Value) -> f64 {
    match v {
        Value::Num(n) => n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = XmarkConfig::with_scale(0.02);
    let doc = generate(&config);
    let mut store = MassStore::open_memory();
    store.load_document("auction.xml", &doc)?;
    let mut engine = Engine::new(store);
    let d = DocId(0);

    println!("== auction site report ==");
    println!(
        "persons:          {}",
        num(engine.evaluate(d, "count(//person)")?)
    );
    println!(
        "open auctions:    {}",
        num(engine.evaluate(d, "count(//open_auction)")?)
    );
    println!(
        "closed auctions:  {}",
        num(engine.evaluate(d, "count(//closed_auction)")?)
    );
    println!(
        "items:            {}",
        num(engine.evaluate(d, "count(//item)")?)
    );
    println!(
        "gross closed-auction volume: {:.2}",
        num(engine.evaluate(d, "sum(//closed_auction/price)")?)
    );

    // Who watches the most auctions?
    let watchers = engine.query_doc(d, "//person[count(watches/watch) >= 3]/name")?;
    println!("\npersons watching ≥3 auctions: {}", watchers.len());
    for name in engine.string_values(&watchers)?.iter().take(5) {
        println!("  {name}");
    }

    // Vermont residents (Q5's shape) and their email addresses.
    let vermonters = engine.query_doc(
        d,
        "//province[text()='Vermont']/ancestor::person/emailaddress",
    )?;
    println!("\nVermont residents: {}", vermonters.len());
    for email in engine.string_values(&vermonters)?.iter().take(5) {
        println!("  {email}");
    }

    // Expensive closed auctions via a range predicate.
    let pricey = engine.query_doc(d, "//closed_auction[price > 450]")?;
    println!("\nclosed auctions above 450: {}", pricey.len());

    // Update the store: register a new person, then show the statistics
    // (and therefore the optimizer's costs) reflect it immediately —
    // the paper's no-histogram freshness property.
    let person_name = engine.store().name_id("person").expect("persons exist");
    let before = engine.store().count_elements(person_name);
    let people_key = {
        let people = engine.store().name_id("people").expect("people element");
        let flat = engine
            .store()
            .name_index()
            .elements(people)
            .iter()
            .next()
            .expect("one people element")
            .to_vec();
        vamana::flex::FlexKey::from_flat(flat)
    };
    let store = engine.store_mut()?;
    let new_person = store.append_element(&people_key, "person")?;
    let name_el = store.append_element(&new_person, "name")?;
    store.append_text(&name_el, "Freshly Inserted")?;
    let after = engine.store().count_elements(person_name);
    println!("\nCOUNT(person): {before} -> {after} (no ANALYZE required)");
    let found = engine.query_doc(d, "//person[name='Freshly Inserted']")?;
    println!("query finds the new person: {}", found.len() == 1);
    Ok(())
}
