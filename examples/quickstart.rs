//! Quickstart: load an XML document into MASS and run XPath queries with
//! the cost-driven VAMANA engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vamana::{Engine, MassStore};

const AUCTION: &str = r#"<site>
  <people>
    <person id="person144">
      <name>Yung Flach</name>
      <emailaddress>Flach@auth.gr</emailaddress>
      <address>
        <street>92 Pfisterer St</street>
        <city>Monroe</city>
        <country>United States</country>
        <zipcode>12</zipcode>
      </address>
      <watches>
        <watch open_auction="open_auction108"/>
        <watch open_auction="open_auction94"/>
        <watch open_auction="open_auction110"/>
      </watches>
    </person>
    <person id="person145">
      <name>Ann Smith</name>
      <emailaddress>smith@acme.com</emailaddress>
    </person>
  </people>
</site>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load documents into the MASS storage structure.
    let mut store = MassStore::open_memory();
    store.load_xml("auction", AUCTION)?;
    println!(
        "loaded: {} tuples on {} pages ({:.1} tuples/page)",
        store.stats().tuples,
        store.stats().pages,
        store.stats().tuples_per_page()
    );

    // 2. Wrap the store in an engine (optimizer on by default).
    let engine = Engine::new(store);

    // 3. Run the paper's running-example queries.
    let q1 = "descendant::name/parent::*/self::person/address";
    let hits = engine.query(q1)?;
    println!("\nQ1 {q1}");
    for (name, value) in engine
        .names_of(&hits)?
        .into_iter()
        .zip(engine.string_values(&hits)?)
    {
        println!("  <{name}> {value}");
    }

    let q2 = "//name[text() = 'Yung Flach']/following-sibling::emailaddress";
    let hits = engine.query(q2)?;
    println!("\nQ2 {q2}");
    for value in engine.string_values(&hits)? {
        println!("  {value}");
    }

    // 4. Scalar expressions work too.
    println!(
        "\ncount(//watch) = {:?}",
        engine.evaluate(vamana::DocId(0), "count(//watch)")?
    );

    // 5. Exact, index-fed statistics (no histograms): the counts the cost
    //    model uses are always up to date.
    let person = engine.store().name_id("person").expect("person occurs");
    println!("COUNT(person) = {}", engine.store().count_elements(person));
    println!(
        "TC('Yung Flach') = {}",
        engine.store().text_count("Yung Flach")
    );
    Ok(())
}
