//! Cost explanation: reproduce the paper's Figures 6–9 on a generated
//! XMark document — default plan vs optimized plan, annotated with the
//! live COUNT/TC/IN/OUT statistics the optimizer used.
//!
//! ```sh
//! cargo run --release --example cost_explain
//! ```

use vamana::xmark::{generate, XmarkConfig};
use vamana::{DocId, Engine, MassStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = generate(&XmarkConfig::with_scale(0.02));
    let mut store = MassStore::open_memory();
    store.load_document("auction.xml", &doc)?;
    let engine = Engine::new(store);

    for (label, query) in [
        (
            "Q3 (paper §III Q1, Figs 5/6/8/11)",
            "/descendant::name/parent::*/self::person/address",
        ),
        (
            "Q2 (paper §III Q2, Figs 7/9)",
            "//name[text() = 'Yung Flach']/following-sibling::emailaddress",
        ),
        ("Q1 (evaluation)", "//person/address"),
        (
            "Q5 (evaluation)",
            "//province[text()='Vermont']/ancestor::person",
        ),
    ] {
        let explain = engine.explain(DocId(0), query)?;
        println!("==== {label}");
        println!("query: {query}\n");
        println!("default plan (Σ tuple volume = {}):", explain.default_cost);
        println!("{}", explain.default_plan);
        println!(
            "optimized plan (Σ tuple volume = {}, rules applied: {:?}, {} iteration(s)):",
            explain.optimized_cost, explain.applied, explain.iterations
        );
        println!("{}", explain.optimized_plan);
        let n = engine.query_doc(DocId(0), query)?.len();
        println!("result size: {n}\n");
    }
    Ok(())
}
