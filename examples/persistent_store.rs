//! Persistence: build a file-backed MASS store, checkpoint it, reopen it
//! in a second "session", and keep querying — including after updates.
//!
//! ```sh
//! cargo run --release --example persistent_store
//! ```

use vamana::xmark::{generate_string, XmarkConfig};
use vamana::{Engine, MassStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("vamana-persistent-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("auction.mass");

    // Session 1: create, load, checkpoint.
    {
        let mut store = MassStore::create_file(&path, 512)?;
        let xml = generate_string(&XmarkConfig::with_scale(0.01));
        store.load_xml("auction.xml", &xml)?;
        store.checkpoint()?;
        let stats = store.stats();
        println!(
            "session 1: loaded {} tuples onto {} pages ({} distinct names), checkpointed",
            stats.tuples, stats.pages, stats.distinct_names
        );
    } // store dropped — only the files remain

    // Session 2: reopen and query.
    {
        let store = MassStore::open_file(&path, 512)?;
        println!(
            "session 2: recovered {} tuples / {} documents from disk",
            store.stats().tuples,
            store.documents().len()
        );
        let mut engine = Engine::new(store);
        let vermonters = engine.query("//province[text()='Vermont']/ancestor::person")?;
        println!("Vermont residents found after reopen: {}", vermonters.len());

        // Update, checkpoint again.
        let people_key = {
            let id = engine.store().name_id("people").expect("people");
            let flat = engine
                .store()
                .name_index()
                .elements(id)
                .iter()
                .next()
                .expect("one")
                .to_vec();
            vamana::flex::FlexKey::from_flat(flat)
        };
        let p = engine.store_mut()?.append_element(&people_key, "person")?;
        let n = engine.store_mut()?.append_element(&p, "name")?;
        engine.store_mut()?.append_text(&n, "Persisted Person")?;
        engine.checkpoint()?;
        println!("session 2: inserted one person and checkpointed");
    }

    // Session 3: the update survived.
    {
        let store = MassStore::open_file(&path, 512)?;
        let engine = Engine::new(store);
        let found = engine.query("//person[name='Persisted Person']")?;
        println!(
            "session 3: update visible after reopen: {}",
            found.len() == 1
        );
        let stats = engine.store().stats();
        println!(
            "session 3: buffer pool read {} pages to answer (of {} total)",
            stats.buffer.hits + stats.buffer.misses,
            stats.pages
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
