//! FLWOR reporting: run XQuery-lite expressions over a generated XMark
//! auction site — the "outer expression language" role the paper assigns
//! VAMANA in §V-B/§VII, where location-step operators receive their
//! context nodes from another expression.
//!
//! ```sh
//! cargo run --release --example flwor_report
//! ```

use vamana::xmark::{generate, XmarkConfig};
use vamana::xquery::XQueryEngine;
use vamana::{Engine, MassStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = generate(&XmarkConfig::with_scale(0.01));
    let mut store = MassStore::open_memory();
    store.load_document("auction.xml", &doc)?;
    let engine = Engine::new(store);
    let xq = XQueryEngine::new(&engine);

    println!("== site summary ==");
    println!(
        "{}",
        xq.eval_to_xml(
            "<summary>{ count(//person) } persons, { count(//open_auction) } open auctions</summary>"
        )?
    );

    println!("\n== Vermont residents (alphabetical) ==");
    let report = xq.eval_to_xml(
        "for $p in //person \
         where $p/address/province = 'Vermont' \
         order by $p/name \
         return <resident id=\"x\">{ $p/name/text() }</resident>",
    )?;
    for line in report
        .split("</resident>")
        .filter(|s| !s.is_empty())
        .take(8)
    {
        println!("  {line}</resident>");
    }

    println!("\n== five most-watched-style pairing (value join via FLWOR) ==");
    let pairs = xq.eval(
        "for $w in //watches/watch \
         return $w",
    )?;
    println!("  watch references bound: {}", pairs.len());

    println!("\n== expensive closed auctions ==");
    let out = xq.eval_to_xml(
        "for $c in //closed_auction \
         where $c/price/text() > 480 \
         order by $c/price/text() descending \
         return <sale>{ $c/price/text() }</sale>",
    )?;
    println!("  {out}");
    Ok(())
}
