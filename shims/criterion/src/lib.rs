//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships a minimal bench harness with criterion's surface: benchmark
//! groups, `bench_function` / `bench_with_input`, `sample_size`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is plain
//! wall-clock timing — a warm-up pass, then `sample_size` timed samples;
//! it reports min/mean per iteration to stdout with none of criterion's
//! statistics, plots, or outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    samples: usize,
    /// (total time, iterations) of the best sample, for reporting.
    best: Option<Duration>,
    mean: Duration,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` timed calls.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        let mut total = Duration::ZERO;
        let mut best: Option<Duration> = None;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let t = start.elapsed();
            total += t;
            if best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        }
        self.best = best;
        self.mean = total / self.samples.max(1) as u32;
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            best: None,
            mean: Duration::ZERO,
        };
        f(&mut b);
        match b.best {
            Some(best) => println!(
                "{}/{}: best {:.2?}, mean {:.2?} over {} samples",
                self.name, id, best, b.mean, b.samples
            ),
            None => println!("{}/{}: no measurement (iter never called)", self.name, id),
        }
    }

    /// Benches a closure.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Benches a closure against one input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Ends the group (a no-op; criterion compatibility).
    pub fn finish(self) {}
}

/// The bench context handed to every registered function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benches a standalone closure (implicit group).
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
    }
}

/// Registers bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("counted", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("q", "x"), &41, |b, &i| {
            b.iter(|| seen = i + 1);
        });
        group.finish();
        assert_eq!(seen, 42);
    }
}
