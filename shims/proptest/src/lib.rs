//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships a miniature property-testing framework exposing the subset of
//! the proptest 1.x API its tests use:
//!
//! * the `Strategy` trait with `prop_map`, `prop_recursive`, `boxed`;
//! * range strategies (`0u64..5000`), [`strategy::Just`], tuple
//!   strategies, `any`, string strategies from simple regex-like
//!   patterns (`"[a-z]{1,5}"`, `".{0,60}"`);
//! * [`collection::vec`], [`option::of`], [`sample::Index`];
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig { cases: N, .. })]` header, and
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Semantics differences from real proptest, accepted for offline use:
//! cases are generated from a deterministic per-test seed (derived from
//! the test name, overridable via `PROPTEST_SEED`); there is **no
//! shrinking** — failures report the full failing input instead; and
//! `prop_assume!` skips the case rather than resampling it.

pub mod test_runner {
    //! Test configuration and the deterministic RNG cases draw from.

    /// Subset of proptest's `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not performed.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic generator (splitmix64) used to produce test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name so every property has a stable,
        /// independent stream. `PROPTEST_SEED` perturbs all streams.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                if let Ok(n) = extra.parse::<u64>() {
                    h ^= n.wrapping_mul(0x9E3779B97F4A7C15);
                }
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `self` generates leaves; `branch` builds
        /// an inner level from a strategy for the level below. `depth`
        /// bounds nesting. The `_desired_size` / `_expected_branch`
        /// parameters exist for source compatibility with proptest.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let inner = levels.last().expect("nonempty").clone();
                levels.push(branch(inner).boxed());
            }
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                let i = rng.below(levels.len());
                levels[i].generate(rng)
            }))
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub fn one_of<T: 'static>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let i = rng.below(choices.len());
            choices[i].generate(rng)
        }))
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 * span) >> 64;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 * span) >> 64;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Values with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index(rng.next_u64() as usize)
        }
    }

    /// Strategy returned by [`any`].
    pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(std::marker::PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }

    // ---- string strategies from regex-like patterns ----------------------

    enum Atom {
        /// Any printable ASCII character.
        Any,
        /// One character from this set.
        Class(Vec<char>),
        /// A literal character.
        Lit(char),
    }

    struct Pattern {
        parts: Vec<(Atom, usize, usize)>, // atom, min, max repetitions
    }

    /// Parses the tiny regex subset the workspace uses: literals, `.`,
    /// `[...]` classes with ranges and `\`-escapes, and `{m,n}` / `{n}`
    /// counts. Anything else panics loudly at test time.
    fn parse_pattern(pat: &str) -> Pattern {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut parts = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        // Range like `a-z` (a `-` right before `]` is literal).
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            for v in (c as u32)..=(hi as u32) {
                                set.push(char::from_u32(v).expect("ascii range"));
                            }
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern `{pat}`");
                    i += 1; // closing ]
                    Atom::Class(set)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional {m,n} / {n} repetition count.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated count");
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("count"),
                        hi.trim().parse().expect("count"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            parts.push((atom, min, max));
        }
        Pattern { parts }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let pattern = parse_pattern(self);
            let mut out = String::new();
            for (atom, min, max) in &pattern.parts {
                let n = min + rng.below(max - min + 1);
                for _ in 0..n {
                    match atom {
                        Atom::Any => {
                            out.push((b' ' + rng.below(95) as u8) as char);
                        }
                        Atom::Class(set) => out.push(set[rng.below(set.len())]),
                        Atom::Lit(c) => out.push(*c),
                    }
                }
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Anything usable as a `vec` size: a fixed `usize` or a range.
    pub trait IntoSizeRange {
        /// Lower/upper bound (inclusive) on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below(self.max - self.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(value from s)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }
}

pub mod sample {
    //! Random index selection.

    /// An arbitrary index, resolved against a collection length later
    /// (mirrors `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// This index resolved against a collection of length `len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[doc(hidden)]
pub use test_runner::TestRng as __TestRng;

#[doc(hidden)]
pub fn __debug_value<T: std::fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// Type-erased runner shared by every expanded [`proptest!`] test.
#[doc(hidden)]
pub fn __run_cases(
    test_name: &str,
    cases: u32,
    mut one_case: impl FnMut(&mut test_runner::TestRng) -> Result<(), (String, String)>,
) {
    let mut rng = test_runner::TestRng::for_test(test_name);
    for case in 0..cases {
        if let Err((inputs, msg)) = one_case(&mut rng) {
            panic!(
                "property `{test_name}` failed at case {case}/{cases}\n  inputs: {inputs}\n  {msg}\n  (set PROPTEST_SEED to vary cases; this build does not shrink)"
            );
        }
    }
}

/// The property-test macro: wraps each `fn name(arg in strategy, ...)` in
/// a deterministic multi-case runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::__run_cases(stringify!($name), config.cases, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __inputs = [$((stringify!($arg), $crate::__debug_value(&$arg))),+]
                        .iter()
                        .map(|(n, v)| format!("{n} = {v}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __outcome.map_err(|m| (__inputs, m))
                });
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Asserts inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?} at {}:{}",
                stringify!($a), stringify!($b), left, right, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({})\n    left: {:?}\n   right: {:?} at {}:{}",
                stringify!($a), stringify!($b), format!($($fmt)*), left, right, file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n    both: {:?} at {}:{}",
                stringify!($a), stringify!($b), left, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` ({})\n    both: {:?} at {}:{}",
                stringify!($a), stringify!($b), format!($($fmt)*), left, file!(), line!()
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold. Real
/// proptest resamples; this build counts the case as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

// Internal self-checks for the shim itself.
#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z][a-z0-9]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0usize),
            (1usize..4).prop_map(|n| n * 10),
        ]) {
            prop_assert!(v == 0 || (10..=30).contains(&v), "v = {}", v);
        }

        #[test]
        fn assume_skips(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 17, ..ProptestConfig::default() })]
        #[test]
        fn config_header_accepted(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        struct Tree {
            children: Vec<Tree>,
        }
        fn depth(t: &Tree) -> usize {
            1 + t.children.iter().map(depth).max().unwrap_or(0)
        }
        let leaf = Just(()).prop_map(|_| Tree {
            children: Vec::new(),
        });
        let strat = leaf.prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(|children| Tree { children })
        });
        let mut rng = crate::test_runner::TestRng::for_test("recursive");
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth > 1, "recursion never branched");
        assert!(max_depth <= 4, "depth bound exceeded: {max_depth}");
    }

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("index");
        for _ in 0..100 {
            let i = <crate::sample::Index as crate::strategy::Arbitrary>::arbitrary(&mut rng);
            assert!(i.index(7) < 7);
        }
    }
}
