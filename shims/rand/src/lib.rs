//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the small subset of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` (integer and float ranges, half-open and
//! inclusive) and `gen_bool`. The generator is xoshiro256** seeded via
//! splitmix64 — deterministic, seedable, and statistically strong enough
//! for data generation (it is NOT cryptographic, exactly like `StdRng`'s
//! contract of being "a reasonable default").
//!
//! Only determinism *within this workspace* is promised: streams differ
//! from the real `rand::rngs::StdRng` (which is ChaCha12), so generated
//! XMark documents differ byte-for-byte from ones produced with the real
//! crate, while remaining stable across runs and platforms here.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value in `range` (`a..b` or `a..=b`; integers or floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        to_unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types drawable from a range. Implemented via blanket impls on
/// `Range<T>` / `RangeInclusive<T>` so integer-literal ranges unify and
/// fall back to `i32`, exactly as with the real crate's `SampleUniform`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

fn to_unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range called with empty range");
                lo + (to_unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // Hitting `hi` exactly has measure zero; half-open is fine.
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

impl_float_uniform!(f64, f32);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000))
            .count();
        assert!(same < 20, "different seeds produced near-identical streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(1u8..=5);
            assert!((1..=5).contains(&v));
            let f = rng.gen_range(9_000.0..100_000.0);
            assert!((9_000.0..100_000.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
