//! Property tests for the XPath front end: the parser must never panic,
//! and pretty-printed location paths must re-parse to the same AST.

use proptest::prelude::*;
use vamana_flex::Axis;
use vamana_xpath::{ast, parse, Expr, LocationPath, NodeTest, Step};

proptest! {
    /// Arbitrary input never panics — it parses or errors.
    #[test]
    fn parser_total_on_arbitrary_strings(input in ".{0,60}") {
        let _ = parse(&input);
    }

    /// Arbitrary ASCII-ish operator soup never panics either.
    #[test]
    fn parser_total_on_operator_soup(input in "[a-z@/\\[\\]()*.:'|=<>! 0-9-]{0,40}") {
        let _ = parse(&input);
    }
}

fn axis_strategy() -> impl Strategy<Value = Axis> {
    (0..Axis::ALL.len()).prop_map(|i| Axis::ALL[i])
}

fn test_strategy() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        "[a-z][a-z0-9]{0,6}".prop_map(|s| NodeTest::Name(s.into())),
        Just(NodeTest::Wildcard),
        Just(NodeTest::Text),
        Just(NodeTest::Node),
        Just(NodeTest::Comment),
        Just(NodeTest::Pi(None)),
    ]
}

fn pred_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (1u32..20).prop_map(|n| Expr::Number(n as f64)),
        "[a-z]{1,5}".prop_map(|s| Expr::Path(LocationPath {
            absolute: false,
            steps: vec![Step::new(Axis::Child, NodeTest::Name(s.into()))],
        })),
        ("[a-z]{1,5}", "[A-Za-z ]{0,8}").prop_map(|(n, v)| Expr::Equality(
            ast::EqOp::Eq,
            Box::new(Expr::Path(LocationPath {
                absolute: false,
                steps: vec![Step::new(Axis::Child, NodeTest::Name(n.into()))],
            })),
            Box::new(Expr::Literal(v.into())),
        )),
    ]
}

fn path_strategy() -> impl Strategy<Value = LocationPath> {
    (
        any::<bool>(),
        proptest::collection::vec(
            (
                axis_strategy(),
                test_strategy(),
                proptest::collection::vec(pred_strategy(), 0..2),
            ),
            1..5,
        ),
    )
        .prop_map(|(absolute, steps)| LocationPath {
            absolute,
            steps: steps
                .into_iter()
                .map(|(axis, test, predicates)| Step {
                    axis,
                    test,
                    predicates,
                })
                .collect(),
        })
}

proptest! {
    /// Display → parse is the identity on location paths.
    #[test]
    fn display_reparses_to_same_ast(path in path_strategy()) {
        let printed = path.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("own output failed to parse: `{printed}`: {e}"));
        prop_assert_eq!(reparsed, Expr::Path(path), "printed as `{}`", printed);
    }
}
