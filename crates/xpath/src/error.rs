//! XPath parse errors.

use std::fmt;

/// A lexing or parsing failure with its character position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the expression text.
    pub offset: usize,
}

impl ParseError {
    /// Creates an error at `offset`.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", 7);
        let s = e.to_string();
        assert!(s.contains("offset 7"));
        assert!(s.contains("unexpected token"));
    }
}
