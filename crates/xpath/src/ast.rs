//! The XPath 1.0 abstract syntax tree.

use std::fmt;
use vamana_flex::Axis;

/// Equality operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EqOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

/// Relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

/// A node test within a location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A (possibly prefixed) name.
    Name(Box<str>),
    /// `*`
    Wildcard,
    /// `prefix:*`
    NsWildcard(Box<str>),
    /// `text()`
    Text,
    /// `node()`
    Node,
    /// `comment()`
    Comment,
    /// `processing-instruction()` with optional target literal.
    Pi(Option<Box<str>>),
}

/// One location step: `axis::test[pred]...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Zero or more predicates.
    pub predicates: Vec<Expr>,
}

impl Step {
    /// A step with no predicates.
    pub fn new(axis: Axis, test: NodeTest) -> Self {
        Step {
            axis,
            test,
            predicates: Vec::new(),
        }
    }
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    /// True for paths starting at the document root (`/...`).
    pub absolute: bool,
    /// The steps, outermost first.
    pub steps: Vec<Step>,
}

/// An XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A location path.
    Path(LocationPath),
    /// A filter expression with an optional trailing relative path:
    /// `primary[p1][p2]/rel/ative`.
    Filter {
        /// The primary expression being filtered.
        primary: Box<Expr>,
        /// Predicates applied to the primary's node-set.
        predicates: Vec<Expr>,
        /// Optional continuation path.
        path: Option<LocationPath>,
    },
    /// `a or b`
    Or(Box<Expr>, Box<Expr>),
    /// `a and b`
    And(Box<Expr>, Box<Expr>),
    /// `a = b`, `a != b`
    Equality(EqOp, Box<Expr>, Box<Expr>),
    /// `a < b` etc.
    Relational(RelOp, Box<Expr>, Box<Expr>),
    /// `a + b` etc.
    Arithmetic(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `a | b`
    Union(Box<Expr>, Box<Expr>),
    /// String literal.
    Literal(Box<str>),
    /// Numeric literal.
    Number(f64),
    /// `$name`
    Var(Box<str>),
    /// `name(arg, ...)`
    FunctionCall(Box<str>, Vec<Expr>),
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Wildcard => write!(f, "*"),
            NodeTest::NsWildcard(p) => write!(f, "{p}:*"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::Node => write!(f, "node()"),
            NodeTest::Comment => write!(f, "comment()"),
            NodeTest::Pi(None) => write!(f, "processing-instruction()"),
            NodeTest::Pi(Some(t)) => write!(f, "processing-instruction('{t}')"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.axis, self.test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            write!(f, "/")?;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Filter {
                primary,
                predicates,
                path,
            } => {
                write!(f, "({primary})")?;
                for p in predicates {
                    write!(f, "[{p}]")?;
                }
                if let Some(p) = path {
                    write!(f, "/{p}")?;
                }
                Ok(())
            }
            Expr::Or(a, b) => write!(f, "{a} or {b}"),
            Expr::And(a, b) => write!(f, "{a} and {b}"),
            Expr::Equality(EqOp::Eq, a, b) => write!(f, "{a} = {b}"),
            Expr::Equality(EqOp::Ne, a, b) => write!(f, "{a} != {b}"),
            Expr::Relational(op, a, b) => {
                let s = match op {
                    RelOp::Lt => "<",
                    RelOp::Le => "<=",
                    RelOp::Gt => ">",
                    RelOp::Ge => ">=",
                };
                write!(f, "{a} {s} {b}")
            }
            Expr::Arithmetic(op, a, b) => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "div",
                    ArithOp::Mod => "mod",
                };
                write!(f, "{a} {s} {b}")
            }
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::Union(a, b) => write!(f, "{a} | {b}"),
            Expr::Literal(s) => write!(f, "'{s}'"),
            Expr::Number(n) => write!(f, "{n}"),
            Expr::Var(v) => write!(f, "${v}"),
            Expr::FunctionCall(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_visually() {
        let step = Step::new(Axis::Descendant, NodeTest::Name("name".into()));
        assert_eq!(step.to_string(), "descendant::name");
        let path = LocationPath {
            absolute: true,
            steps: vec![step],
        };
        assert_eq!(path.to_string(), "/descendant::name");
    }

    #[test]
    fn display_predicates() {
        let mut step = Step::new(Axis::Child, NodeTest::Name("person".into()));
        step.predicates.push(Expr::Number(3.0));
        assert_eq!(step.to_string(), "child::person[3]");
    }

    #[test]
    fn display_kind_tests() {
        assert_eq!(NodeTest::Text.to_string(), "text()");
        assert_eq!(
            NodeTest::Pi(Some("php".into())).to_string(),
            "processing-instruction('php')"
        );
        assert_eq!(NodeTest::NsWildcard("x".into()).to_string(), "x:*");
    }
}
