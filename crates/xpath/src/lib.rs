//! # vamana-xpath
//!
//! An XPath 1.0 front end: [`lexer`], [`ast`], and a recursive-descent
//! [`parser`] covering the full location-path language the paper's engine
//! supports — all 13 axes (explicit and abbreviated syntax), name and
//! kind node tests, nested predicates with value / range / position
//! conditions, unions, arithmetic, and the core function library.
//!
//! The output is a pure syntax tree ([`ast::Expr`]); compilation into the
//! VAMANA physical algebra happens in `vamana-core`.
//!
//! ```
//! use vamana_xpath::parse;
//!
//! let expr = parse("//name[text() = 'Yung Flach']/following-sibling::emailaddress").unwrap();
//! println!("{expr}");
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{ArithOp, EqOp, Expr, LocationPath, NodeTest, RelOp, Step};
pub use error::ParseError;
pub use parser::parse;
