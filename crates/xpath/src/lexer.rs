//! XPath 1.0 lexer.
//!
//! Implements the spec's §3.7 lexical disambiguation: `*` is the
//! multiplication operator (and `and`/`or`/`div`/`mod` are operator
//! names) exactly when the preceding token implies an operand just ended;
//! otherwise `*` is a node-test wildcard and the words are names.

use crate::error::ParseError;

/// One lexical token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset in the expression text.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// NCName or QName (`person`, `x:item`).
    Name(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes stripped).
    Literal(String),
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `@`
    At,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` as the wildcard node test.
    Star,
    /// `*` as multiplication (operator position).
    Multiply,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `::`
    ColonColon,
    /// `$`
    Dollar,
    /// `and` in operator position.
    And,
    /// `or` in operator position.
    Or,
    /// `div` in operator position.
    Div,
    /// `mod` in operator position.
    Mod,
}

impl TokenKind {
    /// After these tokens, `*`/`and`/`or`/`div`/`mod` are *operators*
    /// (XPath 1.0 §3.7: preceding token is not `@`, `::`, `(`, `[`, `,`,
    /// or an operator).
    fn ends_operand(&self) -> bool {
        matches!(
            self,
            TokenKind::Name(_)
                | TokenKind::Number(_)
                | TokenKind::Literal(_)
                | TokenKind::RParen
                | TokenKind::RBracket
                | TokenKind::Dot
                | TokenKind::DotDot
                | TokenKind::Star
        )
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Tokenizes `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens: Vec<Token> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = input[i..].chars().next().expect("in bounds");
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
                continue;
            }
            '/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    tokens.push(Token {
                        kind: TokenKind::DoubleSlash,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Slash,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '@' => {
                tokens.push(Token {
                    kind: TokenKind::At,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '$' => {
                tokens.push(Token {
                    kind: TokenKind::Dollar,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("expected `!=`", start));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b':') {
                    tokens.push(Token {
                        kind: TokenKind::ColonColon,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("stray `:` (expected `::` or QName)", start));
                }
            }
            '*' => {
                let op_position = tokens.last().is_some_and(|t| t.kind.ends_operand());
                let kind = if op_position {
                    TokenKind::Multiply
                } else {
                    TokenKind::Star
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    tokens.push(Token {
                        kind: TokenKind::DotDot,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    // .5 style number
                    let (n, len) = lex_number(&input[i..], start)?;
                    tokens.push(Token {
                        kind: TokenKind::Number(n),
                        offset: start,
                    });
                    i += len;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let rest = &input[i + 1..];
                let end = rest
                    .find(quote)
                    .ok_or_else(|| ParseError::new("unterminated string literal", start))?;
                tokens.push(Token {
                    kind: TokenKind::Literal(rest[..end].to_string()),
                    offset: start,
                });
                i += end + 2;
            }
            '0'..='9' => {
                let (n, len) = lex_number(&input[i..], start)?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
                i += len;
            }
            c if is_name_start(c) => {
                let mut end = i;
                let mut colon_seen = false;
                for (rel, ch) in input[i..].char_indices() {
                    if is_name_char(ch) {
                        end = i + rel + ch.len_utf8();
                    } else if ch == ':'
                        && !colon_seen
                        && input[i + rel + 1..]
                            .chars()
                            .next()
                            .is_some_and(is_name_start)
                    {
                        // QName prefix, but not `::`.
                        if input.as_bytes().get(i + rel + 1) == Some(&b':') {
                            break;
                        }
                        colon_seen = true;
                        end = i + rel + 1;
                    } else {
                        break;
                    }
                }
                let word = &input[i..end];
                let op_position = tokens.last().is_some_and(|t| t.kind.ends_operand());
                let kind = match word {
                    "and" if op_position => TokenKind::And,
                    "or" if op_position => TokenKind::Or,
                    "div" if op_position => TokenKind::Div,
                    "mod" if op_position => TokenKind::Mod,
                    _ => TokenKind::Name(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    start,
                ));
            }
        }
    }
    Ok(tokens)
}

fn lex_number(s: &str, offset: usize) -> Result<(f64, usize), ParseError> {
    let mut len = 0;
    let mut dot = false;
    for ch in s.chars() {
        match ch {
            '0'..='9' => len += 1,
            '.' if !dot => {
                dot = true;
                len += 1;
            }
            _ => break,
        }
    }
    s[..len]
        .parse::<f64>()
        .map(|n| (n, len))
        .map_err(|_| ParseError::new("malformed number", offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_path() {
        assert_eq!(
            kinds("//person/address"),
            vec![
                TokenKind::DoubleSlash,
                TokenKind::Name("person".into()),
                TokenKind::Slash,
                TokenKind::Name("address".into()),
            ]
        );
    }

    #[test]
    fn lexes_axis_syntax() {
        assert_eq!(
            kinds("descendant::name"),
            vec![
                TokenKind::Name("descendant".into()),
                TokenKind::ColonColon,
                TokenKind::Name("name".into()),
            ]
        );
    }

    #[test]
    fn star_is_wildcard_after_axis() {
        assert_eq!(
            kinds("parent::*"),
            vec![
                TokenKind::Name("parent".into()),
                TokenKind::ColonColon,
                TokenKind::Star
            ]
        );
        assert_eq!(kinds("//*")[1], TokenKind::Star);
    }

    #[test]
    fn star_is_multiply_after_operand() {
        let k = kinds("2 * 3");
        assert_eq!(k[1], TokenKind::Multiply);
        let k = kinds("price * 2");
        assert_eq!(k[1], TokenKind::Multiply);
    }

    #[test]
    fn and_or_div_mod_positional() {
        let k = kinds("a and b");
        assert_eq!(k[1], TokenKind::And);
        // `and` as an element name in step position stays a name.
        let k = kinds("//and");
        assert_eq!(k[1], TokenKind::Name("and".into()));
        let k = kinds("6 div 2 mod 2");
        assert_eq!(k[1], TokenKind::Div);
        assert_eq!(k[3], TokenKind::Mod);
    }

    #[test]
    fn literals_both_quote_styles() {
        assert_eq!(
            kinds("'Yung Flach'"),
            vec![TokenKind::Literal("Yung Flach".into())]
        );
        assert_eq!(kinds("\"it's\""), vec![TokenKind::Literal("it's".into())]);
    }

    #[test]
    fn numbers_integer_decimal_leading_dot() {
        assert_eq!(kinds("42"), vec![TokenKind::Number(42.0)]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Number(3.5)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b != c >= d"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::Le,
                TokenKind::Name("b".into()),
                TokenKind::Ne,
                TokenKind::Name("c".into()),
                TokenKind::Ge,
                TokenKind::Name("d".into()),
            ]
        );
    }

    #[test]
    fn dot_and_dotdot() {
        assert_eq!(kinds(". .."), vec![TokenKind::Dot, TokenKind::DotDot]);
    }

    #[test]
    fn qname_lexes_as_one_name() {
        assert_eq!(kinds("x:item"), vec![TokenKind::Name("x:item".into())]);
        // but axis::name is three tokens
        assert_eq!(kinds("self::item").len(), 3);
    }

    #[test]
    fn hyphenated_names() {
        assert_eq!(
            kinds("following-sibling::emailaddress")[0],
            TokenKind::Name("following-sibling".into())
        );
    }

    #[test]
    fn errors_carry_offsets() {
        assert_eq!(tokenize("a ! b").unwrap_err().offset, 2);
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn variable_reference() {
        assert_eq!(
            kinds("$v"),
            vec![TokenKind::Dollar, TokenKind::Name("v".into())]
        );
    }

    #[test]
    fn offsets_track_positions() {
        let toks = tokenize("//a[1]").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 2);
        assert_eq!(toks[2].offset, 3);
        assert_eq!(toks[3].offset, 4);
    }
}
