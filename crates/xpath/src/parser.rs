//! Recursive-descent parser for XPath 1.0.
//!
//! Grammar (simplified from the spec, full precedence honored):
//!
//! ```text
//! Expr        := OrExpr
//! OrExpr      := AndExpr ('or' AndExpr)*
//! AndExpr     := EqExpr ('and' EqExpr)*
//! EqExpr      := RelExpr (('='|'!=') RelExpr)*
//! RelExpr     := AddExpr (('<'|'<='|'>'|'>=') AddExpr)*
//! AddExpr     := MulExpr (('+'|'-') MulExpr)*
//! MulExpr     := UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
//! UnaryExpr   := '-'* UnionExpr
//! UnionExpr   := PathExpr ('|' PathExpr)*
//! PathExpr    := LocationPath | FilterExpr (('/'|'//') RelativePath)?
//! FilterExpr  := PrimaryExpr Predicate*
//! PrimaryExpr := '$'Name | '(' Expr ')' | Literal | Number | FunctionCall
//! ```

use crate::ast::{ArithOp, EqOp, Expr, LocationPath, NodeTest, RelOp, Step};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};
use vamana_flex::Axis;

/// Parses an XPath 1.0 expression.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        len: input.len(),
    };
    let expr = p.expr()?;
    if let Some(t) = p.peek() {
        return Err(ParseError::new(
            "trailing tokens after expression",
            t.offset,
        ));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.peek().map(|t| &t.kind)
    }

    fn peek2_kind(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.peek().map(|t| t.offset).unwrap_or(self.len)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected {what}"), self.offset()))
        }
    }

    // ---- expression precedence chain ----------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.eq_expr()?;
        while self.eat(&TokenKind::And) {
            let right = self.eq_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn eq_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.rel_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Eq) => EqOp::Eq,
                Some(TokenKind::Ne) => EqOp::Ne,
                _ => break,
            };
            self.bump();
            let right = self.rel_expr()?;
            left = Expr::Equality(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn rel_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.add_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Lt) => RelOp::Lt,
                Some(TokenKind::Le) => RelOp::Le,
                Some(TokenKind::Gt) => RelOp::Gt,
                Some(TokenKind::Ge) => RelOp::Ge,
                _ => break,
            };
            self.bump();
            let right = self.add_expr()?;
            left = Expr::Relational(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Plus) => ArithOp::Add,
                Some(TokenKind::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = Expr::Arithmetic(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Multiply) => ArithOp::Mul,
                Some(TokenKind::Div) => ArithOp::Div,
                Some(TokenKind::Mod) => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = Expr::Arithmetic(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.path_expr()?;
        while self.eat(&TokenKind::Pipe) {
            let right = self.path_expr()?;
            left = Expr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // ---- paths ----------------------------------------------------------

    /// Is the upcoming token sequence a filter-expression primary rather
    /// than a location path?
    fn starts_filter(&self) -> bool {
        match self.peek_kind() {
            Some(
                TokenKind::Dollar
                | TokenKind::Literal(_)
                | TokenKind::Number(_)
                | TokenKind::LParen,
            ) => true,
            Some(TokenKind::Name(name)) => {
                // A function call — unless it's a node-type test, which
                // belongs to a location step.
                matches!(self.peek2_kind(), Some(TokenKind::LParen))
                    && !matches!(
                        name.as_str(),
                        "text" | "node" | "comment" | "processing-instruction"
                    )
            }
            _ => false,
        }
    }

    fn path_expr(&mut self) -> Result<Expr, ParseError> {
        if self.starts_filter() {
            let primary = self.primary_expr()?;
            let mut predicates = Vec::new();
            while self.peek_kind() == Some(&TokenKind::LBracket) {
                predicates.push(self.predicate()?);
            }
            let path = if self.peek_kind() == Some(&TokenKind::Slash) {
                self.bump();
                Some(self.relative_path(false)?)
            } else if self.peek_kind() == Some(&TokenKind::DoubleSlash) {
                self.bump();
                Some(self.relative_path(true)?)
            } else {
                None
            };
            if predicates.is_empty() && path.is_none() {
                return Ok(primary);
            }
            return Ok(Expr::Filter {
                primary: Box::new(primary),
                predicates,
                path,
            });
        }
        Ok(Expr::Path(self.full_location_path()?))
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let offset = self.offset();
        match self.bump().map(|t| t.kind) {
            Some(TokenKind::Dollar) => match self.bump().map(|t| t.kind) {
                Some(TokenKind::Name(n)) => Ok(Expr::Var(n.into())),
                _ => Err(ParseError::new("expected variable name after `$`", offset)),
            },
            Some(TokenKind::LParen) => {
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            Some(TokenKind::Literal(s)) => Ok(Expr::Literal(s.into())),
            Some(TokenKind::Number(n)) => Ok(Expr::Number(n)),
            Some(TokenKind::Name(name)) => {
                self.expect(&TokenKind::LParen, "`(` after function name")?;
                let mut args = Vec::new();
                if self.peek_kind() != Some(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen, "`)` after arguments")?;
                Ok(Expr::FunctionCall(name.into(), args))
            }
            _ => Err(ParseError::new("expected primary expression", offset)),
        }
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        self.expect(&TokenKind::LBracket, "`[`")?;
        let inner = self.expr()?;
        self.expect(&TokenKind::RBracket, "`]`")?;
        Ok(inner)
    }

    // ---- location paths ---------------------------------------------------

    fn full_location_path(&mut self) -> Result<LocationPath, ParseError> {
        match self.peek_kind() {
            Some(TokenKind::Slash) => {
                self.bump();
                // Bare `/` selects the document root.
                if self.starts_step() {
                    let mut path = self.relative_path(false)?;
                    path.absolute = true;
                    Ok(path)
                } else {
                    Ok(LocationPath {
                        absolute: true,
                        steps: Vec::new(),
                    })
                }
            }
            Some(TokenKind::DoubleSlash) => {
                self.bump();
                let mut path = self.relative_path(true)?;
                path.absolute = true;
                Ok(path)
            }
            _ => self.relative_path(false),
        }
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek_kind(),
            Some(
                TokenKind::Name(_)
                    | TokenKind::Star
                    | TokenKind::At
                    | TokenKind::Dot
                    | TokenKind::DotDot
            )
        )
    }

    /// Parses `Step (('/'|'//') Step)*`, prepending a
    /// `descendant-or-self::node()` step when `leading_double` is set.
    fn relative_path(&mut self, leading_double: bool) -> Result<LocationPath, ParseError> {
        let mut steps = Vec::new();
        if leading_double {
            steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::Node));
        }
        loop {
            steps.push(self.step()?);
            if self.eat(&TokenKind::Slash) {
                continue;
            }
            if self.eat(&TokenKind::DoubleSlash) {
                steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::Node));
                continue;
            }
            break;
        }
        Ok(LocationPath {
            absolute: false,
            steps,
        })
    }

    fn step(&mut self) -> Result<Step, ParseError> {
        let offset = self.offset();
        // Abbreviations.
        if self.eat(&TokenKind::Dot) {
            return Ok(Step::new(Axis::SelfAxis, NodeTest::Node));
        }
        if self.eat(&TokenKind::DotDot) {
            return Ok(Step::new(Axis::Parent, NodeTest::Node));
        }
        let axis = if self.eat(&TokenKind::At) {
            Axis::Attribute
        } else if let (Some(TokenKind::Name(name)), Some(TokenKind::ColonColon)) =
            (self.peek_kind(), self.peek2_kind())
        {
            let axis = Axis::parse(name)
                .ok_or_else(|| ParseError::new(format!("unknown axis `{name}`"), offset))?;
            self.bump();
            self.bump();
            axis
        } else {
            Axis::Child
        };
        let test = self.node_test()?;
        let mut step = Step::new(axis, test);
        while self.peek_kind() == Some(&TokenKind::LBracket) {
            step.predicates.push(self.predicate()?);
        }
        Ok(step)
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseError> {
        let offset = self.offset();
        match self.bump().map(|t| t.kind) {
            Some(TokenKind::Star) => Ok(NodeTest::Wildcard),
            Some(TokenKind::Name(name)) => {
                if self.peek_kind() == Some(&TokenKind::LParen) {
                    // Node-type test.
                    self.bump();
                    let test = match name.as_str() {
                        "text" => NodeTest::Text,
                        "node" => NodeTest::Node,
                        "comment" => NodeTest::Comment,
                        "processing-instruction" => {
                            if let Some(TokenKind::Literal(target)) = self.peek_kind().cloned() {
                                self.bump();
                                NodeTest::Pi(Some(target.into()))
                            } else {
                                NodeTest::Pi(None)
                            }
                        }
                        other => {
                            return Err(ParseError::new(
                                format!("`{other}(...)` is not a node test"),
                                offset,
                            ))
                        }
                    };
                    self.expect(&TokenKind::RParen, "`)` after node-type test")?;
                    Ok(test)
                } else if name.ends_with(":*") {
                    Ok(NodeTest::NsWildcard(name[..name.len() - 2].into()))
                } else {
                    Ok(NodeTest::Name(name.into()))
                }
            }
            _ => Err(ParseError::new("expected node test", offset)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(input: &str) -> LocationPath {
        match parse(input).unwrap() {
            Expr::Path(p) => p,
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn paper_q1_parses() {
        // §III Q1: descendant::name/parent::*/self::person/address
        let p = path("descendant::name/parent::*/self::person/address");
        assert!(!p.absolute);
        assert_eq!(p.steps.len(), 4);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(p.steps[1].axis, Axis::Parent);
        assert_eq!(p.steps[1].test, NodeTest::Wildcard);
        assert_eq!(p.steps[2].axis, Axis::SelfAxis);
        assert_eq!(p.steps[3].axis, Axis::Child);
        assert_eq!(p.steps[3].test, NodeTest::Name("address".into()));
    }

    #[test]
    fn paper_q2_parses() {
        // §III Q2: //name[text() = 'Yung Flach']/following-sibling::emailaddress
        let p = path("//name[text() = 'Yung Flach']/following-sibling::emailaddress");
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 3); // descendant-or-self::node(), name, following-sibling
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[0].test, NodeTest::Node);
        assert_eq!(p.steps[1].test, NodeTest::Name("name".into()));
        assert_eq!(p.steps[1].predicates.len(), 1);
        match &p.steps[1].predicates[0] {
            Expr::Equality(EqOp::Eq, l, r) => {
                assert!(matches!(**l, Expr::Path(_)));
                assert!(matches!(**r, Expr::Literal(ref s) if &**s == "Yung Flach"));
            }
            other => panic!("wrong predicate: {other:?}"),
        }
        assert_eq!(p.steps[2].axis, Axis::FollowingSibling);
    }

    #[test]
    fn eval_queries_parse() {
        // All five queries of the experimental section.
        for q in [
            "//person/address",
            "//watches/watch/ancestor::person",
            "/descendant::name/parent::*/self::person/address",
            "//itemref/following-sibling::price/parent::*",
            "//province[text()='Vermont']/ancestor::person",
        ] {
            assert!(parse(q).is_ok(), "failed to parse {q}");
        }
    }

    #[test]
    fn abbreviations_expand() {
        let p = path("../@id");
        assert_eq!(p.steps[0].axis, Axis::Parent);
        assert_eq!(p.steps[0].test, NodeTest::Node);
        assert_eq!(p.steps[1].axis, Axis::Attribute);
        assert_eq!(p.steps[1].test, NodeTest::Name("id".into()));
        let p = path(".");
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
    }

    #[test]
    fn double_slash_inserts_descendant_or_self() {
        let p = path("a//b");
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[1].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[1].test, NodeTest::Node);
    }

    #[test]
    fn bare_root_path() {
        let p = path("/");
        assert!(p.absolute);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn position_predicate() {
        let p = path("//person[3]");
        assert!(matches!(p.steps[1].predicates[0], Expr::Number(n) if n == 3.0));
    }

    #[test]
    fn nested_predicates() {
        let p = path("//person[address[city='Monroe']]");
        let pred = &p.steps[1].predicates[0];
        match pred {
            Expr::Path(inner) => {
                assert_eq!(inner.steps[0].test, NodeTest::Name("address".into()));
                assert_eq!(inner.steps[0].predicates.len(), 1);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn boolean_and_comparison_precedence() {
        // a = 1 or b = 2 and c = 3  →  or(eq, and(eq, eq))
        let e = parse("a = 1 or b = 2 and c = 3").unwrap();
        match e {
            Expr::Or(l, r) => {
                assert!(matches!(*l, Expr::Equality(..)));
                assert!(matches!(*r, Expr::And(..)));
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3  →  add(1, mul(2,3))
        let e = parse("1 + 2 * 3").unwrap();
        match e {
            Expr::Arithmetic(ArithOp::Add, l, r) => {
                assert!(matches!(*l, Expr::Number(n) if n == 1.0));
                assert!(matches!(*r, Expr::Arithmetic(ArithOp::Mul, ..)));
            }
            other => panic!("wrong: {other:?}"),
        }
        assert!(matches!(
            parse("6 div 2").unwrap(),
            Expr::Arithmetic(ArithOp::Div, ..)
        ));
        assert!(matches!(
            parse("7 mod 2").unwrap(),
            Expr::Arithmetic(ArithOp::Mod, ..)
        ));
    }

    #[test]
    fn unary_minus() {
        assert!(matches!(parse("-1").unwrap(), Expr::Neg(_)));
        assert!(matches!(parse("--1").unwrap(), Expr::Neg(_)));
    }

    #[test]
    fn union_of_paths() {
        let e = parse("//a | //b").unwrap();
        assert!(matches!(e, Expr::Union(..)));
    }

    #[test]
    fn function_calls() {
        let e = parse("count(//person)").unwrap();
        match e {
            Expr::FunctionCall(name, args) => {
                assert_eq!(&*name, "count");
                assert_eq!(args.len(), 1);
            }
            other => panic!("wrong: {other:?}"),
        }
        assert!(parse("concat('a', 'b', 'c')").is_ok());
        assert!(parse("not(position() = last())").is_ok());
    }

    #[test]
    fn filter_expression_with_trailing_path() {
        let e = parse("(//person)[1]/name").unwrap();
        match e {
            Expr::Filter {
                predicates, path, ..
            } => {
                assert_eq!(predicates.len(), 1);
                assert!(path.is_some());
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn kind_tests() {
        assert_eq!(path("//comment()").steps[1].test, NodeTest::Comment);
        assert_eq!(path("//node()").steps[1].test, NodeTest::Node);
        assert_eq!(
            path("//processing-instruction('php')").steps[1].test,
            NodeTest::Pi(Some("php".into()))
        );
    }

    #[test]
    fn all_axes_parse() {
        for axis in Axis::ALL {
            let q = format!("{}::node()", axis.as_str());
            let p = path(&q);
            assert_eq!(p.steps[0].axis, axis, "axis {axis}");
        }
    }

    #[test]
    fn variable_reference_parses() {
        assert!(matches!(parse("$x").unwrap(), Expr::Var(v) if &*v == "x"));
    }

    #[test]
    fn range_predicates_parse() {
        let p = path("//price[. >= 10]");
        assert!(matches!(
            p.steps[1].predicates[0],
            Expr::Relational(RelOp::Ge, ..)
        ));
        let p = path("//price[. < 20 and . > 5]");
        assert!(matches!(p.steps[1].predicates[0], Expr::And(..)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("//").is_err());
        assert!(parse("//a[").is_err());
        assert!(parse("foo(").is_err());
        assert!(parse("sideways::a").is_err());
        assert!(parse("//a]").is_err());
        assert!(parse("1 +").is_err());
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(
            parse("//person/address").unwrap(),
            parse("  // person / address  ").unwrap()
        );
    }
}
