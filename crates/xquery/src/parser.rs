//! FLWOR parser.
//!
//! The parser handles the FLWOR skeleton and element constructors itself
//! and delegates every expression fragment to the XPath parser. Clause
//! keywords (`for`, `let`, `where`, `order`, `return`) are reserved at
//! top level inside FLWOR expressions; element names inside XPath
//! fragments may still use them (`//for`) because keyword detection
//! requires a word boundary on both sides at bracket depth zero.

use crate::ast::{Clause, Content, Flwor, XqExpr};
use crate::{Result, XQueryError};

/// Parses an XQuery-lite expression: a FLWOR, an element constructor, or
/// a plain XPath expression.
pub fn parse_xquery(input: &str) -> Result<XqExpr> {
    let trimmed = input.trim();
    if trimmed.is_empty() {
        return Err(XQueryError::Parse("empty expression".into()));
    }
    if starts_with_keyword(trimmed, "for") || starts_with_keyword(trimmed, "let") {
        return parse_flwor(trimmed);
    }
    if trimmed.starts_with('<') {
        let (ctor, rest) = parse_ctor(trimmed)?;
        if !rest.trim().is_empty() {
            return Err(XQueryError::Parse(format!(
                "unexpected trailing content after constructor: `{}`",
                rest.trim()
            )));
        }
        return Ok(ctor);
    }
    Ok(XqExpr::XPath(vamana_xpath::parse(trimmed)?))
}

fn starts_with_keyword(s: &str, kw: &str) -> bool {
    s.starts_with(kw)
        && s[kw.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_whitespace())
}

/// Scans `s` for the first top-level occurrence of any of `stops`
/// (word-bounded, outside quotes/brackets/braces), returning
/// (fragment-before, rest-including-keyword).
fn split_at_keyword<'a>(s: &'a str, stops: &[&str]) -> (&'a str, &'a str) {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut quote: Option<u8> = None;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if let Some(q) = quote {
            if b == q {
                quote = None;
            }
            i += 1;
            continue;
        }
        match b {
            b'\'' | b'"' => quote = Some(b),
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ => {}
        }
        if depth == 0 && (i == 0 || bytes[i - 1].is_ascii_whitespace()) {
            for stop in stops {
                if s[i..].starts_with(stop)
                    && s[i + stop.len()..]
                        .chars()
                        .next()
                        .is_none_or(|c| c.is_whitespace())
                {
                    return (&s[..i], &s[i..]);
                }
            }
        }
        i += 1;
    }
    (s, "")
}

const CLAUSE_STOPS: &[&str] = &["for", "let", "where", "order", "return"];

fn parse_flwor(input: &str) -> Result<XqExpr> {
    let mut clauses = Vec::new();
    let mut rest = input;

    // for / let clauses
    loop {
        rest = rest.trim_start();
        if starts_with_keyword(rest, "for") {
            rest = &rest[3..];
            loop {
                let (var, after) = parse_var(rest)?;
                let after = after.trim_start();
                let (pos, after) = if starts_with_keyword(after, "at") {
                    let (pos_var, rest2) = parse_var(&after[2..])?;
                    (Some(pos_var), rest2)
                } else {
                    (None, after)
                };
                let after = expect_word(after, "in")?;
                let (frag, next) = split_at_keyword_or_comma(after);
                let source = vamana_xpath::parse(frag.trim())?;
                clauses.push(Clause::For { var, pos, source });
                rest = next;
                if let Some(stripped) = rest.trim_start().strip_prefix(',') {
                    rest = stripped;
                    continue;
                }
                break;
            }
        } else if starts_with_keyword(rest, "let") {
            rest = &rest[3..];
            let (var, after) = parse_var(rest)?;
            let after = expect_symbol(after, ":=")?;
            let (frag, next) = split_at_keyword(after, CLAUSE_STOPS);
            let source = vamana_xpath::parse(frag.trim())?;
            clauses.push(Clause::Let { var, source });
            rest = next;
        } else {
            break;
        }
    }
    if clauses.is_empty() {
        return Err(XQueryError::Parse(
            "FLWOR needs at least one for/let clause".into(),
        ));
    }

    // where
    let mut where_clause = None;
    rest = rest.trim_start();
    if starts_with_keyword(rest, "where") {
        let (frag, next) = split_at_keyword(&rest[5..], &["order", "return"]);
        where_clause = Some(vamana_xpath::parse(frag.trim())?);
        rest = next;
    }

    // order by
    let mut order_by = None;
    rest = rest.trim_start();
    if starts_with_keyword(rest, "order") {
        let after = expect_word(&rest[5..], "by")?;
        let (frag, next) = split_at_keyword(after, &["return"]);
        let mut frag = frag.trim();
        let mut descending = false;
        if let Some(stripped) = frag.strip_suffix("descending") {
            frag = stripped.trim_end();
            descending = true;
        } else if let Some(stripped) = frag.strip_suffix("ascending") {
            frag = stripped.trim_end();
        }
        order_by = Some((vamana_xpath::parse(frag)?, descending));
        rest = next;
    }

    // return
    rest = rest.trim_start();
    if !starts_with_keyword(rest, "return") {
        return Err(XQueryError::Parse(format!(
            "expected `return`, found `{}`",
            rest.chars().take(20).collect::<String>()
        )));
    }
    let ret_src = rest[6..].trim();
    let ret = parse_return(ret_src)?;

    Ok(XqExpr::Flwor(Box::new(Flwor {
        clauses,
        where_clause,
        order_by,
        ret,
    })))
}

fn split_at_keyword_or_comma(s: &str) -> (&str, &str) {
    // Like split_at_keyword but also stops at a top-level comma (multiple
    // for-bindings).
    let (frag, rest) = split_at_keyword(s, CLAUSE_STOPS);
    let bytes = frag.as_bytes();
    let mut depth = 0i32;
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        if let Some(q) = quote {
            if b == q {
                quote = None;
            }
            continue;
        }
        match b {
            b'\'' | b'"' => quote = Some(b),
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => return (&frag[..i], &s[i..]),
            _ => {}
        }
    }
    (frag, rest)
}

fn parse_var(s: &str) -> Result<(String, &str)> {
    let s = s.trim_start();
    let s = s
        .strip_prefix('$')
        .ok_or_else(|| XQueryError::Parse("expected `$variable`".into()))?;
    let end = s
        .char_indices()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_' && *c != '-')
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    if end == 0 {
        return Err(XQueryError::Parse("empty variable name".into()));
    }
    Ok((s[..end].to_string(), &s[end..]))
}

fn expect_word<'a>(s: &'a str, word: &str) -> Result<&'a str> {
    let s = s.trim_start();
    if starts_with_keyword(s, word) {
        Ok(&s[word.len()..])
    } else {
        Err(XQueryError::Parse(format!("expected `{word}`")))
    }
}

fn expect_symbol<'a>(s: &'a str, sym: &str) -> Result<&'a str> {
    let s = s.trim_start();
    s.strip_prefix(sym)
        .ok_or_else(|| XQueryError::Parse(format!("expected `{sym}`")))
}

fn parse_return(s: &str) -> Result<XqExpr> {
    if s.starts_with('<') {
        let (ctor, rest) = parse_ctor(s)?;
        if !rest.trim().is_empty() {
            return Err(XQueryError::Parse(format!(
                "unexpected content after return constructor: `{}`",
                rest.trim()
            )));
        }
        Ok(ctor)
    } else if starts_with_keyword(s, "for") || starts_with_keyword(s, "let") {
        parse_flwor(s)
    } else {
        Ok(XqExpr::XPath(vamana_xpath::parse(s)?))
    }
}

/// Parses one element constructor, returning it and the remaining input.
fn parse_ctor(s: &str) -> Result<(XqExpr, &str)> {
    let inner = s
        .strip_prefix('<')
        .ok_or_else(|| XQueryError::Parse("expected `<`".into()))?;
    let name_end = inner
        .char_indices()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_' && *c != '-' && *c != ':')
        .map(|(i, _)| i)
        .unwrap_or(inner.len());
    if name_end == 0 {
        return Err(XQueryError::Parse(
            "constructor needs an element name".into(),
        ));
    }
    let name = inner[..name_end].to_string();
    let mut rest = &inner[name_end..];

    // Static attributes.
    let mut attrs = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix("/>") {
            return Ok((
                XqExpr::ElementCtor {
                    name,
                    attrs,
                    children: Vec::new(),
                },
                r,
            ));
        }
        if let Some(r) = rest.strip_prefix('>') {
            rest = r;
            break;
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| XQueryError::Parse("malformed constructor attribute".into()))?;
        let aname = rest[..eq].trim().to_string();
        let after_eq = rest[eq + 1..].trim_start();
        let quote = after_eq
            .chars()
            .next()
            .filter(|c| *c == '"' || *c == '\'')
            .ok_or_else(|| XQueryError::Parse("attribute value must be quoted".into()))?;
        let vend = after_eq[1..]
            .find(quote)
            .ok_or_else(|| XQueryError::Parse("unterminated attribute value".into()))?;
        attrs.push((aname, after_eq[1..1 + vend].to_string()));
        rest = &after_eq[vend + 2..];
    }

    // Content until the matching close tag.
    let mut children = Vec::new();
    loop {
        if rest.is_empty() {
            return Err(XQueryError::Parse(format!("unterminated <{name}>")));
        }
        if let Some(r) = rest.strip_prefix("</") {
            let r = r
                .strip_prefix(name.as_str())
                .ok_or_else(|| XQueryError::Parse(format!("mismatched close tag for <{name}>")))?;
            let r = r.trim_start();
            let r = r
                .strip_prefix('>')
                .ok_or_else(|| XQueryError::Parse("malformed close tag".into()))?;
            return Ok((
                XqExpr::ElementCtor {
                    name,
                    attrs,
                    children,
                },
                r,
            ));
        }
        if rest.starts_with('<') {
            let (child, r) = parse_ctor(rest)?;
            children.push(Content::Embed(child));
            rest = r;
            continue;
        }
        if rest.starts_with('{') {
            let end = matching_brace(rest)
                .ok_or_else(|| XQueryError::Parse("unterminated `{`".into()))?;
            let inner_expr = parse_xquery(&rest[1..end])?;
            children.push(Content::Embed(inner_expr));
            rest = &rest[end + 1..];
            continue;
        }
        // Literal text up to the next '<' or '{'.
        let stop = rest.find(['<', '{']).unwrap_or(rest.len());
        let text = &rest[..stop];
        if !text.trim().is_empty() {
            children.push(Content::Text(text.to_string()));
        }
        rest = &rest[stop..];
    }
}

/// Index of the `}` matching the `{` at position 0 (quote-aware).
fn matching_brace(s: &str) -> Option<usize> {
    debug_assert!(s.starts_with('{'));
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        if let Some(q) = quote {
            if b == q {
                quote = None;
            }
            continue;
        }
        match b {
            b'\'' | b'"' => quote = Some(b),
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_xpath::Expr;

    #[test]
    fn plain_xpath_passes_through() {
        let q = parse_xquery("//person/name").unwrap();
        assert!(matches!(q, XqExpr::XPath(Expr::Path(_))));
    }

    #[test]
    fn simple_for_return() {
        let q = parse_xquery("for $p in //person return $p/name").unwrap();
        let XqExpr::Flwor(f) = q else { panic!() };
        assert_eq!(f.clauses.len(), 1);
        assert!(matches!(&f.clauses[0], Clause::For { var, pos: None, .. } if var == "p"));
        assert!(f.where_clause.is_none());
        assert!(matches!(f.ret, XqExpr::XPath(_)));
    }

    #[test]
    fn let_where_order_by() {
        let q = parse_xquery(
            "for $p in //person let $n := $p/name where $p/age > 30 order by $n descending return $n",
        )
        .unwrap();
        let XqExpr::Flwor(f) = q else { panic!() };
        assert_eq!(f.clauses.len(), 2);
        assert!(matches!(&f.clauses[1], Clause::Let { var, .. } if var == "n"));
        assert!(f.where_clause.is_some());
        let (_, desc) = f.order_by.as_ref().unwrap();
        assert!(*desc);
    }

    #[test]
    fn multiple_for_bindings() {
        let q = parse_xquery("for $a in //x, $b in //y return $a").unwrap();
        let XqExpr::Flwor(f) = q else { panic!() };
        assert_eq!(f.clauses.len(), 2);
    }

    #[test]
    fn element_constructor_with_embeds() {
        let q = parse_xquery(
            "for $p in //person return <row id=\"r1\">name: { $p/name } <b>!</b></row>",
        )
        .unwrap();
        let XqExpr::Flwor(f) = q else { panic!() };
        let XqExpr::ElementCtor {
            name,
            attrs,
            children,
        } = &f.ret
        else {
            panic!()
        };
        assert_eq!(name, "row");
        assert_eq!(attrs[0], ("id".to_string(), "r1".to_string()));
        assert!(children.len() >= 3);
        assert!(matches!(&children[0], Content::Text(t) if t.contains("name:")));
    }

    #[test]
    fn nested_flwor_in_return() {
        let q =
            parse_xquery("for $p in //people return for $n in $p/person return $n/name").unwrap();
        let XqExpr::Flwor(outer) = q else { panic!() };
        assert!(matches!(outer.ret, XqExpr::Flwor(_)));
    }

    #[test]
    fn keywords_inside_predicates_do_not_split() {
        // `[. = 'return of the king']` must not terminate the clause.
        let q = parse_xquery("for $b in //book[. = 'return of the king'] return $b").unwrap();
        let XqExpr::Flwor(f) = q else { panic!() };
        assert_eq!(f.clauses.len(), 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_xquery("").is_err());
        assert!(parse_xquery("for $p //person return $p").is_err()); // missing in
        assert!(parse_xquery("for $p in //person").is_err()); // missing return
        assert!(parse_xquery("for p in //x return $p").is_err()); // missing $
        assert!(parse_xquery("for $p in //person return <a>{").is_err());
        assert!(parse_xquery("for $p in //person return <a></b>").is_err());
    }

    #[test]
    fn positional_variable_parses() {
        let q = parse_xquery("for $p at $i in //person return $i").unwrap();
        let XqExpr::Flwor(f) = q else { panic!() };
        assert!(matches!(
            &f.clauses[0],
            Clause::For { var, pos: Some(p), .. } if var == "p" && p == "i"
        ));
    }

    #[test]
    fn standalone_constructor() {
        let q = parse_xquery("<report>{ count(//person) }</report>").unwrap();
        assert!(matches!(q, XqExpr::ElementCtor { .. }));
    }
}
