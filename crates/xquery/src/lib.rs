//! # vamana-xquery
//!
//! A FLWOR ("XQuery-lite") layer over the VAMANA engine. The paper
//! positions VAMANA as the XPath kernel of an XQuery processor — §V-B
//! and §VII note that "the leaf operator could receive context nodes
//! from another expression", and the algebra carries a `J` join operator
//! for exactly that. This crate is that outer expression layer:
//!
//! ```text
//! for $p in //people/person
//! let $n := $p/name
//! where $p/address/province = 'Vermont'
//! order by $n
//! return <resident>{ $n/text() }</resident>
//! ```
//!
//! Supported grammar (keywords are reserved words at clause position):
//!
//! ```text
//! FLWOR   := (ForClause | LetClause)+ ["where" Expr] ["order" "by" Expr ["descending"]]
//!            "return" Return
//! For     := "for" $var "in" XPathExpr
//! Let     := "let" $var ":=" XPathExpr
//! Return  := ElementCtor | XPathExpr
//! Ctor    := "<" name ">" (text | "{" Expr "}")* "</" name ">"
//! ```
//!
//! XPath fragments are parsed by [`vamana_xpath`] and may reference
//! bound variables (`$p/name`); variable paths evaluate through
//! [`vamana_core::Engine::query_from`] — the engine's "context node from
//! another expression" hook — so every FLWOR iteration runs on the same
//! index-driven, cost-optimized machinery as plain XPath.

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{Clause, Content, Flwor, XqExpr};
pub use eval::{Item, XQueryEngine};
pub use parser::parse_xquery;

use std::fmt;

/// Errors from parsing or evaluating an XQuery expression.
#[derive(Debug)]
pub enum XQueryError {
    /// Syntax error in the FLWOR skeleton.
    Parse(String),
    /// An embedded XPath fragment failed to parse.
    XPath(vamana_xpath::ParseError),
    /// Evaluation failure (engine errors, unbound variables, ...).
    Eval(String),
}

impl fmt::Display for XQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XQueryError::Parse(m) => write!(f, "XQuery parse error: {m}"),
            XQueryError::XPath(e) => write!(f, "in embedded XPath: {e}"),
            XQueryError::Eval(m) => write!(f, "XQuery evaluation error: {m}"),
        }
    }
}

impl std::error::Error for XQueryError {}

impl From<vamana_xpath::ParseError> for XQueryError {
    fn from(e: vamana_xpath::ParseError) -> Self {
        XQueryError::XPath(e)
    }
}

impl From<vamana_core::EngineError> for XQueryError {
    fn from(e: vamana_core::EngineError) -> Self {
        XQueryError::Eval(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, XQueryError>;
