//! The FLWOR abstract syntax tree.

use vamana_xpath::Expr;

/// An XQuery-lite expression.
#[derive(Debug, Clone, PartialEq)]
pub enum XqExpr {
    /// A FLWOR expression.
    Flwor(Box<Flwor>),
    /// An embedded XPath expression (may reference bound variables).
    XPath(Expr),
    /// A direct element constructor.
    ElementCtor {
        /// Element name.
        name: String,
        /// Static attributes.
        attrs: Vec<(String, String)>,
        /// Ordered content.
        children: Vec<Content>,
    },
}

/// Content inside an element constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Literal character data.
    Text(String),
    /// `{ expr }` — evaluated and spliced in.
    Embed(XqExpr),
}

/// A FLWOR expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Flwor {
    /// `for`/`let` clauses, in order.
    pub clauses: Vec<Clause>,
    /// Optional `where` filter.
    pub where_clause: Option<Expr>,
    /// Optional `order by` key with descending flag.
    pub order_by: Option<(Expr, bool)>,
    /// The `return` expression, evaluated once per surviving tuple.
    pub ret: XqExpr,
}

/// One binding clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `for $var [at $pos] in expr` — iterates the node sequence,
    /// optionally binding the 1-based iteration position.
    For {
        /// Variable name (without `$`).
        var: String,
        /// Optional positional variable (`at $pos`).
        pos: Option<String>,
        /// Source expression.
        source: Expr,
    },
    /// `let $var := expr` — binds the whole sequence.
    Let {
        /// Variable name (without `$`).
        var: String,
        /// Bound expression.
        source: Expr,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_shapes_construct() {
        let f = Flwor {
            clauses: vec![Clause::For {
                var: "p".into(),
                pos: None,
                source: vamana_xpath::parse("//person").unwrap(),
            }],
            where_clause: None,
            order_by: None,
            ret: XqExpr::XPath(vamana_xpath::parse("$p/name").unwrap()),
        };
        assert_eq!(f.clauses.len(), 1);
        assert!(matches!(f.ret, XqExpr::XPath(_)));
    }
}
