//! FLWOR evaluation over a VAMANA [`Engine`].
//!
//! Variable-relative paths (`$p/name`) run through
//! [`Engine::query_from`], so each binding iterates the same pipelined,
//! index-driven machinery as a standalone XPath query — the integration
//! the paper sketches in §V-B/§VII.

use crate::ast::{Clause, Content, Flwor, XqExpr};
use crate::parser::parse_xquery;
use crate::{Result, XQueryError};
use vamana_core::exec::value as xval;
use vamana_core::{DocId, Engine, Value};
use vamana_mass::{NodeEntry, RecordKind};
use vamana_xpath::{ast as xp, Expr};

/// One item of an XQuery result sequence.
#[derive(Debug, Clone)]
pub enum Item {
    /// A stored node.
    Node(NodeEntry),
    /// Constructed XML (element-constructor output; serialized form).
    Xml(String),
    /// An atomic string.
    Str(String),
    /// An atomic number.
    Num(f64),
    /// An atomic boolean.
    Bool(bool),
}

/// Variable bindings, innermost last.
type Bindings = Vec<(String, Vec<Item>)>;

fn lookup<'a>(env: &'a Bindings, var: &str) -> Result<&'a Vec<Item>> {
    env.iter()
        .rev()
        .find(|(name, _)| name == var)
        .map(|(_, items)| items)
        .ok_or_else(|| XQueryError::Eval(format!("unbound variable ${var}")))
}

/// The FLWOR evaluator.
pub struct XQueryEngine<'a> {
    engine: &'a Engine,
    doc: DocId,
}

impl<'a> XQueryEngine<'a> {
    /// Evaluates against document 0 of the engine's store.
    pub fn new(engine: &'a Engine) -> Self {
        XQueryEngine {
            engine,
            doc: DocId(0),
        }
    }

    /// Evaluates against a specific document.
    pub fn for_document(engine: &'a Engine, doc: DocId) -> Self {
        XQueryEngine { engine, doc }
    }

    /// Parses and evaluates `query`, returning the result sequence.
    pub fn eval(&self, query: &str) -> Result<Vec<Item>> {
        let expr = parse_xquery(query)?;
        self.eval_xq(&expr, &Vec::new())
    }

    /// Parses, evaluates and serializes `query` to XML/text.
    pub fn eval_to_xml(&self, query: &str) -> Result<String> {
        let items = self.eval(query)?;
        let mut out = String::new();
        let mut prev_atomic = false;
        for item in &items {
            let (s, atomic) = self.serialize_item(item)?;
            if prev_atomic && atomic && !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&s);
            prev_atomic = atomic;
        }
        Ok(out)
    }

    fn serialize_item(&self, item: &Item) -> Result<(String, bool)> {
        Ok(match item {
            Item::Node(n) => match n.kind {
                RecordKind::Element | RecordKind::Document => (
                    vamana_mass::export::export_subtree_xml(self.engine.store(), &n.key)
                        .map_err(|e| XQueryError::Eval(e.to_string()))?,
                    false,
                ),
                _ => (escape(&self.node_string(n)?), true),
            },
            Item::Xml(x) => (x.clone(), false),
            Item::Str(s) => (escape(s), true),
            Item::Num(n) => (xval::format_number(*n), true),
            Item::Bool(b) => (b.to_string(), true),
        })
    }

    fn node_string(&self, n: &NodeEntry) -> Result<String> {
        self.engine
            .store()
            .string_value(&n.key)
            .map_err(|e| XQueryError::Eval(e.to_string()))
    }

    fn doc_entry(&self) -> Result<NodeEntry> {
        let info = self
            .engine
            .store()
            .document(self.doc)
            .ok_or_else(|| XQueryError::Eval("no such document".into()))?;
        Ok(NodeEntry {
            key: info.doc_key.clone(),
            kind: RecordKind::Document,
            name: None,
        })
    }

    // ---- FLWOR machinery --------------------------------------------------

    fn eval_xq(&self, expr: &XqExpr, env: &Bindings) -> Result<Vec<Item>> {
        match expr {
            XqExpr::Flwor(f) => self.eval_flwor(f, env),
            XqExpr::XPath(e) => self.eval_xpath_items(e, env),
            XqExpr::ElementCtor {
                name,
                attrs,
                children,
            } => Ok(vec![Item::Xml(
                self.build_element(name, attrs, children, env)?,
            )]),
        }
    }

    fn eval_flwor(&self, f: &Flwor, env: &Bindings) -> Result<Vec<Item>> {
        // Expand for/let clauses into a stream of binding tuples.
        let mut tuples: Vec<Bindings> = vec![env.clone()];
        for clause in &f.clauses {
            match clause {
                Clause::For { var, pos, source } => {
                    let mut next = Vec::new();
                    for tuple in &tuples {
                        for (i, item) in self
                            .eval_xpath_items(source, tuple)?
                            .into_iter()
                            .enumerate()
                        {
                            let mut t = tuple.clone();
                            t.push((var.clone(), vec![item]));
                            if let Some(pos_var) = pos {
                                t.push((pos_var.clone(), vec![Item::Num((i + 1) as f64)]));
                            }
                            next.push(t);
                        }
                    }
                    tuples = next;
                }
                Clause::Let { var, source } => {
                    for tuple in &mut tuples {
                        let seq = self.eval_xpath_items(source, tuple)?;
                        tuple.push((var.clone(), seq));
                    }
                }
            }
        }

        // where
        if let Some(cond) = &f.where_clause {
            let mut kept = Vec::new();
            for tuple in tuples {
                if self.eval_xpath_value(cond, &tuple)?.boolean() {
                    kept.push(tuple);
                }
            }
            tuples = kept;
        }

        // order by
        if let Some((key_expr, descending)) = &f.order_by {
            let mut keyed: Vec<(OrderKey, Bindings)> = Vec::with_capacity(tuples.len());
            for tuple in tuples {
                let v = self.eval_xpath_value(key_expr, &tuple)?;
                let s = v
                    .string(self.engine.store())
                    .map_err(|e| XQueryError::Eval(e.to_string()))?;
                keyed.push((OrderKey::from(s), tuple));
            }
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            if *descending {
                keyed.reverse();
            }
            tuples = keyed.into_iter().map(|(_, t)| t).collect();
        }

        // return
        let mut out = Vec::new();
        for tuple in &tuples {
            out.extend(self.eval_xq(&f.ret, tuple)?);
        }
        Ok(out)
    }

    fn build_element(
        &self,
        name: &str,
        attrs: &[(String, String)],
        children: &[Content],
        env: &Bindings,
    ) -> Result<String> {
        let mut out = String::new();
        out.push('<');
        out.push_str(name);
        for (a, v) in attrs {
            out.push_str(&format!(" {a}=\"{}\"", escape(v)));
        }
        if children.is_empty() {
            out.push_str("/>");
            return Ok(out);
        }
        out.push('>');
        let mut prev_atomic = false;
        for child in children {
            match child {
                Content::Text(t) => {
                    out.push_str(&escape(t));
                    prev_atomic = false;
                }
                Content::Embed(e) => {
                    for item in self.eval_xq(e, env)? {
                        let (s, atomic) = self.serialize_item(&item)?;
                        if prev_atomic && atomic {
                            out.push(' ');
                        }
                        out.push_str(&s);
                        prev_atomic = atomic;
                    }
                }
            }
        }
        out.push_str("</");
        out.push_str(name);
        out.push('>');
        Ok(out)
    }

    // ---- XPath fragments with variables ------------------------------------

    /// Evaluates an embedded XPath expression to a sequence of items.
    fn eval_xpath_items(&self, e: &Expr, env: &Bindings) -> Result<Vec<Item>> {
        match e {
            Expr::Var(v) => Ok(lookup(env, v)?.clone()),
            Expr::Filter {
                primary,
                predicates,
                path,
            } => {
                if let Expr::Var(v) = &**primary {
                    if !predicates.is_empty() {
                        return Err(XQueryError::Eval(
                            "predicates directly on a variable are not supported; filter in the where clause".into(),
                        ));
                    }
                    let bound = lookup(env, v)?.clone();
                    let Some(rel) = path else { return Ok(bound) };
                    let rel_text = rel.to_string();
                    let mut nodes: Vec<NodeEntry> = Vec::new();
                    for item in &bound {
                        let Item::Node(n) = item else {
                            return Err(XQueryError::Eval(format!(
                                "${v} is not a node sequence; cannot navigate {rel_text}"
                            )));
                        };
                        nodes.extend(self.engine.query_from(n, &rel_text)?);
                    }
                    nodes.sort_by(|a, b| a.key.cmp(&b.key));
                    nodes.dedup_by(|a, b| a.key == b.key);
                    return Ok(nodes.into_iter().map(Item::Node).collect());
                }
                // Variable-free filter: delegate to the engine.
                self.eval_plain_path(e)
            }
            Expr::Path(_) | Expr::Union(..) => {
                if expr_uses_vars(e) {
                    return Err(XQueryError::Eval(
                        "variables inside unions/paths must be the leading step (`$x/...`)".into(),
                    ));
                }
                self.eval_plain_path(e)
            }
            scalar => {
                let v = self.eval_xpath_value(scalar, env)?;
                Ok(match v {
                    Value::Nodes(ns) => ns.into_iter().map(Item::Node).collect(),
                    Value::Str(s) => vec![Item::Str(s)],
                    Value::Num(n) => vec![Item::Num(n)],
                    Value::Bool(b) => vec![Item::Bool(b)],
                })
            }
        }
    }

    fn eval_plain_path(&self, e: &Expr) -> Result<Vec<Item>> {
        let nodes = self.engine.query_doc(self.doc, &e.to_string())?;
        Ok(nodes.into_iter().map(Item::Node).collect())
    }

    /// Evaluates an embedded XPath expression to an XPath [`Value`]
    /// (where clauses, order keys, constructor scalars).
    fn eval_xpath_value(&self, e: &Expr, env: &Bindings) -> Result<Value> {
        let store = self.engine.store();
        Ok(match e {
            Expr::Literal(s) => Value::Str(s.to_string()),
            Expr::Number(n) => Value::Num(*n),
            Expr::Var(_) | Expr::Path(_) | Expr::Filter { .. } | Expr::Union(..) => {
                let items = self.eval_xpath_items(e, env)?;
                items_to_value(items)?
            }
            Expr::Or(a, b) => Value::Bool(
                self.eval_xpath_value(a, env)?.boolean()
                    || self.eval_xpath_value(b, env)?.boolean(),
            ),
            Expr::And(a, b) => Value::Bool(
                self.eval_xpath_value(a, env)?.boolean()
                    && self.eval_xpath_value(b, env)?.boolean(),
            ),
            Expr::Equality(op, a, b) => {
                let bin = match op {
                    xp::EqOp::Eq => vamana_core::plan::BinOp::Eq,
                    xp::EqOp::Ne => vamana_core::plan::BinOp::Ne,
                };
                let l = self.eval_xpath_value(a, env)?;
                let r = self.eval_xpath_value(b, env)?;
                Value::Bool(
                    xval::compare(store, bin, &l, &r)
                        .map_err(|e| XQueryError::Eval(e.to_string()))?,
                )
            }
            Expr::Relational(op, a, b) => {
                let bin = match op {
                    xp::RelOp::Lt => vamana_core::plan::BinOp::Lt,
                    xp::RelOp::Le => vamana_core::plan::BinOp::Le,
                    xp::RelOp::Gt => vamana_core::plan::BinOp::Gt,
                    xp::RelOp::Ge => vamana_core::plan::BinOp::Ge,
                };
                let l = self.eval_xpath_value(a, env)?;
                let r = self.eval_xpath_value(b, env)?;
                Value::Bool(
                    xval::compare(store, bin, &l, &r)
                        .map_err(|e| XQueryError::Eval(e.to_string()))?,
                )
            }
            Expr::Arithmetic(op, a, b) => {
                let l = self
                    .eval_xpath_value(a, env)?
                    .number(store)
                    .map_err(|e| XQueryError::Eval(e.to_string()))?;
                let r = self
                    .eval_xpath_value(b, env)?
                    .number(store)
                    .map_err(|e| XQueryError::Eval(e.to_string()))?;
                Value::Num(match op {
                    xp::ArithOp::Add => l + r,
                    xp::ArithOp::Sub => l - r,
                    xp::ArithOp::Mul => l * r,
                    xp::ArithOp::Div => l / r,
                    xp::ArithOp::Mod => l % r,
                })
            }
            Expr::Neg(inner) => Value::Num(
                -self
                    .eval_xpath_value(inner, env)?
                    .number(store)
                    .map_err(|e| XQueryError::Eval(e.to_string()))?,
            ),
            Expr::FunctionCall(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_xpath_value(a, env)?);
                }
                let ctx = self.doc_entry()?;
                xval::call_function(store, name, &vals, &ctx, 1, 1)
                    .map_err(|e| XQueryError::Eval(e.to_string()))?
            }
        })
    }
}

/// Converts a sequence to an XPath value: node sequences become
/// node-sets; singleton atomics pass through.
fn items_to_value(items: Vec<Item>) -> Result<Value> {
    if items.iter().all(|i| matches!(i, Item::Node(_))) {
        let nodes = items
            .into_iter()
            .map(|i| match i {
                Item::Node(n) => n,
                _ => unreachable!(),
            })
            .collect();
        return Ok(Value::Nodes(nodes));
    }
    if items.len() == 1 {
        return Ok(match items.into_iter().next().expect("len 1") {
            Item::Str(s) | Item::Xml(s) => Value::Str(s),
            Item::Num(n) => Value::Num(n),
            Item::Bool(b) => Value::Bool(b),
            Item::Node(_) => unreachable!("handled above"),
        });
    }
    Err(XQueryError::Eval(
        "mixed atomic sequence in value context".into(),
    ))
}

/// True if the expression references any variable.
fn expr_uses_vars(e: &Expr) -> bool {
    match e {
        Expr::Var(_) => true,
        Expr::Path(p) => p
            .steps
            .iter()
            .any(|s| s.predicates.iter().any(expr_uses_vars)),
        Expr::Filter {
            primary,
            predicates,
            path,
        } => {
            expr_uses_vars(primary)
                || predicates.iter().any(expr_uses_vars)
                || path.as_ref().is_some_and(|p| {
                    p.steps
                        .iter()
                        .any(|s| s.predicates.iter().any(expr_uses_vars))
                })
        }
        Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::Equality(_, a, b)
        | Expr::Relational(_, a, b)
        | Expr::Arithmetic(_, a, b)
        | Expr::Union(a, b) => expr_uses_vars(a) || expr_uses_vars(b),
        Expr::Neg(x) => expr_uses_vars(x),
        Expr::FunctionCall(_, args) => args.iter().any(expr_uses_vars),
        Expr::Literal(_) | Expr::Number(_) => false,
    }
}

/// Sort key for `order by`: numeric when the value parses as a number,
/// lexicographic otherwise; numbers sort before strings.
#[derive(Debug, PartialEq)]
enum OrderKey {
    Num(f64),
    Str(String),
}

impl From<String> for OrderKey {
    fn from(s: String) -> Self {
        match s.trim().parse::<f64>() {
            Ok(n) if !n.is_nan() => OrderKey::Num(n),
            _ => OrderKey::Str(s),
        }
    }
}

impl Eq for OrderKey {}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (OrderKey::Num(a), OrderKey::Num(b)) => a.total_cmp(b),
            (OrderKey::Str(a), OrderKey::Str(b)) => a.cmp(b),
            (OrderKey::Num(_), OrderKey::Str(_)) => std::cmp::Ordering::Less,
            (OrderKey::Str(_), OrderKey::Num(_)) => std::cmp::Ordering::Greater,
        }
    }
}

/// Minimal XML text escaping for constructed content.
fn escape(s: &str) -> String {
    vamana_xml::escape::escape_text(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_core::MassStore;

    const DOC: &str = r#"<site><people>
      <person id="p0"><name>Cyd</name><age>44</age>
        <address><province>Vermont</province></address></person>
      <person id="p1"><name>Ann</name><age>31</age>
        <address><province>Texas</province></address></person>
      <person id="p2"><name>Bob</name><age>17</age></person>
    </people></site>"#;

    fn engine() -> Engine {
        let mut store = MassStore::open_memory();
        store.load_xml("doc", DOC).unwrap();
        Engine::new(store)
    }

    #[test]
    fn simple_for_return_path() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        let out = xq.eval_to_xml("for $p in //person return $p/name").unwrap();
        assert_eq!(out, "<name>Cyd</name><name>Ann</name><name>Bob</name>");
    }

    #[test]
    fn where_clause_filters_bindings() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        let out = xq
            .eval_to_xml("for $p in //person where $p/age > 20 return $p/name")
            .unwrap();
        assert_eq!(out, "<name>Cyd</name><name>Ann</name>");
    }

    #[test]
    fn order_by_sorts_tuples() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        let out = xq
            .eval_to_xml("for $p in //person order by $p/name return $p/name")
            .unwrap();
        assert_eq!(out, "<name>Ann</name><name>Bob</name><name>Cyd</name>");
        let out = xq
            .eval_to_xml("for $p in //person order by $p/age descending return $p/age")
            .unwrap();
        assert_eq!(out, "<age>44</age><age>31</age><age>17</age>");
    }

    #[test]
    fn let_bindings_and_constructors() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        let out = xq
            .eval_to_xml(
                "for $p in //person let $n := $p/name where $p/address return <resident>{ $n/text() }</resident>",
            )
            .unwrap();
        assert_eq!(out, "<resident>Cyd</resident><resident>Ann</resident>");
    }

    #[test]
    fn constructor_copies_element_nodes() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        let out = xq
            .eval_to_xml("for $p in //person where $p/name = 'Bob' return <row>{ $p/name }</row>")
            .unwrap();
        assert_eq!(out, "<row><name>Bob</name></row>");
    }

    #[test]
    fn nested_flwor_joins_documents() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        // Cross product filtered by equality — a value join expressed in
        // FLWOR form.
        let out = xq
            .eval_to_xml(
                "for $a in //person, $b in //person where $a/age < $b/age return <pair>{ $a/name/text() } { $b/name/text() }</pair>",
            )
            .unwrap();
        assert_eq!(
            out,
            "<pair>Ann Cyd</pair><pair>Bob Cyd</pair><pair>Bob Ann</pair>"
        );
    }

    #[test]
    fn aggregates_in_constructors() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        let out = xq
            .eval_to_xml("<report>{ count(//person) }</report>")
            .unwrap();
        assert_eq!(out, "<report>3</report>");
        let out = xq.eval_to_xml("<total>{ sum(//age) }</total>").unwrap();
        assert_eq!(out, "<total>92</total>");
    }

    #[test]
    fn positional_variables_bind_iteration_index() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        let out = xq
            .eval_to_xml("for $p at $i in //person return <n>{ $i }</n>")
            .unwrap();
        assert_eq!(out, "<n>1</n><n>2</n><n>3</n>");
        // Positions are usable in where clauses.
        let out = xq
            .eval_to_xml("for $p at $i in //person where $i = 2 return $p/name")
            .unwrap();
        assert_eq!(out, "<name>Ann</name>");
    }

    #[test]
    fn plain_xpath_still_works() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        let items = xq.eval("//person[age > 40]/name").unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = engine();
        let xq = XQueryEngine::new(&e);
        assert!(matches!(
            xq.eval("for $p in //person return $q/name"),
            Err(XQueryError::Eval(_))
        ));
    }

    #[test]
    fn text_escaping_in_output() {
        let mut store = MassStore::open_memory();
        store.load_xml("d", "<r><v>a &lt; b</v></r>").unwrap();
        let e = Engine::new(store);
        let xq = XQueryEngine::new(&e);
        let out = xq
            .eval_to_xml("for $v in //v return <out>{ $v/text() }</out>")
            .unwrap();
        assert_eq!(out, "<out>a &lt; b</out>");
    }
}
