//! Optimizer benches: (a) the paper's "negligible optimization overhead"
//! claim — optimize time per query; (b) rule ablations — execution time
//! of plans optimized with individual rules disabled, quantifying what
//! each rewrite contributes (the design choices DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vamana_bench::{document, QUERIES};
use vamana_core::opt::{optimize, OptimizerOptions};
use vamana_core::{DocId, Engine, MassStore};
use vamana_flex::KeyRange;

fn engine_1mb() -> Engine {
    let xml = document(1.0);
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).expect("load");
    Engine::new(store)
}

fn bench_optimize_overhead(c: &mut Criterion) {
    let engine = engine_1mb();
    let mut group = c.benchmark_group("optimize_overhead");
    for (label, query) in QUERIES {
        let plan = engine.compile(query).expect("compile");
        group.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, plan| {
            b.iter(|| {
                engine
                    .optimize_plan(plan.clone(), DocId(0))
                    .expect("optimize")
            })
        });
    }
    group.finish();
}

fn bench_rule_ablation(c: &mut Criterion) {
    let engine = engine_1mb();
    let scope = KeyRange::subtree(&engine.store().documents()[0].doc_key);
    let mut group = c.benchmark_group("rule_ablation");
    group.sample_size(10);

    // (query, the rule whose absence should hurt it)
    let cases = [
        ("Q1_no_pushdown", QUERIES[0].1, Some("child-pushdown")),
        ("Q1_full", QUERIES[0].1, None),
        ("Q3_no_inversion", QUERIES[2].1, Some("parent-inversion")),
        ("Q3_full", QUERIES[2].1, None),
        ("Q5_no_value_index", QUERIES[4].1, Some("value-index-step")),
        ("Q5_full", QUERIES[4].1, None),
    ];
    for (label, query, disabled) in cases {
        let plan = engine.compile(query).expect("compile");
        let options = OptimizerOptions {
            disabled_rules: disabled.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        };
        let outcome = optimize(plan, engine.store(), &scope, &options).expect("optimize");
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &outcome.plan,
            |b, plan| b.iter(|| engine.execute_plan(plan, DocId(0)).expect("execute").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimize_overhead, bench_rule_ablation);
criterion_main!(benches);
