//! MASS micro-benchmarks: the index primitives the paper's cost model
//! and index-only plans rely on — loading, point lookups, index-level
//! counting (vs scanning), axis streams, and value-index lookups.

use criterion::{criterion_group, criterion_main, Criterion};
use vamana_bench::document;
use vamana_flex::{Axis, FlexKey, KeyRange};
use vamana_mass::axes::{axis_stream, NodeFilter};
use vamana_mass::{MassCursor, MassStore, RecordKind};

fn store_1mb() -> MassStore {
    let xml = document(1.0);
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).expect("load");
    store
}

fn bench_load(c: &mut Criterion) {
    let xml = document(1.0);
    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.bench_function("bulk_load_1mb", |b| {
        b.iter(|| {
            let mut store = MassStore::open_memory();
            store.load_xml("auction.xml", &xml).expect("load");
            store.stats().tuples
        })
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let store = store_1mb();
    let person = store.name_id("person").expect("person");
    let person_keys: Vec<FlexKey> = store
        .name_index()
        .elements(person)
        .iter()
        .map(|k| FlexKey::from_flat(k.to_vec()))
        .collect();
    let mid = person_keys[person_keys.len() / 2].clone();
    let doc_key = store.documents()[0].doc_key.clone();

    let mut group = c.benchmark_group("storage");

    group.bench_function("point_get", |b| {
        b.iter(|| store.get(&mid).expect("io").is_some())
    });

    // The paper's headline: counting on the index level without touching
    // data pages...
    group.bench_function("count_index_only", |b| {
        b.iter(|| store.count_elements_in(person, &KeyRange::subtree(&doc_key)))
    });

    // ...versus what a scan-based count would cost.
    group.bench_function("count_by_scan", |b| {
        b.iter(|| {
            let mut cursor = MassCursor::new(&store, KeyRange::subtree(&doc_key));
            let mut n = 0u64;
            while let Some(rec) = cursor.next().expect("io") {
                if rec.kind == RecordKind::Element && rec.name == Some(person) {
                    n += 1;
                }
            }
            n
        })
    });

    group.bench_function("descendant_stream_person", |b| {
        b.iter(|| {
            let mut s = axis_stream(
                &store,
                &doc_key,
                RecordKind::Document,
                Axis::Descendant,
                NodeFilter::element(person),
            )
            .expect("stream");
            let mut n = 0;
            while s.next().expect("io").is_some() {
                n += 1;
            }
            n
        })
    });

    group.bench_function("child_stream_jumps", |b| {
        b.iter(|| {
            let mut s = axis_stream(
                &store,
                &mid,
                RecordKind::Element,
                Axis::Child,
                NodeFilter::any(),
            )
            .expect("stream");
            let mut n = 0;
            while s.next().expect("io").is_some() {
                n += 1;
            }
            n
        })
    });

    group.bench_function("value_index_tc", |b| b.iter(|| store.text_count("Vermont")));

    group.bench_function("parent_lookup", |b| {
        b.iter(|| {
            let mut s = axis_stream(
                &store,
                &mid,
                RecordKind::Element,
                Axis::Parent,
                NodeFilter::any_element(),
            )
            .expect("stream");
            s.next().expect("io").is_some()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_load, bench_primitives);
criterion_main!(benches);
