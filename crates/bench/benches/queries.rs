//! Criterion benches for the evaluation queries (Figs 12–16 micro-scale):
//! every (query × engine) cell at a fixed document size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vamana_bench::{document, Lineup, QUERIES};

fn bench_queries(c: &mut Criterion) {
    let xml = document(1.0);
    let lineup = Lineup::build(&xml);
    let mut group = c.benchmark_group("queries_1mb");
    group.sample_size(10);
    for (label, query) in QUERIES {
        for engine in lineup.engines() {
            // Skip unsupported combinations (Galax/eXist on Q4) instead
            // of benchmarking an error path.
            if engine.count(query).is_err() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(*label, engine.label()), query, |b, q| {
                b.iter(|| engine.count(q).expect("supported"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
