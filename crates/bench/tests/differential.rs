//! Differential correctness of the batched pipeline over the full XMark
//! query suite: batched execution must be byte-identical to the scalar
//! path — same nodes, same order — and both must agree with the
//! `vamana-baseline` DOM engine.

use vamana_baseline::XPathEngine;
use vamana_bench::{VamanaBench, QUERIES, SCAN_QUERIES};
use vamana_core::exec::BATCH_SIZE;
use vamana_core::{DocId, Engine, NodeEntry};
use vamana_xmark::scale::config_for_megabytes;

fn all_queries() -> impl Iterator<Item = (&'static str, &'static str)> {
    QUERIES.iter().chain(SCAN_QUERIES).copied()
}

fn drain_stream(engine: &Engine, xpath: &str, batched: bool) -> Vec<NodeEntry> {
    let mut stream = engine.stream(DocId(0), xpath).unwrap();
    let mut out = Vec::new();
    if batched {
        while stream.next_batch(&mut out, BATCH_SIZE).unwrap() > 0 {}
    } else {
        while let Some(t) = stream.next().unwrap() {
            out.push(t);
        }
    }
    out
}

/// Materialized results (set semantics) are identical in both modes for
/// every query of the evaluation and scan suites.
#[test]
fn batched_results_equal_scalar_results() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let mut bench = VamanaBench::optimized(&xml);
    for (name, xpath) in all_queries() {
        let scalar = {
            let engine = bench.engine_mut();
            engine.options_mut().batched = false;
            engine.query(xpath).unwrap()
        };
        let batched = {
            let engine = bench.engine_mut();
            engine.options_mut().batched = true;
            engine.query(xpath).unwrap()
        };
        assert!(!batched.is_empty(), "{name} returned nothing");
        assert_eq!(batched, scalar, "{name}: batched != scalar results");
    }
}

/// Raw pipeline tuple sequences (before duplicate elimination) are also
/// identical — batching must not reorder tuples anywhere in the plan.
#[test]
fn batched_streams_equal_scalar_streams() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let mut bench = VamanaBench::optimized(&xml);
    for (name, xpath) in all_queries() {
        bench.engine_mut().options_mut().batched = false;
        let scalar = drain_stream(bench.engine(), xpath, false);
        bench.engine_mut().options_mut().batched = true;
        let batched = drain_stream(bench.engine(), xpath, true);
        assert_eq!(batched, scalar, "{name}: batched != scalar tuple order");
    }
}

/// Both modes agree with the DOM oracle on names and string values, in
/// document order.
#[test]
fn both_modes_agree_with_dom_baseline() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let dom = vamana_baseline::dom::DomEngine::from_xml(&xml).unwrap();
    let mut bench = VamanaBench::optimized(&xml);
    for (name, xpath) in all_queries() {
        let oracle = dom.identities(xpath).unwrap();
        assert!(!oracle.is_empty(), "{name}: oracle returned nothing");
        for batched in [false, true] {
            bench.engine_mut().options_mut().batched = batched;
            let got = bench.identities(xpath).unwrap();
            assert_eq!(
                got, oracle,
                "{name}: vamana (batched={batched}) != DOM oracle"
            );
        }
    }
}
