//! Differential correctness of the semantic cache over the full XMark
//! query suite: with views enabled, every run of every query — cold
//! (materializing), warm (answered from a view), batched and scalar —
//! must be byte-identical to a view-less engine and to the DOM oracle.
//! Queries outside the containment fragment (reverse axes, positional
//! predicates) must pass untouched.

use vamana_baseline::XPathEngine;
use vamana_bench::{VamanaBench, QUERIES, SCAN_QUERIES};
use vamana_core::{DocId, Engine, MassStore, NodeEntry};
use vamana_xmark::scale::config_for_megabytes;

fn all_queries() -> impl Iterator<Item = (&'static str, &'static str)> {
    QUERIES.iter().chain(SCAN_QUERIES).copied()
}

/// A views-enabled engine with immediate admission so the second run of
/// any cacheable query is answered from a materialized view.
fn views_engine(xml: &str, greedy: bool) -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", xml).expect("load");
    let mut engine = Engine::new(store);
    let options = engine.options_mut();
    options.views = true;
    options.view_admit_after = 1;
    options.view_greedy = greedy;
    engine
}

fn identities(engine: &Engine, result: &[NodeEntry]) -> Vec<vamana_baseline::NodeIdentity> {
    let names = engine.names_of(result).expect("names");
    let values = engine.string_values(result).expect("values");
    names
        .into_iter()
        .zip(values)
        .map(|(name, value)| vamana_baseline::NodeIdentity { name, value })
        .collect()
}

/// Cold, warm and hot runs all equal the uncached answer and the DOM
/// oracle, in both execution modes, for every query of the suite.
#[test]
fn cached_results_equal_uncached_and_oracle() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let dom = vamana_baseline::dom::DomEngine::from_xml(&xml).unwrap();
    let mut uncached = VamanaBench::optimized(&xml);
    let mut subject = views_engine(&xml, false);
    for (name, xpath) in all_queries() {
        let oracle = dom.identities(xpath).unwrap();
        assert!(!oracle.is_empty(), "{name}: oracle returned nothing");
        for batched in [false, true] {
            uncached.engine_mut().options_mut().batched = batched;
            subject.options_mut().batched = batched;
            let reference = uncached.engine().query(xpath).unwrap();
            assert_eq!(
                identities(uncached.engine(), &reference),
                oracle,
                "{name}: uncached engine disagrees with DOM oracle"
            );
            // Run 1 materializes, runs 2-3 may be view-answered; all
            // three must be byte-identical to the uncached result.
            for run in 0..3 {
                let got = subject.query_doc(DocId(0), xpath).unwrap();
                assert_eq!(
                    got, reference,
                    "{name} run {run} (batched={batched}): cached != uncached"
                );
            }
        }
    }
    // The suite must actually exercise the cache, not pass vacuously.
    let stats = subject.views().stats();
    assert!(stats.views >= 1, "no view was ever materialized: {stats:?}");
    assert!(stats.hits >= 1, "no query was view-answered: {stats:?}");
}

/// Compensation correctness: materialize deliberately general views,
/// then answer tighter queries through them (greedy acceptance forces
/// the rewrite even when the cost model would keep the index plan) and
/// compare against the DOM oracle.
#[test]
fn compensated_rewrites_agree_with_oracle() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let dom = vamana_baseline::dom::DomEngine::from_xml(&xml).unwrap();
    let mut subject = views_engine(&xml, true);
    let doc = DocId(0);
    for view in ["//person", "//item", "//person/address"] {
        subject.query_doc(doc, view).unwrap(); // materialize
    }
    for (name, xpath) in [
        ("specialized pred", "//person[address]"),
        ("specialized nested pred", "//person[address/province]"),
        ("exact view", "//person/address"),
        ("item pred", "//item[mailbox]"),
    ] {
        for batched in [false, true] {
            subject.options_mut().batched = batched;
            let result = subject.query_doc(doc, xpath).unwrap();
            let got = identities(&subject, &result);
            let oracle = dom.identities(xpath).unwrap();
            assert_eq!(
                got, oracle,
                "{name} (batched={batched}): rewrite disagrees with oracle"
            );
        }
    }
    let stats = subject.views().stats();
    assert!(stats.hits >= 1, "no rewrite was ever applied: {stats:?}");
}
