//! Differential correctness of the compressed (v2) page tier over the
//! full XMark query suite: a v2-format store must return byte-identical
//! results to a v1 store for every query, in every execution mode
//! (scalar, batched, morsel-parallel, fused), and both must agree with
//! the `vamana-baseline` DOM engine. FLEX keys are deterministic for a
//! given load order, so whole [`NodeEntry`] sequences are comparable
//! across stores.

use vamana_baseline::XPathEngine as _;
use vamana_bench::{QUERIES, SCAN_QUERIES};
use vamana_core::{DocId, Engine, MassStore, NodeEntry};
use vamana_mass::StoreFormat;

fn all_queries() -> impl Iterator<Item = (&'static str, &'static str)> {
    QUERIES.iter().chain(SCAN_QUERIES).copied()
}

fn engine_with_format(xml: &str, format: StoreFormat) -> Engine {
    let mut store = MassStore::open_memory();
    store.set_format(format).expect("fresh store");
    store.load_xml("auction.xml", xml).expect("load");
    let mut engine = Engine::new(store);
    engine.options_mut().optimize = true;
    engine
}

/// (mode label, configure closure) for every execution mode.
type ModeSetup = (&'static str, fn(&mut Engine));

const MODES: [ModeSetup; 4] = [
    ("scalar", |e| {
        e.options_mut().batched = false;
    }),
    ("batched", |e| {
        e.options_mut().batched = true;
    }),
    ("parallel", |e| {
        let o = e.options_mut();
        o.batched = true;
        o.parallel = true;
        o.parallel_workers = 2;
        o.parallel_threshold = 32;
        o.parallel_min_morsel = 16;
    }),
    ("fused", |e| {
        let o = e.options_mut();
        o.batched = true;
        o.fuse = true;
        o.fuse_force = true;
    }),
];

fn identities(engine: &Engine, result: &[NodeEntry]) -> Vec<vamana_baseline::NodeIdentity> {
    let names = engine.names_of(result).expect("names");
    let values = engine.string_values(result).expect("values");
    names
        .into_iter()
        .zip(values)
        .map(|(name, value)| vamana_baseline::NodeIdentity { name, value })
        .collect()
}

#[test]
fn v2_results_equal_v1_in_every_mode_and_match_oracle() {
    let xml = vamana_bench::document(0.4);
    let dom = vamana_baseline::dom::DomEngine::from_xml(&xml).unwrap();
    let mut v1 = engine_with_format(&xml, StoreFormat::V1);
    let mut v2 = engine_with_format(&xml, StoreFormat::V2);
    assert!(
        v2.store().stats().compressed_pages > 0,
        "v2 engine must actually run on compressed pages"
    );
    for (name, xpath) in all_queries() {
        let oracle = dom.identities(xpath).unwrap();
        assert!(!oracle.is_empty(), "{name}: oracle returned nothing");
        for (mode, setup) in MODES {
            setup(&mut v1);
            setup(&mut v2);
            let r1 = v1.query_doc(DocId(0), xpath).unwrap();
            let r2 = v2.query_doc(DocId(0), xpath).unwrap();
            assert_eq!(r2, r1, "{name} ({mode}): v2 != v1 results");
            assert_eq!(
                identities(&v2, &r2),
                oracle,
                "{name} ({mode}): v2 disagrees with DOM oracle"
            );
        }
    }
}

/// Value-returning evaluation (counts, string functions) goes through
/// `resolve_value` and therefore the dictionary on v2 — both formats
/// must agree on full `evaluate` output too.
#[test]
fn v2_evaluate_matches_v1() {
    let xml = vamana_bench::document(0.2);
    let v1 = engine_with_format(&xml, StoreFormat::V1);
    let v2 = engine_with_format(&xml, StoreFormat::V2);
    for xpath in [
        "count(//person)",
        "count(//item)",
        "string(//person[1]/name)",
        "//province[text()='Vermont']",
        "count(//incategory)",
    ] {
        let a = format!("{:?}", v1.evaluate(DocId(0), xpath).unwrap());
        let b = format!("{:?}", v2.evaluate(DocId(0), xpath).unwrap());
        assert_eq!(a, b, "{xpath}: v2 evaluate != v1");
    }
}
