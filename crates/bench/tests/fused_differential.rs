//! Differential correctness of whole-query fusion over the full XMark
//! query suite: with fusion *forced* (every extractable candidate
//! accepted, bypassing the cost gate so the fused executor is actually
//! exercised), every query — batched and scalar — must be
//! byte-identical to a plain engine and agree with the DOM oracle.
//! Queries outside the fusable fragment (reverse axes, sibling axes,
//! value predicates) must pass through untouched.

use vamana_baseline::XPathEngine;
use vamana_bench::{VamanaBench, QUERIES, SCAN_QUERIES};
use vamana_core::{DocId, Engine, MassStore, NodeEntry};
use vamana_xmark::scale::config_for_megabytes;

fn all_queries() -> impl Iterator<Item = (&'static str, &'static str)> {
    QUERIES.iter().chain(SCAN_QUERIES).copied()
}

fn fused_engine(xml: &str) -> Engine {
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", xml).expect("load");
    let mut engine = Engine::new(store);
    let options = engine.options_mut();
    options.fuse = true;
    options.fuse_force = true;
    engine
}

fn identities(engine: &Engine, result: &[NodeEntry]) -> Vec<vamana_baseline::NodeIdentity> {
    let names = engine.names_of(result).expect("names");
    let values = engine.string_values(result).expect("values");
    names
        .into_iter()
        .zip(values)
        .map(|(name, value)| vamana_baseline::NodeIdentity { name, value })
        .collect()
}

#[test]
fn fused_results_equal_unfused_and_oracle() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let dom = vamana_baseline::dom::DomEngine::from_xml(&xml).unwrap();
    let mut unfused = VamanaBench::optimized(&xml);
    let mut subject = fused_engine(&xml);
    for (name, xpath) in all_queries() {
        let oracle = dom.identities(xpath).unwrap();
        assert!(!oracle.is_empty(), "{name}: oracle returned nothing");
        for batched in [false, true] {
            unfused.engine_mut().options_mut().batched = batched;
            subject.options_mut().batched = batched;
            let reference = unfused.engine().query(xpath).unwrap();
            assert_eq!(
                identities(unfused.engine(), &reference),
                oracle,
                "{name}: unfused engine disagrees with DOM oracle"
            );
            let got = subject.query_doc(DocId(0), xpath).unwrap();
            assert_eq!(got, reference, "{name} (batched={batched}): fused != plain");
        }
    }
    // The suite must actually exercise fused operators, not pass
    // vacuously: the scan queries are all multi-step forward chains.
    let (chains, steps) = subject.fused_stats();
    assert!(
        chains >= 4,
        "only {chains} fused chains ran across the suite"
    );
    assert!(steps > chains, "fused chains collapsed no extra steps");
}

#[test]
fn fusion_under_parallel_scans_is_order_preserving() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let mut plain = VamanaBench::optimized(&xml);
    let mut subject = fused_engine(&xml);
    {
        let options = subject.options_mut();
        options.parallel = true;
        options.parallel_threshold = 1;
        options.parallel_min_morsel = 1;
    }
    for (name, xpath) in SCAN_QUERIES {
        let reference = plain.engine_mut().query(xpath).unwrap();
        let got = subject.query_doc(DocId(0), xpath).unwrap();
        assert_eq!(got, reference, "{name}: fused+parallel != plain");
        assert!(
            got.windows(2).all(|w| w[0].key < w[1].key),
            "{name}: fused+parallel output out of document order"
        );
    }
}
