//! Differential correctness of morsel-parallel execution over the full
//! XMark query suites: parallel must be byte-identical to serial-batched
//! and scalar execution, and all three must agree with the DOM oracle.
//!
//! Thresholds are lowered so every scan query fans out even on the small
//! test document, and a 2-worker pool runs with more morsels than
//! workers, forcing the stealing path.

use vamana_baseline::XPathEngine;
use vamana_bench::{VamanaBench, QUERIES, SCAN_QUERIES};
use vamana_core::exec::BATCH_SIZE;
use vamana_core::{DocId, Engine, NodeEntry};
use vamana_xmark::scale::config_for_megabytes;

fn all_queries() -> impl Iterator<Item = (&'static str, &'static str)> {
    QUERIES.iter().chain(SCAN_QUERIES).copied()
}

/// Force the parallel decision on a small document: low threshold, tiny
/// morsels, a fixed pool width.
fn force_parallel(engine: &mut Engine, workers: usize) {
    let opts = engine.options_mut();
    opts.parallel_workers = workers;
    opts.parallel_threshold = 32;
    opts.parallel_min_morsel = 16;
}

fn set_mode(engine: &mut Engine, parallel: bool, batched: bool) {
    engine.options_mut().parallel = parallel;
    engine.options_mut().batched = batched;
}

/// Materialized results (set semantics) are identical across all three
/// execution modes for every query of both suites, at 2 and 4 workers.
#[test]
fn parallel_results_equal_batched_and_scalar() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    for workers in [2, 4] {
        let mut bench = VamanaBench::optimized(&xml);
        force_parallel(bench.engine_mut(), workers);
        for (name, xpath) in all_queries() {
            set_mode(bench.engine_mut(), true, true);
            let parallel = bench.engine().query(xpath).unwrap();
            set_mode(bench.engine_mut(), false, true);
            let batched = bench.engine().query(xpath).unwrap();
            set_mode(bench.engine_mut(), false, false);
            let scalar = bench.engine().query(xpath).unwrap();
            assert!(!parallel.is_empty(), "{name} returned nothing");
            assert_eq!(
                parallel, batched,
                "{name} ({workers}w): parallel != serial-batched"
            );
            assert_eq!(batched, scalar, "{name} ({workers}w): batched != scalar");
        }
    }
}

/// Raw pipeline tuple sequences agree too: the ordered merge must
/// reproduce the serial batched stream exactly, not merely up to
/// reordering fixed by set semantics.
#[test]
fn parallel_streams_equal_serial_streams() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let mut bench = VamanaBench::optimized(&xml);
    // 2-worker pool with degree-capped fan-out: every scan query makes
    // more morsels than workers, so some are stolen or helped inline.
    force_parallel(bench.engine_mut(), 2);
    for (name, xpath) in all_queries() {
        set_mode(bench.engine_mut(), false, true);
        let serial = drain(bench.engine(), xpath);
        set_mode(bench.engine_mut(), true, true);
        let parallel = drain(bench.engine(), xpath);
        assert_eq!(parallel, serial, "{name}: parallel != serial tuple order");
    }
    let stats = bench.engine().parallel_stats();
    assert!(
        stats.morsels > stats.workers,
        "scan suite must have fanned out beyond the pool width: {stats:?}"
    );
}

/// All three modes agree with the DOM oracle on names and string values,
/// in document order.
#[test]
fn all_modes_agree_with_dom_baseline() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let dom = vamana_baseline::dom::DomEngine::from_xml(&xml).unwrap();
    let mut bench = VamanaBench::optimized(&xml);
    force_parallel(bench.engine_mut(), 4);
    for (name, xpath) in all_queries() {
        let oracle = dom.identities(xpath).unwrap();
        assert!(!oracle.is_empty(), "{name}: oracle returned nothing");
        for (parallel, batched) in [(true, true), (false, true), (false, false)] {
            set_mode(bench.engine_mut(), parallel, batched);
            let got = bench.identities(xpath).unwrap();
            assert_eq!(
                got, oracle,
                "{name}: vamana (parallel={parallel}, batched={batched}) != DOM oracle"
            );
        }
    }
}

fn drain(engine: &Engine, xpath: &str) -> Vec<NodeEntry> {
    let mut stream = engine.stream(DocId(0), xpath).unwrap();
    let mut out = Vec::new();
    while stream.next_batch(&mut out, BATCH_SIZE).unwrap() > 0 {}
    out
}
