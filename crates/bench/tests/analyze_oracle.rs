//! `EXPLAIN ANALYZE` actuals vs the DOM oracle, per operator.
//!
//! With the optimizer off, the pipeline's step chain mirrors the parsed
//! location path one-to-one, so every `Step` operator's recorded row
//! count must equal what a careful tree-walk produces for the same step
//! — *without* between-step duplicate elimination, which the pipeline
//! does not perform (only the root deduplicates, under set semantics).
//! [`DomEngine::eval_step`] exposes exactly that single-step evaluation.

use vamana_baseline::dom::DomEngine;
use vamana_bench::{vamana_engine, QUERIES, SCAN_QUERIES};
use vamana_core::{DocId, Engine, OpId, Operator};
use vamana_flex::Axis;
use vamana_xmark::scale::config_for_megabytes;
use vamana_xml::{Document, NodeId};
use vamana_xpath::{Expr, LocationPath, NodeTest, Step};

/// Mirrors the plan clean-up pass on the parsed step list: collapse
/// `descendant-or-self::node()/child::T` into `descendant::T` and merge
/// `self::T` into the preceding step — so each remaining AST step pairs
/// with exactly one `Step` operator of the default plan.
fn desugared_steps(path: &LocationPath) -> Vec<Step> {
    let mut steps: Vec<Step> = Vec::new();
    for s in &path.steps {
        if s.axis == Axis::Child {
            if let Some(prev) = steps.last() {
                if prev.axis == Axis::DescendantOrSelf
                    && matches!(prev.test, NodeTest::Node)
                    && prev.predicates.is_empty()
                {
                    let mut collapsed = s.clone();
                    collapsed.axis = Axis::Descendant;
                    steps.pop();
                    steps.push(collapsed);
                    continue;
                }
            }
        }
        if s.axis == Axis::SelfAxis {
            if let Some(prev) = steps.last_mut() {
                // `Some(new_test)` = mergeable; inner `Some` = the
                // self step narrows the previous step's test.
                let merged = match (&prev.test, &s.test) {
                    (NodeTest::Wildcard, NodeTest::Name(n)) => {
                        Some(Some(NodeTest::Name(n.clone())))
                    }
                    (NodeTest::Name(a), NodeTest::Name(b)) if a == b => Some(None),
                    (_, NodeTest::Wildcard) => Some(None),
                    _ => None,
                };
                if let Some(new_test) = merged {
                    if let Some(t) = new_test {
                        prev.test = t;
                    }
                    prev.predicates.extend(s.predicates.iter().cloned());
                    continue;
                }
            }
        }
        steps.push(s.clone());
    }
    steps
}

/// The plan's step-operator chain in path order (root's context chain,
/// innermost first), excluding predicate subtrees.
fn step_chain(plan: &vamana_core::QueryPlan) -> Vec<OpId> {
    let Operator::Root { child } = plan.op(plan.root()) else {
        panic!("top operator is not Root");
    };
    let mut chain = Vec::new();
    let mut cur = *child;
    while let Some(id) = cur {
        match plan.op(id) {
            Operator::Step { context, .. } => {
                chain.push(id);
                cur = *context;
            }
            other => panic!("unexpected operator in default step chain: {other:?}"),
        }
    }
    chain.reverse();
    chain
}

fn assert_actuals_match_oracle(engine: &Engine, dom: &DomEngine, name: &str, xpath: &str) {
    let analysis = engine.analyze_doc(DocId(0), xpath).expect(name);
    let expr = vamana_xpath::parse(xpath).expect(name);
    let Expr::Path(path) = &expr else {
        panic!("{name}: suite query is not a bare location path");
    };
    assert!(path.absolute, "{name}: suite queries are absolute");

    let chain = step_chain(&analysis.plan);
    let steps = desugared_steps(path);
    assert_eq!(
        chain.len(),
        steps.len(),
        "{name}: default plan has one Step operator per desugared step"
    );

    // Replay the path step by step, keeping duplicates between steps as
    // the pipeline does; each step's emitted-tuple total must match.
    let mut contexts: Vec<NodeId> = vec![Document::ROOT];
    for (step, op) in steps.iter().zip(&chain) {
        let mut next = Vec::new();
        for ctx in &contexts {
            next.extend(dom.eval_step(step, *ctx).expect(name));
        }
        let actual = analysis
            .actuals
            .op(*op)
            .unwrap_or_else(|| panic!("{name}: no actuals for op {op:?}"))
            .rows;
        assert_eq!(
            actual,
            next.len() as u64,
            "{name}: op {op:?} ({step:?}) emitted {actual} row(s), oracle says {}",
            next.len()
        );
        contexts = next;
    }

    // The root deduplicates under set semantics: its actual equals the
    // oracle's final answer.
    let oracle = dom.eval(xpath).expect(name);
    assert!(!oracle.is_empty(), "{name}: oracle returned nothing");
    assert_eq!(analysis.rows, oracle.len() as u64, "{name}: result rows");
    let root = analysis
        .actuals
        .op(analysis.plan.root())
        .expect("root actuals")
        .rows;
    assert_eq!(root, oracle.len() as u64, "{name}: root actuals");
}

/// Every XMark suite query's per-operator actuals match the DOM oracle,
/// in both scalar and batched execution.
#[test]
fn analyze_actuals_match_dom_oracle_per_operator() {
    let xml = vamana_xmark::generate_string(&config_for_megabytes(0.4));
    let dom = DomEngine::from_xml(&xml).unwrap();
    let mut engine = vamana_engine(&xml, false); // default plans mirror the path
    for batched in [false, true] {
        engine.options_mut().batched = batched;
        for (name, xpath) in QUERIES.iter().chain(SCAN_QUERIES) {
            assert_actuals_match_oracle(&engine, &dom, name, xpath);
        }
    }
}
