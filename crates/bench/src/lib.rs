//! Shared harness for the VAMANA experiments.
//!
//! The five evaluation queries (paper §VIII), engine construction for a
//! given document, and timing helpers are used both by the `figures`
//! binary (which regenerates the paper's charts as text/CSV) and by the
//! Criterion micro-benches.

use std::time::{Duration, Instant};
use vamana_baseline::dom::{DomEngine, DomProfile};
use vamana_baseline::join::StructuralJoinEngine;
use vamana_baseline::{BaselineError, XPathEngine};
use vamana_core::{Engine, MassStore};
use vamana_xmark::scale::config_for_megabytes;

/// The evaluation queries of §VIII, in paper order.
pub const QUERIES: &[(&str, &str)] = &[
    ("Q1", "//person/address"),
    ("Q2", "//watches/watch/ancestor::person"),
    ("Q3", "/descendant::name/parent::*/self::person/address"),
    ("Q4", "//itemref/following-sibling::price/parent::*"),
    ("Q5", "//province[text()='Vermont']/ancestor::person"),
];

/// Structural scan queries for the batched-execution benchmark.
///
/// Unlike Q1–Q5, whose named steps are answered mostly from the name
/// index (index-only `NameList` streams), these use wildcard and kind
/// tests so every step walks clustered MASS pages — the path the
/// batched pipeline amortizes page pins on. Modeled on XMark Q1/Q6:
/// child/descendant chains over the region and person subtrees.
pub const SCAN_QUERIES: &[(&str, &str)] = &[
    ("S1", "/site/regions//*"),
    ("S2", "/site/people//*"),
    ("S3", "//item/*"),
    ("S4", "/site/*/*"),
    ("S5", "//person//*"),
];

/// Generates an XMark document of roughly `megabytes` MB (streamed —
/// no DOM arena is materialized).
pub fn document(megabytes: f64) -> String {
    let mut buf = Vec::new();
    vamana_xmark::generate_to(&config_for_megabytes(megabytes), &mut buf).expect("vec write");
    String::from_utf8(buf).expect("generator emits UTF-8")
}

/// Builds a MASS-backed VAMANA engine over `xml`.
pub fn vamana_engine(xml: &str, optimize: bool) -> Engine {
    // `VAMANA_FORMAT=v2` benches the compressed tier.
    let mut store = MassStore::open_memory();
    store
        .set_format(vamana_mass::StoreFormat::from_env())
        .expect("empty store accepts any format");
    store.load_xml("auction.xml", xml).expect("load");
    let mut engine = Engine::new(store);
    engine.options_mut().optimize = optimize;
    engine
}

/// Adapter for the cross-engine interface.
pub struct VamanaBench {
    engine: Engine,
    label: &'static str,
}

impl VamanaBench {
    /// The optimized configuration ("VQP-OPT").
    pub fn optimized(xml: &str) -> Self {
        VamanaBench {
            engine: vamana_engine(xml, true),
            label: "VQP-OPT",
        }
    }

    /// The default-plan configuration ("VQP").
    pub fn default_plan(xml: &str) -> Self {
        VamanaBench {
            engine: vamana_engine(xml, false),
            label: "VQP",
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the wrapped engine (toggling execution options
    /// between benchmark configurations).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }
}

impl XPathEngine for VamanaBench {
    fn label(&self) -> &str {
        self.label
    }

    fn count(&self, xpath: &str) -> Result<usize, BaselineError> {
        self.engine
            .query(xpath)
            .map(|r| r.len())
            .map_err(|e| BaselineError::Unsupported(e.to_string()))
    }

    fn identities(&self, xpath: &str) -> Result<Vec<vamana_baseline::NodeIdentity>, BaselineError> {
        let r = self
            .engine
            .query(xpath)
            .map_err(|e| BaselineError::Unsupported(e.to_string()))?;
        let names = self
            .engine
            .names_of(&r)
            .map_err(|e| BaselineError::Unsupported(e.to_string()))?;
        let values = self
            .engine
            .string_values(&r)
            .map_err(|e| BaselineError::Unsupported(e.to_string()))?;
        Ok(names
            .into_iter()
            .zip(values)
            .map(|(name, value)| vamana_baseline::NodeIdentity { name, value })
            .collect())
    }
}

/// The full engine line-up for one document.
pub struct Lineup {
    /// VQP-OPT.
    pub vamana_opt: VamanaBench,
    /// VQP.
    pub vamana_default: VamanaBench,
    /// Jaxen-like DOM engine.
    pub dom_jaxen: DomEngine,
    /// Galax-like DOM engine (no sibling axes).
    pub dom_galax: DomEngine,
    /// eXist-like structural-join engine.
    pub join: StructuralJoinEngine,
}

impl Lineup {
    /// Builds every engine over the same document text.
    pub fn build(xml: &str) -> Self {
        Lineup {
            vamana_opt: VamanaBench::optimized(xml),
            vamana_default: VamanaBench::default_plan(xml),
            dom_jaxen: DomEngine::from_xml(xml).expect("dom"),
            dom_galax: DomEngine::from_xml_with_profile(xml, DomProfile::Galax).expect("dom"),
            join: StructuralJoinEngine::from_xml(xml).expect("join"),
        }
    }

    /// All engines in chart order.
    pub fn engines(&self) -> Vec<&dyn XPathEngine> {
        vec![
            &self.vamana_opt,
            &self.vamana_default,
            &self.dom_jaxen,
            &self.dom_galax,
            &self.join,
        ]
    }
}

/// Outcome of one measured query run.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Completed: elapsed time and result size.
    Ok {
        /// Wall-clock execution time.
        time: Duration,
        /// Result-set cardinality.
        count: usize,
    },
    /// The engine rejected the query (axis/feature gap).
    Unsupported(String),
}

impl Outcome {
    /// Render for the text tables ("12.3ms" / "n/s").
    pub fn cell(&self) -> String {
        match self {
            Outcome::Ok { time, .. } => format!("{:.1?}", time),
            Outcome::Unsupported(_) => "n/s".to_string(),
        }
    }

    /// Seconds as float (CSV output); `None` when unsupported.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            Outcome::Ok { time, .. } => Some(time.as_secs_f64()),
            Outcome::Unsupported(_) => None,
        }
    }
}

/// Runs `query` once on `engine`, timed.
pub fn run_once(engine: &dyn XPathEngine, query: &str) -> Outcome {
    let start = Instant::now();
    match engine.count(query) {
        Ok(count) => Outcome::Ok {
            time: start.elapsed(),
            count,
        },
        Err(e) => Outcome::Unsupported(e.to_string()),
    }
}

/// Runs `query` `warmup + runs` times, reporting the best measured run
/// (the paper reports CPU time of query execution, excluding load).
pub fn run_best(engine: &dyn XPathEngine, query: &str, warmup: usize, runs: usize) -> Outcome {
    for _ in 0..warmup {
        if let Outcome::Unsupported(e) = run_once(engine, query) {
            return Outcome::Unsupported(e);
        }
    }
    let mut best: Option<(Duration, usize)> = None;
    for _ in 0..runs.max(1) {
        match run_once(engine, query) {
            Outcome::Ok { time, count } => {
                if best.is_none_or(|(t, _)| time < t) {
                    best = Some((time, count));
                }
            }
            unsupported => return unsupported,
        }
    }
    let (time, count) = best.expect("at least one run");
    Outcome::Ok { time, count }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_agrees_on_supported_queries() {
        let xml = document(0.3);
        let lineup = Lineup::build(&xml);
        for (label, query) in QUERIES {
            let reference = lineup
                .dom_jaxen
                .identities(query)
                .expect("oracle supports all");
            assert!(
                !reference.is_empty(),
                "{label} found nothing — generator broken?"
            );
            for engine in [
                &lineup.vamana_opt as &dyn XPathEngine,
                &lineup.vamana_default,
            ] {
                let got = engine.identities(query).expect("vamana supports all");
                assert_eq!(got, reference, "{label} mismatch on {}", engine.label());
            }
        }
    }

    #[test]
    fn feature_gaps_mirror_the_paper() {
        let xml = document(0.2);
        let lineup = Lineup::build(&xml);
        // Q4 uses following-sibling: Galax profile and eXist-like engine
        // must refuse it; everyone else answers.
        let q4 = QUERIES[3].1;
        assert!(matches!(
            run_once(&lineup.dom_galax, q4),
            Outcome::Unsupported(_)
        ));
        assert!(matches!(
            run_once(&lineup.join, q4),
            Outcome::Unsupported(_)
        ));
        assert!(matches!(
            run_once(&lineup.vamana_opt, q4),
            Outcome::Ok { .. }
        ));
        assert!(matches!(
            run_once(&lineup.dom_jaxen, q4),
            Outcome::Ok { .. }
        ));
    }

    #[test]
    fn join_engine_agrees_on_join_friendly_queries() {
        let xml = document(0.2);
        let lineup = Lineup::build(&xml);
        for q in [
            "//person/address",
            "//watches/watch/ancestor::person",
            "//province[text()='Vermont']/ancestor::person",
        ] {
            let reference = lineup.dom_jaxen.identities(q).unwrap();
            assert_eq!(lineup.join.identities(q).unwrap(), reference, "{q}");
        }
    }
}
