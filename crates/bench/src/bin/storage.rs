//! Storage-tier benchmark: uncompressed (v1) vs front-coded/dictionary
//! (v2) pages over a streamed XMark document (`BENCH_10.json`).
//!
//! ```sh
//! cargo run --release -p vamana-bench --bin storage \
//!     [-- <mb> [--cold-pool PAGES] [--out PATH]]
//! ```
//!
//! The document is stream-generated to a file (`xmark::generate_to`, no
//! DOM arena), then loaded into one file-backed store per format. For
//! each format the report records the on-disk footprint (pages, bytes
//! per node, compression ratio) and two query phases over the full
//! QUERIES+SCAN_QUERIES suite:
//!
//! - **cold**: the store is reopened with a buffer pool far smaller
//!   than the data (`--cold-pool`, default 256 pages = 2 MB), so nearly
//!   every page pin is a miss — the bigger-than-RAM regime. The metric
//!   is pages read (pool misses) per query: compression converts
//!   directly into fewer reads because the same tuples live on fewer
//!   pages.
//! - **hot**: the store is reopened with a pool large enough to hold
//!   every page, warmed with one full pass, then measured — the
//!   decode-cost bound (v2 pays front-coding/dictionary decode on every
//!   miss, but hits are format-free).

use std::time::{Duration, Instant};

use vamana_bench::{QUERIES, SCAN_QUERIES};
use vamana_core::{DocId, Engine};
use vamana_mass::{MassStore, StoreFormat};
use vamana_xmark::scale::config_for_megabytes;

struct Args {
    megabytes: f64,
    cold_pool: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        megabytes: 100.0,
        cold_pool: 256,
        out: None,
    };
    let mut positional = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cold-pool" => {
                args.cold_pool = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cold-pool needs a page count");
            }
            "--out" => {
                args.out = Some(it.next().expect("--out needs a path"));
            }
            other => {
                assert_eq!(positional, 0, "unexpected argument {other}");
                args.megabytes = other.parse().expect("first positional arg is <mb>");
                positional += 1;
            }
        }
    }
    args
}

fn all_queries() -> Vec<(&'static str, &'static str)> {
    QUERIES.iter().chain(SCAN_QUERIES).copied().collect()
}

/// One format's footprint after load + checkpoint.
struct Footprint {
    pages: u32,
    tuples: u64,
    disk_bytes: u64,
    logical_bytes: u64,
    dict_entries: usize,
    compressed_pages: u32,
    uncompressed_pages: u32,
    load: Duration,
}

impl Footprint {
    fn bytes_per_node(&self) -> f64 {
        self.disk_bytes as f64 / self.tuples.max(1) as f64
    }

    fn compression_ratio(&self) -> f64 {
        self.logical_bytes as f64 / self.disk_bytes.max(1) as f64
    }
}

/// One query phase (cold or hot) over one store.
struct Phase {
    queries: u64,
    rows: u64,
    pages_read: u64,
    decodes_v1: u64,
    decodes_v2: u64,
    elapsed: Duration,
}

impl Phase {
    fn pages_per_query(&self) -> f64 {
        self.pages_read as f64 / self.queries.max(1) as f64
    }
}

fn load_store(path: &std::path::Path, format: StoreFormat, xml: &str) -> Footprint {
    let t0 = Instant::now();
    let mut store = MassStore::create_file(path, 4096).expect("create store file");
    store.set_format(format).expect("fresh store");
    store.load_xml("auction", xml).expect("load xmark");
    store.checkpoint().expect("checkpoint");
    let s = store.stats();
    Footprint {
        pages: s.pages,
        tuples: s.tuples,
        disk_bytes: s.disk_bytes(),
        logical_bytes: s.logical_bytes,
        dict_entries: s.dict_entries,
        compressed_pages: s.compressed_pages,
        uncompressed_pages: s.uncompressed_pages,
        load: t0.elapsed(),
    }
}

/// Runs the full suite once against `engine`, counting pool misses.
fn run_suite(engine: &Engine) -> Phase {
    let before = engine.store().stats().buffer;
    let t0 = Instant::now();
    let mut queries = 0u64;
    let mut rows = 0u64;
    for (name, xpath) in all_queries() {
        let r = engine.query_doc(DocId(0), xpath).expect(name);
        assert!(!r.is_empty(), "{name} ({xpath}) returned no rows");
        queries += 1;
        rows += r.len() as u64;
    }
    let elapsed = t0.elapsed();
    let after = engine.store().stats().buffer;
    Phase {
        queries,
        rows,
        pages_read: after.misses - before.misses,
        decodes_v1: after.decodes_v1 - before.decodes_v1,
        decodes_v2: after.decodes_v2 - before.decodes_v2,
        elapsed,
    }
}

/// Reopens `path` with a `pool`-page buffer pool and runs the suite;
/// `warm` runs one unmeasured full pass first.
fn measure_phase(path: &std::path::Path, pool: usize, warm: bool) -> Phase {
    let store = MassStore::open_file(path, pool).expect("reopen store");
    let mut engine = Engine::new(store);
    {
        let opts = engine.options_mut();
        opts.optimize = true;
        opts.batched = true;
    }
    if warm {
        run_suite(&engine);
    }
    run_suite(&engine)
}

fn main() {
    let args = parse_args();
    let dir = std::env::temp_dir().join(format!("vamana-bench-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    // Stream the document to disk: O(1) generator memory at any scale.
    let xml_path = dir.join("auction.xml");
    eprintln!("streaming ~{} MB of XMark data to disk…", args.megabytes);
    let t0 = Instant::now();
    let file = std::fs::File::create(&xml_path).expect("create xml file");
    let generated = vamana_xmark::generate_to(
        &config_for_megabytes(args.megabytes),
        std::io::BufWriter::new(file),
    )
    .expect("generate");
    eprintln!(
        "generated {:.1} MB in {:.2?}",
        generated as f64 / (1024.0 * 1024.0),
        t0.elapsed()
    );
    let xml = std::fs::read_to_string(&xml_path).expect("read xml back");

    let formats = [("v1", StoreFormat::V1), ("v2", StoreFormat::V2)];
    let mut reports: Vec<String> = Vec::new();
    let mut footprints: Vec<Footprint> = Vec::new();
    let mut colds: Vec<Phase> = Vec::new();

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>10} {:>14} {:>12} {:>12}",
        "format", "pages", "disk_bytes", "bytes/node", "ratio", "cold_pages/q", "cold_ms", "hot_ms"
    );
    for (label, format) in formats {
        let store_path = dir.join(format!("store-{label}.mass"));
        let fp = load_store(&store_path, format, &xml);
        // The pool must dwarf neither phase by accident: cold ≪ pages,
        // hot ≥ pages (plus catalog headroom).
        assert!(
            (args.cold_pool as u32) < fp.pages / 4,
            "cold pool {} is not ≪ data ({} pages) — lower --cold-pool or raise <mb>",
            args.cold_pool,
            fp.pages
        );
        let cold = measure_phase(&store_path, args.cold_pool, false);
        let hot = measure_phase(&store_path, fp.pages as usize + 64, true);
        println!(
            "{:>6} {:>8} {:>12} {:>12.1} {:>10.2} {:>14.1} {:>12.1} {:>12.1}",
            label,
            fp.pages,
            fp.disk_bytes,
            fp.bytes_per_node(),
            fp.compression_ratio(),
            cold.pages_per_query(),
            cold.elapsed.as_secs_f64() * 1e3,
            hot.elapsed.as_secs_f64() * 1e3,
        );
        reports.push(format!(
            "    \"{label}\": {{\n      \"pages\": {}, \"tuples\": {}, \"disk_bytes\": {}, \"logical_bytes\": {}, \"bytes_per_node\": {:.2}, \"compression_ratio\": {:.2},\n      \"compressed_pages\": {}, \"uncompressed_pages\": {}, \"dict_entries\": {}, \"load_ms\": {:.1},\n      \"cold\": {{\"queries\": {}, \"rows\": {}, \"pages_read\": {}, \"pages_read_per_query\": {:.1}, \"decodes_v1\": {}, \"decodes_v2\": {}, \"elapsed_ms\": {:.1}}},\n      \"hot\": {{\"queries\": {}, \"rows\": {}, \"pages_read\": {}, \"elapsed_ms\": {:.1}}}\n    }}",
            fp.pages,
            fp.tuples,
            fp.disk_bytes,
            fp.logical_bytes,
            fp.bytes_per_node(),
            fp.compression_ratio(),
            fp.compressed_pages,
            fp.uncompressed_pages,
            fp.dict_entries,
            fp.load.as_secs_f64() * 1e3,
            cold.queries,
            cold.rows,
            cold.pages_read,
            cold.pages_per_query(),
            cold.decodes_v1,
            cold.decodes_v2,
            cold.elapsed.as_secs_f64() * 1e3,
            hot.queries,
            hot.rows,
            hot.pages_read,
            hot.elapsed.as_secs_f64() * 1e3,
        ));
        footprints.push(fp);
        colds.push(cold);
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Both stores hold identical tuples, so these ratios are exactly
    // "how much smaller" and "how many fewer cold reads" v2 is.
    let bytes_ratio = footprints[0].bytes_per_node() / footprints[1].bytes_per_node();
    let cold_ratio = colds[0].pages_per_query() / colds[1].pages_per_query().max(1.0);
    assert_eq!(
        footprints[0].tuples, footprints[1].tuples,
        "formats loaded different tuple counts"
    );

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"storage_compressed_pages\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"doc_megabytes\": {},\n", args.megabytes));
    out.push_str(&format!("  \"generated_bytes\": {generated},\n"));
    out.push_str(&format!("  \"cold_pool_pages\": {},\n", args.cold_pool));
    out.push_str(&format!(
        "  \"queries\": {},\n",
        QUERIES.len() + SCAN_QUERIES.len()
    ));
    out.push_str("  \"results\": {\n");
    out.push_str(&reports.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str(&format!(
        "  \"bytes_per_node_ratio_v1_over_v2\": {bytes_ratio:.2},\n"
    ));
    out.push_str(&format!(
        "  \"cold_pages_read_ratio_v1_over_v2\": {cold_ratio:.2}\n"
    ));
    out.push_str("}\n");
    let path = args.out.as_deref().unwrap_or("BENCH_10.json");
    std::fs::write(path, &out).expect("write json");
    eprintln!("wrote {path}");
}
