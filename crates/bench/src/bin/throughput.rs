//! Concurrent-throughput benchmark for the serving layer: queries/sec
//! against one shared engine as the worker count grows.
//!
//! ```sh
//! cargo run --release -p vamana-bench --bin throughput [-- <mb> [threads...]]
//! ```
//!
//! Each configuration runs the evaluation query mix (Q1–Q5) from N
//! threads against a single `Arc<SharedEngine>` over an XMark document
//! for a fixed wall-clock window and reports aggregate queries/sec.
//! With the sharded buffer pool and the `RwLock` read path, throughput
//! should scale past one worker on multi-core hardware (on a single
//! core the figures only show the locking overhead staying flat).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vamana_bench::QUERIES;
use vamana_core::{Engine, SharedEngine};
use vamana_mass::MassStore;

/// Wall-clock window measured per thread-count configuration.
const WINDOW: Duration = Duration::from_secs(2);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let megabytes: f64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(0.5);
    let thread_counts: Vec<usize> = if args.len() > 1 {
        args[1..].iter().filter_map(|a| a.parse().ok()).collect()
    } else {
        vec![1, 2, 4, 8]
    };

    eprintln!("generating ~{megabytes} MB of XMark data…");
    let xml = vamana_bench::document(megabytes);
    let mut store = MassStore::open_memory();
    store.load_xml("auction", &xml).expect("load xmark");
    let engine = Arc::new(SharedEngine::new(Engine::new(store)));

    // Warm up: compile and run each query once so every configuration
    // starts from the same buffer-pool state.
    for (name, xpath) in QUERIES {
        let rows = engine.read().query(xpath).expect(name).len();
        eprintln!("  {name}: {rows} row(s)");
    }

    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "threads", "queries", "queries/sec", "speedup"
    );
    let mut baseline = None;
    for &threads in &thread_counts {
        let (total, elapsed) = run_window(&engine, threads.max(1), WINDOW);
        let qps = total as f64 / elapsed.as_secs_f64();
        let speedup = qps / *baseline.get_or_insert(qps);
        println!("{threads:>8} {total:>12} {qps:>14.1} {speedup:>11.2}x");
    }
}

/// Runs the query mix from `threads` threads for `window`, returning
/// (completed queries, actual elapsed).
fn run_window(engine: &Arc<SharedEngine>, threads: usize, window: Duration) -> (u64, Duration) {
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = Arc::clone(engine);
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            scope.spawn(move || {
                let mut i = t; // offset so threads interleave the mix
                while !stop.load(Ordering::Relaxed) {
                    let (_, xpath) = QUERIES[i % QUERIES.len()];
                    engine.read().query(xpath).expect("query");
                    completed.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    (completed.load(Ordering::Relaxed), start.elapsed())
}
