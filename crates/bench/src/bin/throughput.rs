//! Throughput benchmark: scalar vs batched vs morsel-parallel execution,
//! queries/sec per worker count, against one shared engine.
//!
//! ```sh
//! cargo run --release -p vamana-bench --bin throughput \
//!     [-- <mb> [workers...] [--window-ms N] [--out PATH] [--analyze] [--mixed PCT]]
//! ```
//!
//! `--analyze` skips the measurement windows: it loads the document,
//! runs `EXPLAIN ANALYZE` on one representative query per suite, dumps
//! the per-operator estimated-vs-actual trees to stdout, and exits.
//!
//! `--views on|off|both` runs the semantic-cache benchmark instead:
//! driver threads replay a Zipfian repeated-traffic mix over the scan
//! suite, with the view cache enabled and/or disabled, and the report
//! (`BENCH_7.json`) compares throughput across the two configurations.
//!
//! `--fused on|off|both` runs the fusion benchmark instead: driver
//! threads replay the structural scan suite per query with whole-query
//! fusion forced and/or disabled, and the report (`BENCH_8.json`)
//! compares per-query throughput across the two configurations.
//!
//! `--router SxR` runs the sharded front-tier benchmark instead: it
//! stands up `S` shards × `R` streaming replicas behind a
//! `vamana-router` front tier, compares aggregate QPS against one
//! single-node server holding every document (both scatter-gather and
//! doc-targeted traffic), then measures event-core vs. threaded-core
//! connection scaling — hundreds of idle connections plus ≥64 active
//! clients, with process thread counts recorded (`BENCH_9.json`).
//!
//! `--mixed PCT` runs the read/write benchmark instead: reader threads
//! measure per-query latency in two windows — alone, then sharing the
//! engine with one writer duty-cycled to `PCT`% of operations — and the
//! report (`BENCH_5.json`) compares reader p50/p99 across the two plus
//! the writer's time at the epoch gate.
//!
//! Two query suites run in three execution modes over the same build and
//! the same loaded document:
//!
//! - `scan`: structural XMark scans ([`SCAN_QUERIES`]) — wildcard and
//!   kind tests whose steps walk clustered MASS pages; these are the
//!   shapes the batched pipeline amortizes page pins on and the parallel
//!   scan splits into morsels.
//! - `eval`: the paper's evaluation mix (Q1–Q5), mostly index-only; it
//!   bounds how much batching/parallelism can help non-scan work (named
//!   steps never fan out).
//!
//! Modes differ in where the configured worker count `w` goes:
//!
//! - `scalar` / `batched`: `w` *driver* threads (inter-query
//!   concurrency), each draining serial streams.
//! - `parallel`: **one** driver thread over a `w`-wide scan pool
//!   (intra-query parallelism) — so `parallel` at `w` vs `batched` at 1
//!   isolates what morsel-parallel scans buy a single query stream.
//!
//! Plans are compiled and optimized once per query before measurement
//! (the optimizer records the parallel fan-out choice on the plan, as the
//! serving layer's plan cache would); each run drains the result stream,
//! so the measured work is executor cost, not parsing or optimization.
//! Results go to stdout as a table and to `BENCH_3.json` (override with
//! `--out`) as machine-readable JSON.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vamana_bench::{QUERIES, SCAN_QUERIES};
use vamana_core::exec::BATCH_SIZE;
use vamana_core::plan::QueryPlan;
use vamana_core::{DocId, Engine, SharedEngine};
use vamana_mass::MassStore;

struct Args {
    megabytes: f64,
    workers: Vec<usize>,
    window: Duration,
    out: Option<String>,
    analyze: bool,
    /// `Some(write_pct)`: run the mixed read/write benchmark instead of
    /// the execution-mode comparison.
    mixed: Option<u32>,
    /// `Some(n)`: run the replicated-read benchmark instead — aggregate
    /// read QPS over a primary plus 0..=n replicas, and a lag-convergence
    /// histogram (`BENCH_6.json`).
    replicas: Option<usize>,
    /// `Some("on"|"off"|"both")`: run the semantic-cache benchmark
    /// instead — Zipfian repeated traffic over the scan suite with the
    /// view cache enabled and/or disabled (`BENCH_7.json`).
    views: Option<String>,
    /// `Some("on"|"off"|"both")`: run the fusion benchmark instead —
    /// per-query scan-suite throughput with whole-query fusion forced
    /// and/or disabled (`BENCH_8.json`).
    fused: Option<String>,
    /// `Some((shards, replicas_per_shard))`: run the sharded front-tier
    /// benchmark instead — aggregate QPS through a router over
    /// `shards`×`replicas` backends vs. one single-node server holding
    /// every document, plus the event-core vs. threaded-core connection
    /// scaling comparison (`BENCH_9.json`).
    router: Option<(usize, usize)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        megabytes: 0.5,
        workers: Vec::new(),
        window: Duration::from_secs(2),
        out: None,
        analyze: false,
        mixed: None,
        replicas: None,
        views: None,
        fused: None,
        router: None,
    };
    let mut positional = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--window-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--window-ms needs a millisecond count");
                args.window = Duration::from_millis(ms);
            }
            "--out" => {
                args.out = Some(it.next().expect("--out needs a path"));
            }
            "--analyze" => {
                args.analyze = true;
            }
            "--mixed" => {
                let pct: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--mixed needs a write percentage (e.g. 5)");
                assert!(pct > 0 && pct < 100, "--mixed percentage must be in 1..=99");
                args.mixed = Some(pct);
            }
            "--replicas" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--replicas needs a follower count (e.g. 2)");
                args.replicas = Some(n);
            }
            "--views" => {
                let which = it.next().expect("--views takes on|off|both");
                assert!(
                    matches!(which.as_str(), "on" | "off" | "both"),
                    "--views takes on|off|both, got {which}"
                );
                args.views = Some(which);
            }
            "--fused" => {
                let which = it.next().expect("--fused takes on|off|both");
                assert!(
                    matches!(which.as_str(), "on" | "off" | "both"),
                    "--fused takes on|off|both, got {which}"
                );
                args.fused = Some(which);
            }
            "--router" => {
                let spec = it
                    .next()
                    .expect("--router takes <shards>x<replicas>, e.g. 2x1");
                let (s, r) = spec
                    .split_once('x')
                    .and_then(|(s, r)| Some((s.parse().ok()?, r.parse().ok()?)))
                    .unwrap_or_else(|| panic!("--router takes <shards>x<replicas>, got {spec}"));
                assert!(s >= 1, "--router needs at least one shard");
                args.router = Some((s, r));
            }
            other => {
                if positional == 0 {
                    args.megabytes = other.parse().expect("first positional arg is <mb>");
                } else {
                    args.workers
                        .push(other.parse().expect("worker counts are integers"));
                }
                positional += 1;
            }
        }
    }
    if args.workers.is_empty() {
        args.workers = vec![1, 2, 4, 8];
    }
    args
}

/// One suite in one mode at one worker count.
struct Sample {
    suite: &'static str,
    mode: &'static str,
    /// The configured concurrency knob: driver threads for
    /// `scalar`/`batched`, scan-pool width for `parallel`.
    workers: usize,
    /// Driver threads actually issuing queries.
    drivers: usize,
    queries: u64,
    rows: u64,
    elapsed: Duration,
}

impl Sample {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }
}

/// `(driver threads, batched, parallel)` per mode at worker count `w`.
fn mode_setup(mode: &str, w: usize) -> (usize, bool, bool) {
    match mode {
        "scalar" => (w, false, false),
        "batched" => (w, true, false),
        "parallel" => (1, true, true),
        other => unreachable!("unknown mode {other}"),
    }
}

fn main() {
    let args = parse_args();
    if let Some((shards, replicas)) = args.router {
        run_router(&args, shards, replicas);
        return;
    }
    if let Some(n) = args.replicas {
        run_replicas(&args, n);
        return;
    }
    if let Some(which) = args.views.clone() {
        run_views(&args, &which);
        return;
    }
    if let Some(which) = args.fused.clone() {
        run_fused(&args, &which);
        return;
    }
    let max_workers = args.workers.iter().copied().max().unwrap_or(1);

    eprintln!("generating ~{} MB of XMark data…", args.megabytes);
    let xml = vamana_bench::document(args.megabytes);
    let mut store = MassStore::open_memory();
    store.load_xml("auction", &xml).expect("load xmark");
    let mut base = Engine::new(store);
    // Compile-time worker view: the optimizer's degree is capped by the
    // pool width at execution, so record the widest configuration.
    base.options_mut().parallel_workers = max_workers;
    let engine = Arc::new(SharedEngine::new(base));

    let suites: [(&str, &[(&str, &str)]); 2] = [("scan", SCAN_QUERIES), ("eval", QUERIES)];

    if let Some(write_pct) = args.mixed {
        run_mixed(&args, &engine, max_workers, write_pct);
        return;
    }

    if args.analyze {
        // EXPLAIN ANALYZE one representative query per suite and exit —
        // a quick look at how the cost model tracks reality at this
        // document scale, without running the measurement windows.
        let guard = engine.read();
        for (suite, queries) in suites {
            let (name, xpath) = queries[0];
            let analysis = guard.analyze_doc(DocId(0), xpath).expect(name);
            println!("=== {suite} / {name}: {xpath}");
            print!("{}", analysis.render());
            println!("optimizer trace:");
            print!("{}", analysis.opt_trace.render());
            println!();
        }
        return;
    }

    // Compile every plan once and warm the buffer pool; a query that
    // matches nothing means the generator or planner is broken, so fail
    // loudly (the CI smoke job relies on this).
    let mut plans: Vec<(&str, Vec<QueryPlan>)> = Vec::new();
    for (suite, queries) in suites {
        let mut compiled = Vec::new();
        for (name, xpath) in queries {
            let guard = engine.read();
            let plan = guard.compile(xpath).expect(name);
            let plan = guard.optimize_plan(plan, DocId(0)).expect(name).plan;
            let rows = guard.execute_plan(&plan, DocId(0)).expect(name).len();
            assert!(rows > 0, "{name} ({xpath}) returned no rows");
            let par = match plan.parallel() {
                Some(c) => format!("parallel degree {} (~{} rows)", c.degree, c.estimated),
                None => "serial".to_string(),
            };
            eprintln!("  {name}: {rows} row(s), {par}");
            compiled.push(plan);
        }
        plans.push((suite, compiled));
    }

    println!(
        "{:>6} {:>9} {:>8} {:>8} {:>12} {:>14} {:>12}",
        "suite", "mode", "workers", "drivers", "queries", "queries/sec", "speedup"
    );
    let mut samples: Vec<Sample> = Vec::new();
    for (suite, compiled) in &plans {
        for &workers in &args.workers {
            for mode in ["scalar", "batched", "parallel"] {
                let (drivers, batched, parallel) = mode_setup(mode, workers);
                {
                    let mut guard = engine.write();
                    let opts = guard.options_mut();
                    opts.batched = batched;
                    opts.parallel = parallel;
                    opts.parallel_workers = if parallel { workers } else { max_workers };
                }
                let sample = run_window(
                    &engine,
                    compiled,
                    suite,
                    mode,
                    workers,
                    drivers,
                    batched,
                    args.window,
                );
                let speedup = match mode {
                    // batched vs scalar at the same driver count.
                    "batched" => samples
                        .iter()
                        .rfind(|s| s.suite == *suite && s.mode == "scalar" && s.workers == workers)
                        .map(|s| format!("{:.2}x", sample.qps() / s.qps()))
                        .unwrap_or_default(),
                    // parallel (one driver, w-wide pool) vs one serial-
                    // batched driver.
                    "parallel" => samples
                        .iter()
                        .find(|s| s.suite == *suite && s.mode == "batched" && s.drivers == 1)
                        .map(|s| format!("{:.2}x", sample.qps() / s.qps()))
                        .unwrap_or_default(),
                    _ => "-".to_string(),
                };
                println!(
                    "{:>6} {:>9} {:>8} {:>8} {:>12} {:>14.1} {:>12}",
                    suite,
                    mode,
                    workers,
                    drivers,
                    sample.queries,
                    sample.qps(),
                    speedup
                );
                samples.push(sample);
            }
        }
    }
    {
        let mut guard = engine.write();
        let opts = guard.options_mut();
        opts.batched = true;
        opts.parallel = true;
    }

    let json = render_json(&args, &suites, &samples);
    let out = args.out.as_deref().unwrap_or("BENCH_3.json");
    std::fs::write(out, &json).expect("write json");
    eprintln!("wrote {out}");
}

/// Reader latencies and counts from one mixed-mode measurement window.
struct MixedPhase {
    reads: u64,
    writes: u64,
    /// Sorted per-query reader latencies, microseconds.
    latencies_us: Vec<u64>,
    elapsed: Duration,
    writer_wait_us: u64,
}

impl MixedPhase {
    fn quantile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((q * self.latencies_us.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_us.len());
        self.latencies_us[rank - 1]
    }

    fn qps(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }
}

/// The 95/5 (configurable) read/write benchmark: reader tail latency
/// with and without a concurrent writer against the same engine.
///
/// Phase 1 runs `readers` threads over the scan suite and records
/// per-query latency — the no-writer baseline. Phase 2 repeats the
/// window with one writer thread issuing `apply_update` insert/delete
/// pairs, duty-cycled so writes stay at `write_pct`% of completed
/// operations. The report compares reader p50/p99 across phases and
/// records how long the writer spent at the epoch gate.
fn run_mixed(args: &Args, engine: &Arc<SharedEngine>, readers: usize, write_pct: u32) {
    // Mixed mode measures the serving configuration: batched execution,
    // serial per query (inter-query concurrency comes from the readers).
    {
        let mut guard = engine.write();
        let opts = guard.options_mut();
        opts.batched = true;
        opts.parallel = false;
    }
    let plans: Vec<QueryPlan> = SCAN_QUERIES
        .iter()
        .map(|(name, xpath)| {
            let guard = engine.read();
            let plan = guard.compile(xpath).expect(name);
            guard.optimize_plan(plan, DocId(0)).expect(name).plan
        })
        .collect();

    eprintln!("mixed mode: {readers} reader(s), write duty {write_pct}%");
    let baseline = run_mixed_window(engine, &plans, readers, None, args.window);
    let mixed = run_mixed_window(engine, &plans, readers, Some(write_pct), args.window);

    println!(
        "{:>10} {:>9} {:>9} {:>11} {:>11} {:>13} {:>16}",
        "phase", "reads", "writes", "p50_us", "p99_us", "reads/sec", "writer_wait_us"
    );
    for (phase, s) in [("baseline", &baseline), ("mixed", &mixed)] {
        println!(
            "{:>10} {:>9} {:>9} {:>11} {:>11} {:>13.1} {:>16}",
            phase,
            s.reads,
            s.writes,
            s.quantile_us(0.50),
            s.quantile_us(0.99),
            s.qps(),
            s.writer_wait_us
        );
    }

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput_mixed_read_write\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"doc_megabytes\": {},\n", args.megabytes));
    out.push_str(&format!("  \"window_ms\": {},\n", args.window.as_millis()));
    out.push_str(&format!("  \"readers\": {readers},\n"));
    out.push_str(&format!("  \"write_pct\": {write_pct},\n"));
    out.push_str("  \"results\": {\n");
    for (i, (phase, s)) in [("baseline", &baseline), ("mixed", &mixed)]
        .iter()
        .enumerate()
    {
        out.push_str(&format!(
            "    \"{phase}\": {{\"reads\": {}, \"writes\": {}, \"reader_p50_us\": {}, \"reader_p99_us\": {}, \"reads_per_sec\": {:.1}, \"writer_wait_us\": {}}}{}\n",
            s.reads,
            s.writes,
            s.quantile_us(0.50),
            s.quantile_us(0.99),
            s.qps(),
            s.writer_wait_us,
            if i == 0 { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    let ratio = mixed.quantile_us(0.99).max(1) as f64 / baseline.quantile_us(0.99).max(1) as f64;
    out.push_str(&format!(
        "  \"p99_ratio_mixed_over_baseline\": {ratio:.2}\n"
    ));
    out.push_str("}\n");
    let path = args.out.as_deref().unwrap_or("BENCH_5.json");
    std::fs::write(path, &out).expect("write json");
    eprintln!("wrote {path}");
}

/// One mixed-mode window: `readers` query threads, plus one writer
/// thread when `write_pct` is set.
fn run_mixed_window(
    engine: &Arc<SharedEngine>,
    plans: &[QueryPlan],
    readers: usize,
    write_pct: Option<u32>,
    window: Duration,
) -> MixedPhase {
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let wait_before = engine.read().writer_wait_total();
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..readers.max(1) {
            let engine = Arc::clone(engine);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            handles.push(scope.spawn(move || {
                let mut buf = Vec::with_capacity(BATCH_SIZE);
                let mut lats = Vec::new();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let plan = &plans[i % plans.len()];
                    let t0 = Instant::now();
                    let guard = engine.read();
                    let mut stream = guard.stream_plan(plan.clone(), DocId(0)).expect("stream");
                    loop {
                        buf.clear();
                        if stream.next_batch(&mut buf, BATCH_SIZE).expect("batch") == 0 {
                            break;
                        }
                    }
                    drop(guard);
                    lats.push(t0.elapsed().as_micros() as u64);
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                lats
            }));
        }
        if let Some(pct) = write_pct {
            let engine = Arc::clone(engine);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            let writes = Arc::clone(&writes);
            scope.spawn(move || {
                use vamana_core::UpdateOp;
                let insert = UpdateOp::Insert {
                    target: "/site".to_string(),
                    fragment: "<benchrow>w</benchrow>".to_string(),
                };
                let delete = UpdateOp::Delete {
                    target: "//benchrow".to_string(),
                };
                let mut inserted = false;
                while !stop.load(Ordering::Relaxed) {
                    // Duty cycle: hold writes at `pct`% of completed ops.
                    let r = reads.load(Ordering::Relaxed);
                    let w = writes.load(Ordering::Relaxed);
                    let target = (r + w) * pct as u64 / 100;
                    if w >= target {
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    let op = if inserted { &delete } else { &insert };
                    engine.write().apply_update(DocId(0), op).expect("update");
                    inserted = !inserted;
                    writes.fetch_add(1, Ordering::Relaxed);
                }
                // Leave the document as found.
                if inserted {
                    engine
                        .write()
                        .apply_update(DocId(0), &delete)
                        .expect("cleanup");
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            latencies.extend(h.join().expect("reader"));
        }
    });
    latencies.sort_unstable();
    let wait_after = engine.read().writer_wait_total();
    MixedPhase {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        latencies_us: latencies,
        elapsed: start.elapsed(),
        writer_wait_us: wait_after.saturating_sub(wait_before).as_micros() as u64,
    }
}

// ---------------------------------------------------------------------
// Semantic-cache throughput: `--views on|off|both`.
// ---------------------------------------------------------------------

/// Zipf skew of the repeated-traffic mix: with s = 1.1 over the five
/// scan queries, the head query draws ~40% of the traffic — the shape a
/// semantic cache exists for.
const ZIPF_S: f64 = 1.1;

/// One measurement window of the views benchmark.
struct ViewsSample {
    enabled: bool,
    queries: u64,
    rows: u64,
    elapsed: Duration,
    view_hits: u64,
    view_misses: u64,
    view_views: u64,
}

impl ViewsSample {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }
}

/// xorshift64*: deterministic per-thread traffic, no external RNG crate.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// `--views on|off|both`: repeated-traffic throughput with the semantic
/// cache enabled and/or disabled. Driver threads replay a Zipfian mix
/// over the scan suite against one shared engine; with views on, the
/// warmup passes admit every hot query into the cache, so the once-
/// compiled plans (the serving layer's plan cache) execute `ViewScan`
/// over materialized results instead of walking clustered pages.
/// Results go to `BENCH_7.json` (override with `--out`).
fn run_views(args: &Args, which: &str) {
    let drivers = args.workers.first().copied().unwrap_or(4);
    eprintln!("generating ~{} MB of XMark data…", args.megabytes);
    let xml = vamana_bench::document(args.megabytes);

    // Cumulative Zipf distribution over the suite, head query first.
    let weights: Vec<f64> = (0..SCAN_QUERIES.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(ZIPF_S))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let cdf: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect();

    let phases: &[bool] = match which {
        "on" => &[true],
        "off" => &[false],
        _ => &[false, true],
    };
    eprintln!("views benchmark: {drivers} driver(s), zipf s={ZIPF_S}");

    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>10} {:>12}",
        "views", "drivers", "queries", "queries/sec", "hits", "speedup"
    );
    let mut samples: Vec<ViewsSample> = Vec::new();
    for &enabled in phases {
        let sample = run_views_phase(&xml, enabled, drivers, &cdf, args.window);
        let speedup = samples
            .iter()
            .find(|s| !s.enabled)
            .filter(|_| enabled)
            .map(|off| format!("{:.2}x", sample.qps() / off.qps()))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>6} {:>8} {:>12} {:>14.1} {:>10} {:>12}",
            if enabled { "on" } else { "off" },
            drivers,
            sample.queries,
            sample.qps(),
            sample.view_hits,
            speedup
        );
        samples.push(sample);
    }

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput_semantic_views\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"doc_megabytes\": {},\n", args.megabytes));
    out.push_str(&format!("  \"window_ms\": {},\n", args.window.as_millis()));
    out.push_str(&format!("  \"drivers\": {drivers},\n"));
    out.push_str(&format!("  \"zipf_s\": {ZIPF_S},\n"));
    out.push_str("  \"results\": {\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    \"views_{}\": {{\"queries\": {}, \"rows\": {}, \"qps\": {:.1}, \"view_hits\": {}, \"view_misses\": {}, \"view_views\": {}}}{}\n",
            if s.enabled { "on" } else { "off" },
            s.queries,
            s.rows,
            s.qps(),
            s.view_hits,
            s.view_misses,
            s.view_views,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  }");
    if let (Some(on), Some(off)) = (
        samples.iter().find(|s| s.enabled),
        samples.iter().find(|s| !s.enabled),
    ) {
        out.push_str(&format!(
            ",\n  \"speedup_views_on_over_off\": {:.2}\n",
            on.qps() / off.qps()
        ));
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    let path = args.out.as_deref().unwrap_or("BENCH_7.json");
    std::fs::write(path, &out).expect("write json");
    eprintln!("wrote {path}");
}

/// One phase of the views benchmark: fresh engine, two warmup passes
/// (admission threshold for views-on, buffer-pool warmth for both),
/// plans compiled once, then `drivers` threads replaying Zipfian traffic.
fn run_views_phase(
    xml: &str,
    enabled: bool,
    drivers: usize,
    cdf: &[f64],
    window: Duration,
) -> ViewsSample {
    let mut store = MassStore::open_memory();
    store.load_xml("auction", xml).expect("load xmark");
    let mut base = Engine::new(store);
    {
        let opts = base.options_mut();
        opts.batched = true;
        opts.views = enabled;
    }
    let engine = Arc::new(SharedEngine::new(base));

    // Two full passes cross the default admission threshold, so every
    // scan query has a materialized view before plans are compiled.
    for _ in 0..2 {
        for (name, xpath) in SCAN_QUERIES {
            let guard = engine.read();
            let rows = guard.query_doc(DocId(0), xpath).expect(name).len();
            assert!(rows > 0, "{name} ({xpath}) returned no rows");
        }
    }
    // Compile once per query, as the serving layer's plan cache would;
    // with views on the optimizer folds each query onto its view.
    let plans: Vec<QueryPlan> = SCAN_QUERIES
        .iter()
        .map(|(name, xpath)| {
            let guard = engine.read();
            let plan = guard.compile(xpath).expect(name);
            guard.optimize_plan(plan, DocId(0)).expect(name).plan
        })
        .collect();
    let before = engine.read().views().stats();

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let rows = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..drivers.max(1) {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let rows = Arc::clone(&rows);
            let plans = &plans;
            scope.spawn(move || {
                let mut buf = Vec::with_capacity(BATCH_SIZE);
                let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((t as u64 + 1) << 17);
                while !stop.load(Ordering::Relaxed) {
                    let u = (xorshift(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                    let idx = cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1);
                    let guard = engine.read();
                    let mut stream = guard
                        .stream_plan(plans[idx].clone(), DocId(0))
                        .expect("stream");
                    let mut n = 0u64;
                    loop {
                        buf.clear();
                        let k = stream.next_batch(&mut buf, BATCH_SIZE).expect("batch");
                        if k == 0 {
                            break;
                        }
                        n += k as u64;
                    }
                    drop(guard);
                    assert!(n > 0, "query produced no rows mid-bench");
                    queries.fetch_add(1, Ordering::Relaxed);
                    rows.fetch_add(n, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let after = engine.read().views().stats();
    ViewsSample {
        enabled,
        queries: queries.load(Ordering::Relaxed),
        rows: rows.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        view_hits: after.hits - before.hits,
        view_misses: after.misses - before.misses,
        view_views: after.views,
    }
}

// ---------------------------------------------------------------------
// Whole-query fusion: `--fused on|off|both`.
// ---------------------------------------------------------------------

/// One per-query measurement window of the fusion benchmark.
struct FusedSample {
    name: &'static str,
    xpath: &'static str,
    enabled: bool,
    queries: u64,
    rows: u64,
    elapsed: Duration,
    /// Fused chains executed during the window — zero when the query's
    /// chain has no scan-bound suffix (index-resolvable heads only).
    fused_chains: u64,
}

impl FusedSample {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }
}

/// `--fused on|off|both`: per-query throughput over the structural scan
/// suite with whole-query fusion forced (`on`) and/or disabled (`off`).
/// Fusion is *forced* in the `on` phase so the benchmark measures the
/// fused executor itself, not the cost gate's willingness to engage it;
/// queries whose chain is entirely index-resolvable keep their unfused
/// plans and report zero fused chains. Results go to `BENCH_8.json`
/// (override with `--out`).
fn run_fused(args: &Args, which: &str) {
    let drivers = args.workers.first().copied().unwrap_or(4);
    eprintln!("generating ~{} MB of XMark data…", args.megabytes);
    let xml = vamana_bench::document(args.megabytes);
    let phases: &[bool] = match which {
        "on" => &[true],
        "off" => &[false],
        _ => &[false, true],
    };
    eprintln!("fusion benchmark: {drivers} driver(s), batched execution");

    println!(
        "{:>6} {:>6} {:>8} {:>12} {:>14} {:>8} {:>12}",
        "fused", "query", "drivers", "queries", "queries/sec", "chains", "speedup"
    );
    let mut samples: Vec<FusedSample> = Vec::new();
    for &enabled in phases {
        let mut store = MassStore::open_memory();
        store.load_xml("auction", &xml).expect("load xmark");
        let mut base = Engine::new(store);
        {
            let opts = base.options_mut();
            opts.batched = true;
            opts.fuse = enabled;
            opts.fuse_force = enabled;
        }
        let engine = Arc::new(SharedEngine::new(base));
        for (name, xpath) in SCAN_QUERIES {
            // Compile once (fusion is an optimize-time rewrite, as the
            // serving layer's plan cache would see it) and warm the
            // buffer pool.
            let plan = {
                let guard = engine.read();
                let plan = guard.compile(xpath).expect(name);
                let plan = guard.optimize_plan(plan, DocId(0)).expect(name).plan;
                let rows = guard.execute_plan(&plan, DocId(0)).expect(name).len();
                assert!(rows > 0, "{name} ({xpath}) returned no rows");
                plan
            };
            let chains_before = engine.read().fused_stats().0;
            let sample = {
                let s = run_window(
                    &engine,
                    std::slice::from_ref(&plan),
                    "scan",
                    "batched",
                    drivers,
                    drivers,
                    true,
                    args.window,
                );
                FusedSample {
                    name,
                    xpath,
                    enabled,
                    queries: s.queries,
                    rows: s.rows,
                    elapsed: s.elapsed,
                    fused_chains: engine.read().fused_stats().0 - chains_before,
                }
            };
            let speedup = samples
                .iter()
                .find(|s| !s.enabled && s.name == *name)
                .filter(|_| enabled)
                .map(|off| format!("{:.2}x", sample.qps() / off.qps()))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "{:>6} {:>6} {:>8} {:>12} {:>14.1} {:>8} {:>12}",
                if enabled { "on" } else { "off" },
                name,
                drivers,
                sample.queries,
                sample.qps(),
                sample.fused_chains,
                speedup
            );
            samples.push(sample);
        }
    }

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput_fused_chains\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"doc_megabytes\": {},\n", args.megabytes));
    out.push_str(&format!("  \"window_ms\": {},\n", args.window.as_millis()));
    out.push_str(&format!("  \"drivers\": {drivers},\n"));
    out.push_str("  \"results\": {\n");
    for (i, &enabled) in phases.iter().enumerate() {
        let key = if enabled { "fused_on" } else { "fused_off" };
        out.push_str(&format!("    \"{key}\": [\n"));
        let phase: Vec<&FusedSample> = samples.iter().filter(|s| s.enabled == enabled).collect();
        for (j, s) in phase.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"xpath\": \"{}\", \"queries\": {}, \"rows\": {}, \"qps\": {:.1}, \"fused_chains\": {}}}{}\n",
                s.name,
                s.xpath,
                s.queries,
                s.rows,
                s.qps(),
                s.fused_chains,
                if j + 1 < phase.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]{}\n",
            if i + 1 < phases.len() { "," } else { "" }
        ));
    }
    out.push_str("  }");
    if phases.len() == 2 {
        let mut pairs = Vec::new();
        let mut best = 0.0f64;
        for (name, _) in SCAN_QUERIES {
            let on = samples.iter().find(|s| s.enabled && s.name == *name);
            let off = samples.iter().find(|s| !s.enabled && s.name == *name);
            if let (Some(on), Some(off)) = (on, off) {
                let ratio = on.qps() / off.qps();
                if on.fused_chains > 0 {
                    best = best.max(ratio);
                }
                pairs.push(format!("\"{name}\": {ratio:.2}"));
            }
        }
        out.push_str(",\n  \"speedup_fused_on_over_off\": {");
        out.push_str(&pairs.join(", "));
        out.push_str("},\n");
        out.push_str(&format!("  \"best_fused_speedup\": {best:.2}\n"));
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    let path = args.out.as_deref().unwrap_or("BENCH_8.json");
    std::fs::write(path, &out).expect("write json");
    eprintln!("wrote {path}");
}

/// Runs the suite's query mix from `drivers` threads for `window`.
#[allow(clippy::too_many_arguments)]
fn run_window(
    engine: &Arc<SharedEngine>,
    plans: &[QueryPlan],
    suite: &'static str,
    mode: &'static str,
    workers: usize,
    drivers: usize,
    batched: bool,
    window: Duration,
) -> Sample {
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let rows = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..drivers.max(1) {
            let engine = Arc::clone(engine);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let rows = Arc::clone(&rows);
            scope.spawn(move || {
                let mut buf = Vec::with_capacity(BATCH_SIZE);
                let mut i = t; // offset so drivers interleave the mix
                while !stop.load(Ordering::Relaxed) {
                    let plan = &plans[i % plans.len()];
                    let guard = engine.read();
                    let mut stream = guard.stream_plan(plan.clone(), DocId(0)).expect("stream");
                    let mut n = 0u64;
                    if batched {
                        loop {
                            buf.clear();
                            let k = stream.next_batch(&mut buf, BATCH_SIZE).expect("batch");
                            if k == 0 {
                                break;
                            }
                            n += k as u64;
                        }
                    } else {
                        while stream.next().expect("next").is_some() {
                            n += 1;
                        }
                    }
                    assert!(n > 0, "query produced no rows mid-bench");
                    queries.fetch_add(1, Ordering::Relaxed);
                    rows.fetch_add(n, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    Sample {
        suite,
        mode,
        workers,
        drivers,
        queries: queries.load(Ordering::Relaxed),
        rows: rows.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

/// Hand-rolled JSON (the workspace deliberately has no serde): uniform
/// per-result metadata plus per-suite speedup summaries keyed by the
/// worker count.
fn render_json(args: &Args, suites: &[(&str, &[(&str, &str)]); 2], samples: &[Sample]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput_scalar_batched_parallel\",\n");
    // Intra-query speedup is bounded by physical cores: on a 1-CPU host
    // the parallel mode can only show overhead, so record the hardware.
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"doc_megabytes\": {},\n", args.megabytes));
    out.push_str(&format!("  \"window_ms\": {},\n", args.window.as_millis()));
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str("  \"suites\": {\n");
    for (i, (suite, queries)) in suites.iter().enumerate() {
        let names: Vec<String> = queries
            .iter()
            .map(|(n, q)| format!("{{\"name\": \"{n}\", \"xpath\": \"{q}\"}}"))
            .collect();
        out.push_str(&format!("    \"{suite}\": [{}]", names.join(", ")));
        out.push_str(if i + 1 < suites.len() { ",\n" } else { "\n" });
    }
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"suite\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"drivers\": {}, \"queries\": {}, \"rows\": {}, \"elapsed_ms\": {:.1}, \"qps\": {:.1}}}{}\n",
            s.suite,
            s.mode,
            s.workers,
            s.drivers,
            s.queries,
            s.rows,
            s.elapsed.as_secs_f64() * 1e3,
            s.qps(),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let suite_names: Vec<&str> = suites.iter().map(|(s, _)| *s).collect();
    let find = |suite: &str, mode: &str, workers: usize| {
        samples
            .iter()
            .find(|s| s.suite == suite && s.mode == mode && s.workers == workers)
    };
    out.push_str("  \"speedup_batched_over_scalar\": {\n");
    for (i, suite) in suite_names.iter().enumerate() {
        let mut pairs = Vec::new();
        for &w in &args.workers {
            if let (Some(b), Some(s)) = (find(suite, "batched", w), find(suite, "scalar", w)) {
                pairs.push(format!("\"{w}\": {:.2}", b.qps() / s.qps()));
            }
        }
        out.push_str(&format!("    \"{suite}\": {{{}}}", pairs.join(", ")));
        out.push_str(if i + 1 < suite_names.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  },\n");
    // parallel at pool width w (one driver) vs one serial-batched driver:
    // the intra-query speedup of morsel-parallel scans.
    out.push_str("  \"speedup_parallel_over_batched\": {\n");
    for (i, suite) in suite_names.iter().enumerate() {
        let baseline = samples
            .iter()
            .find(|s| s.suite == *suite && s.mode == "batched" && s.drivers == 1);
        let mut pairs = Vec::new();
        for &w in &args.workers {
            if let (Some(p), Some(b)) = (find(suite, "parallel", w), baseline) {
                pairs.push(format!("\"{w}\": {:.2}", p.qps() / b.qps()));
            }
        }
        out.push_str(&format!("    \"{suite}\": {{{}}}", pairs.join(", ")));
        out.push_str(if i + 1 < suite_names.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}

// ---------------------------------------------------------------------
// Replicated reads: `--replicas n`.
// ---------------------------------------------------------------------

/// One window of replicated reads: aggregate QPS at a given fan-out.
struct ReplSample {
    replicas: usize,
    reads: u64,
    elapsed: Duration,
}

impl ReplSample {
    fn qps(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }
}

/// Number of reader threads driving queries, split round-robin over the
/// primary plus every replica. Held constant across fan-outs so the QPS
/// delta isolates what the extra serving processes buy.
const REPL_READERS: usize = 8;

/// Writes per lag burst and bursts per fan-out.
const LAG_BURST_WRITES: usize = 50;
const LAG_BURSTS: usize = 3;

/// `--replicas n`: for each fan-out 0..=n, stand up a durable primary
/// plus that many log-shipping replicas, measure aggregate read QPS with
/// a fixed reader pool spread over every endpoint, then burst writes at
/// the primary and time each replica's convergence back to zero lag.
/// Results go to `BENCH_6.json` (override with `--out`).
fn run_replicas(args: &Args, max_replicas: usize) {
    use vamana_mass::FsyncPolicy;
    use vamana_replica::{Replica, ReplicaConfig};
    use vamana_server::testkit::{lag_value, Client};
    use vamana_server::{Server, ServerConfig};

    eprintln!("generating ~{} MB of XMark data…", args.megabytes);
    let xml = vamana_bench::document(args.megabytes);
    let dir = std::env::temp_dir().join(format!("vamana-bench-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    let queries: Vec<String> = SCAN_QUERIES
        .iter()
        .map(|(_, xpath)| format!("QUERY {xpath}"))
        .collect();

    let mut samples: Vec<ReplSample> = Vec::new();
    let mut convergence_us: Vec<u64> = Vec::new();

    for fanout in 0..=max_replicas {
        // Fresh primary per fan-out: identical starting state, no
        // carry-over from the previous window's lag bursts.
        let path = dir.join(format!("primary-{fanout}.mass"));
        let mut store = MassStore::create_durable(&path, 4096, FsyncPolicy::Never).expect("store");
        store.load_xml("auction", &xml).expect("load xmark");
        let primary = Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
            .expect("bind")
            .spawn()
            .expect("spawn");
        let mut ctl = Client::connect(&primary);

        let replicas: Vec<_> = (0..fanout)
            .map(|i| {
                Replica::start(ReplicaConfig {
                    primary: primary.addr().to_string(),
                    data: dir.join(format!("replica-{fanout}-{i}.mass")),
                    fsync: FsyncPolicy::Never,
                    ..ReplicaConfig::default()
                })
                .expect("start replica")
            })
            .collect();

        // Every endpoint answers queries; wait until the replicas have
        // the snapshot applied before opening the taps.
        let target = lag_value(&ctl.round_trip("LAG"), "last_lsn");
        let mut endpoints = vec![primary.addr()];
        for r in &replicas {
            let mut follower = Client::connect_addr(r.addr());
            let deadline = Instant::now() + Duration::from_secs(30);
            while lag_value(&follower.round_trip("LAG"), "applied_lsn") < target {
                assert!(Instant::now() < deadline, "replica never caught up");
                std::thread::sleep(Duration::from_millis(10));
            }
            endpoints.push(r.addr());
        }

        // Measurement window: REPL_READERS threads round-robin over the
        // endpoints, each counting completed queries.
        let stop = Arc::new(AtomicBool::new(false));
        let reads = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..REPL_READERS {
                let endpoint = endpoints[t % endpoints.len()];
                let stop = Arc::clone(&stop);
                let reads = Arc::clone(&reads);
                let queries = &queries;
                scope.spawn(move || {
                    let mut client = Client::connect_addr(endpoint);
                    client.round_trip("LIMIT 1");
                    let mut i = t;
                    while !stop.load(Ordering::Relaxed) {
                        let reply = client.round_trip(&queries[i % queries.len()]);
                        assert!(reply.last().unwrap().starts_with("OK"), "{reply:?}");
                        reads.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
            std::thread::sleep(args.window);
            stop.store(true, Ordering::Relaxed);
        });
        let sample = ReplSample {
            replicas: fanout,
            reads: reads.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
        };
        eprintln!(
            "fan-out {fanout}: {} reads in {:.2?} ({:.1} reads/sec over {} endpoint(s))",
            sample.reads,
            sample.elapsed,
            sample.qps(),
            endpoints.len()
        );
        samples.push(sample);

        // Lag convergence: burst writes at the primary, then time each
        // replica's walk back to zero lag.
        if fanout > 0 {
            for _ in 0..LAG_BURSTS {
                for i in 0..LAG_BURST_WRITES {
                    let reply = ctl.round_trip(&format!(
                        "INSERT auction //people <person><name>lag{i}</name></person>"
                    ));
                    assert!(reply[0].starts_with("OK update"), "{reply:?}");
                }
                let target = lag_value(&ctl.round_trip("LAG"), "last_lsn");
                for r in &replicas {
                    let mut follower = Client::connect_addr(r.addr());
                    let t0 = Instant::now();
                    let deadline = t0 + Duration::from_secs(30);
                    while lag_value(&follower.round_trip("LAG"), "applied_lsn") < target {
                        assert!(Instant::now() < deadline, "burst never converged");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    convergence_us.push(t0.elapsed().as_micros() as u64);
                }
            }
        }

        for r in replicas {
            r.stop();
        }
        primary.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Histogram of convergence times: cumulative millisecond buckets
    // over microsecond samples (streaming replicas usually converge in
    // well under a millisecond, so sub-ms fidelity matters).
    const BUCKETS: [(&str, u64); 6] = [
        ("le_1", 1_000),
        ("le_5", 5_000),
        ("le_10", 10_000),
        ("le_50", 50_000),
        ("le_100", 100_000),
        ("le_1000", 1_000_000),
    ];
    let mut hist: Vec<(&str, u64)> = BUCKETS
        .iter()
        .map(|(label, cap)| {
            (
                *label,
                convergence_us.iter().filter(|&&us| us <= *cap).count() as u64,
            )
        })
        .collect();
    hist.push((
        "gt_1000",
        convergence_us.iter().filter(|&&us| us > 1_000_000).count() as u64,
    ));

    println!("{:>10} {:>10} {:>13}", "replicas", "reads", "reads/sec");
    for s in &samples {
        println!("{:>10} {:>10} {:>13.1}", s.replicas, s.reads, s.qps());
    }
    println!("lag convergence (us): {convergence_us:?}");

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput_replicated_reads\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"doc_megabytes\": {},\n", args.megabytes));
    out.push_str(&format!("  \"window_ms\": {},\n", args.window.as_millis()));
    out.push_str(&format!("  \"readers\": {REPL_READERS},\n"));
    out.push_str(&format!(
        "  \"lag_burst\": {{\"writes\": {LAG_BURST_WRITES}, \"bursts\": {LAG_BURSTS}}},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"replicas\": {}, \"reads\": {}, \"reads_per_sec\": {:.1}}}{}\n",
            s.replicas,
            s.reads,
            s.qps(),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"lag_convergence_ms\": {\n");
    out.push_str(&format!(
        "    \"samples_us\": [{}],\n",
        convergence_us
            .iter()
            .map(|us| us.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("    \"histogram\": {");
    out.push_str(
        &hist
            .iter()
            .map(|(label, n)| format!("\"{label}\": {n}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str("}\n  }\n}\n");
    let path = args.out.as_deref().unwrap_or("BENCH_6.json");
    std::fs::write(path, &out).expect("write json");
    eprintln!("wrote {path}");
}

// ---------------------------------------------------------------------
// Sharded front tier: `--router SxR`.
// ---------------------------------------------------------------------

/// Reader threads driving the router vs. single-node windows. Held
/// constant across both tiers so the QPS delta isolates the topology.
const ROUTER_READERS: usize = 8;

/// Idle connections opened in the connection-scaling phase — far more
/// than the threaded core can hold without one OS thread apiece.
const IDLE_CONNS: usize = 256;

/// Active clients during the connection-scaling measurement window.
const ACTIVE_CLIENTS: usize = 64;

/// One measurement window of the router benchmark.
struct RouterWindow {
    tier: &'static str,
    traffic: &'static str,
    reads: u64,
    elapsed: Duration,
}

impl RouterWindow {
    fn qps(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }
}

/// One core's connection-scaling result.
struct ScalingSample {
    core: &'static str,
    threads_before: u64,
    threads_after: u64,
    reads: u64,
    elapsed: Duration,
}

impl ScalingSample {
    fn qps(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }
}

/// `Threads:` from `/proc/self/status` — every in-process server's
/// connection and worker threads land in this count, so the delta
/// across "open N idle connections" is exactly what the core spent.
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Runs `readers` client threads against `addr` replaying `queries`
/// round-robin for `window`, counting completed requests.
fn wire_window(
    addr: std::net::SocketAddr,
    queries: &[String],
    readers: usize,
    window: Duration,
) -> (u64, Duration) {
    use vamana_server::testkit::Client;
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..readers.max(1) {
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            scope.spawn(move || {
                let mut client = Client::connect_addr(addr);
                client.round_trip("LIMIT 5");
                let mut i = t; // offset so readers interleave the mix
                while !stop.load(Ordering::Relaxed) {
                    let reply = client.round_trip(&queries[i % queries.len()]);
                    assert!(
                        reply.last().is_some_and(|l| l.starts_with("OK")),
                        "{reply:?}"
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    (reads.load(Ordering::Relaxed), start.elapsed())
}

/// `--router SxR`: stand up `shards` durable primaries × `replicas`
/// streaming replicas behind a router, load the same XMark document
/// under `2×shards` names through the front tier, and compare aggregate
/// QPS against a single-node server holding every document — once with
/// scatter-gather traffic (`QUERY` with no `DOC`, fanned across every
/// shard and merged) and once with doc-targeted traffic (`QUERY DOC`,
/// routed to the owner and load-balanced over its fresh replicas).
///
/// A second phase measures what the event core is for: each core
/// accepts [`IDLE_CONNS`] idle connections (recording the process
/// thread-count delta — one thread apiece for the threaded core, none
/// for the event core), then serves [`ACTIVE_CLIENTS`] concurrent
/// query streams. Results go to `BENCH_9.json` (override with `--out`).
fn run_router(args: &Args, shards: usize, replicas: usize) {
    use vamana_mass::FsyncPolicy;
    use vamana_replica::{Replica, ReplicaConfig};
    use vamana_router::{Router, RouterConfig};
    use vamana_server::testkit::{lag_value, Client};
    use vamana_server::{CoreMode, Server, ServerConfig};

    eprintln!("generating ~{} MB of XMark data…", args.megabytes);
    let xml = vamana_bench::document(args.megabytes);
    let dir = std::env::temp_dir().join(format!("vamana-bench-router-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let xml_path = dir.join("xmark.xml");
    std::fs::write(&xml_path, &xml).expect("write xml");

    // Two documents per shard: enough that scatter-gather has real
    // fan-out and the hash placement puts work on every shard.
    let docs = (shards * 2).max(2);
    let names: Vec<String> = (0..docs).map(|i| format!("xmark-{i}")).collect();

    // Single node: every document on one process (the no-router tier).
    let mut store = MassStore::open_memory();
    for name in &names {
        store.load_xml(name, &xml).expect("load single");
    }
    let single = Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
        .expect("bind single")
        .spawn()
        .expect("spawn single");

    // Sharded tier: durable primaries (replication needs a WAL), then
    // the replicas, then the router over all of them.
    let primaries: Vec<_> = (0..shards)
        .map(|s| {
            let path = dir.join(format!("shard-{s}.mass"));
            let store =
                MassStore::create_durable(&path, 4096, FsyncPolicy::Never).expect("shard store");
            Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
                .expect("bind shard")
                .spawn()
                .expect("spawn shard")
        })
        .collect();
    let followers: Vec<_> = (0..shards)
        .flat_map(|s| {
            let primary = primaries[s].addr().to_string();
            let dir = &dir;
            (0..replicas).map(move |r| {
                Replica::start(ReplicaConfig {
                    primary: primary.clone(),
                    data: dir.join(format!("replica-{s}-{r}.mass")),
                    fsync: FsyncPolicy::Never,
                    ..ReplicaConfig::default()
                })
                .expect("start replica")
            })
        })
        .collect();
    let router = Router::start(RouterConfig {
        shards: (0..shards)
            .map(|s| {
                (
                    primaries[s].addr().to_string(),
                    followers[s * replicas..(s + 1) * replicas]
                        .iter()
                        .map(|f| f.addr().to_string())
                        .collect(),
                )
            })
            .collect(),
        health_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    })
    .expect("start router");

    // Load every document through the front tier so the registry holds
    // the exact global order (and placement exercises the real ring).
    let mut ctl = Client::connect_addr(router.addr());
    for name in &names {
        let reply = ctl.round_trip(&format!("LOAD {name} {}", xml_path.display()));
        assert!(reply[0].starts_with("OK loaded"), "LOAD {name}: {reply:?}");
    }

    // Wait for every replica to apply the loads, then for the router's
    // health monitor to observe the convergence (reads only balance to
    // replicas the router has seen fresh).
    for (s, primary) in primaries.iter().enumerate() {
        let mut pc = Client::connect(primary);
        let target = lag_value(&pc.round_trip("LAG"), "last_lsn");
        for follower in &followers[s * replicas..(s + 1) * replicas] {
            let mut fc = Client::connect_addr(follower.addr());
            let deadline = Instant::now() + Duration::from_secs(30);
            while lag_value(&fc.round_trip("LAG"), "applied_lsn") < target {
                assert!(Instant::now() < deadline, "replica never caught up");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    if replicas > 0 {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let fresh = ctl
                .round_trip("TOPOLOGY")
                .iter()
                .filter(|l| l.contains(" fresh=1"))
                .count();
            if fresh >= shards * replicas {
                break;
            }
            assert!(Instant::now() < deadline, "router never saw replicas fresh");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // Traffic mixes. Scatter: no DOC, the router fans across shards and
    // merges; the single node walks its local registry. Targeted: DOC
    // by name, round-robin over documents and queries.
    let scatter: Vec<String> = SCAN_QUERIES
        .iter()
        .map(|(_, xpath)| format!("QUERY {xpath}"))
        .collect();
    let targeted: Vec<String> = names
        .iter()
        .flat_map(|name| {
            SCAN_QUERIES
                .iter()
                .map(move |(_, xpath)| format!("QUERY DOC {name} {xpath}"))
        })
        .collect();

    eprintln!(
        "router benchmark: {shards} shard(s) × {replicas} replica(s), {docs} document(s), \
         {ROUTER_READERS} reader(s)"
    );
    println!(
        "{:>12} {:>10} {:>10} {:>13}",
        "tier", "traffic", "reads", "reads/sec"
    );
    let mut windows: Vec<RouterWindow> = Vec::new();
    for (tier, addr) in [("single_node", single.addr()), ("router", router.addr())] {
        for (traffic, queries) in [("scatter", &scatter), ("targeted", &targeted)] {
            let (reads, elapsed) = wire_window(addr, queries, ROUTER_READERS, args.window);
            let w = RouterWindow {
                tier,
                traffic,
                reads,
                elapsed,
            };
            println!(
                "{:>12} {:>10} {:>10} {:>13.1}",
                w.tier,
                w.traffic,
                w.reads,
                w.qps()
            );
            windows.push(w);
        }
    }
    router.stop();
    for follower in followers {
        follower.stop();
    }
    for primary in primaries {
        primary.stop();
    }
    single.stop();

    // Connection scaling: the same protocol served by each core. Idle
    // connections are opened (and proven live with a PING) before the
    // thread count is sampled; the active window then runs with all of
    // them still parked.
    let light = format!("QUERY {}", SCAN_QUERIES[0].1);
    println!(
        "{:>10} {:>10} {:>14} {:>13} {:>10} {:>13}",
        "core", "idle_conns", "threads_before", "threads_after", "active", "reads/sec"
    );
    let mut scaling: Vec<ScalingSample> = Vec::new();
    for (core_name, core) in [("event", CoreMode::Event), ("threaded", CoreMode::Threaded)] {
        let mut store = MassStore::open_memory();
        store.load_xml("auction", &xml).expect("load scaling");
        let config = ServerConfig {
            core,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", Engine::new(store), config)
            .expect("bind scaling")
            .spawn()
            .expect("spawn scaling");
        let threads_before = process_threads();
        let _idle: Vec<Client> = (0..IDLE_CONNS)
            .map(|_| {
                let mut client = Client::connect(&server);
                let reply = client.round_trip("PING");
                assert!(reply[0].starts_with("OK"), "{reply:?}");
                client
            })
            .collect();
        let threads_after = process_threads();
        let (reads, elapsed) = wire_window(
            server.addr(),
            std::slice::from_ref(&light),
            ACTIVE_CLIENTS,
            args.window,
        );
        let sample = ScalingSample {
            core: core_name,
            threads_before,
            threads_after,
            reads,
            elapsed,
        };
        println!(
            "{:>10} {:>10} {:>14} {:>13} {:>10} {:>13.1}",
            sample.core,
            IDLE_CONNS,
            sample.threads_before,
            sample.threads_after,
            ACTIVE_CLIENTS,
            sample.qps()
        );
        scaling.push(sample);
        drop(_idle);
        server.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);

    let find = |tier: &str, traffic: &str| {
        windows
            .iter()
            .find(|w| w.tier == tier && w.traffic == traffic)
            .expect("window")
    };
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput_router_scatter_gather\",\n");
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"doc_megabytes\": {},\n", args.megabytes));
    out.push_str(&format!("  \"window_ms\": {},\n", args.window.as_millis()));
    out.push_str(&format!("  \"readers\": {ROUTER_READERS},\n"));
    out.push_str(&format!(
        "  \"topology\": {{\"shards\": {shards}, \"replicas_per_shard\": {replicas}, \"documents\": {docs}}},\n"
    ));
    out.push_str("  \"results\": {\n");
    for (i, tier) in ["single_node", "router"].iter().enumerate() {
        let s = find(tier, "scatter");
        let t = find(tier, "targeted");
        out.push_str(&format!(
            "    \"{tier}\": {{\"scatter_reads\": {}, \"scatter_qps\": {:.1}, \"targeted_reads\": {}, \"targeted_qps\": {:.1}}}{}\n",
            s.reads,
            s.qps(),
            t.reads,
            t.qps(),
            if i == 0 { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"scatter_ratio_router_over_single\": {:.2},\n",
        find("router", "scatter").qps() / find("single_node", "scatter").qps()
    ));
    out.push_str(&format!(
        "  \"targeted_ratio_router_over_single\": {:.2},\n",
        find("router", "targeted").qps() / find("single_node", "targeted").qps()
    ));
    out.push_str("  \"connection_scaling\": {\n");
    out.push_str(&format!(
        "    \"idle_connections\": {IDLE_CONNS},\n    \"active_clients\": {ACTIVE_CLIENTS},\n"
    ));
    out.push_str("    \"cores\": {\n");
    for (i, s) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "      \"{}\": {{\"threads_before\": {}, \"threads_after\": {}, \"threads_added\": {}, \"reads\": {}, \"qps_at_active_clients\": {:.1}}}{}\n",
            s.core,
            s.threads_before,
            s.threads_after,
            s.threads_after.saturating_sub(s.threads_before),
            s.reads,
            s.qps(),
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    out.push_str("    }\n  }\n}\n");
    let path = args.out.as_deref().unwrap_or("BENCH_9.json");
    std::fs::write(path, &out).expect("write json");
    eprintln!("wrote {path}");
}
