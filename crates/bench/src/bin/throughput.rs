//! Throughput benchmark: batched vs scalar execution, queries/sec per
//! worker count, against one shared engine.
//!
//! ```sh
//! cargo run --release -p vamana-bench --bin throughput \
//!     [-- <mb> [threads...] [--window-ms N] [--out PATH]]
//! ```
//!
//! Two query suites run in both execution modes over the same build and
//! the same loaded document:
//!
//! - `scan`: structural XMark scans ([`SCAN_QUERIES`]) — wildcard and
//!   kind tests whose steps walk clustered MASS pages, where the batched
//!   pipeline amortizes one page pin over every record on the page.
//! - `eval`: the paper's evaluation mix (Q1–Q5), which is mostly
//!   index-only and bounds how much batching can help non-scan work.
//!
//! Plans are compiled and optimized once per query before measurement
//! (the serving layer likewise caches optimized plans); each worker
//! clones a plan and drains the result stream (`next_batch` in batched
//! mode, `next()` tuple-at-a-time in scalar mode), so the measured work
//! is executor cost, not parsing or optimization. Results go to stdout
//! as a table and to `BENCH_2.json` (override with `--out`) as
//! machine-readable JSON.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vamana_bench::{QUERIES, SCAN_QUERIES};
use vamana_core::exec::BATCH_SIZE;
use vamana_core::plan::QueryPlan;
use vamana_core::{DocId, Engine, SharedEngine};
use vamana_mass::MassStore;

struct Args {
    megabytes: f64,
    threads: Vec<usize>,
    window: Duration,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        megabytes: 0.5,
        threads: Vec::new(),
        window: Duration::from_secs(2),
        out: "BENCH_2.json".to_string(),
    };
    let mut positional = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--window-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--window-ms needs a millisecond count");
                args.window = Duration::from_millis(ms);
            }
            "--out" => {
                args.out = it.next().expect("--out needs a path");
            }
            other => {
                if positional == 0 {
                    args.megabytes = other.parse().expect("first positional arg is <mb>");
                } else {
                    args.threads
                        .push(other.parse().expect("thread counts are integers"));
                }
                positional += 1;
            }
        }
    }
    if args.threads.is_empty() {
        args.threads = vec![1, 2, 4, 8];
    }
    args
}

/// One suite in one mode at one worker count.
struct Sample {
    suite: &'static str,
    mode: &'static str,
    threads: usize,
    queries: u64,
    rows: u64,
    elapsed: Duration,
}

impl Sample {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64()
    }
}

fn main() {
    let args = parse_args();

    eprintln!("generating ~{} MB of XMark data…", args.megabytes);
    let xml = vamana_bench::document(args.megabytes);
    let mut store = MassStore::open_memory();
    store.load_xml("auction", &xml).expect("load xmark");
    let engine = Arc::new(SharedEngine::new(Engine::new(store)));

    let suites: [(&str, &[(&str, &str)]); 2] = [("scan", SCAN_QUERIES), ("eval", QUERIES)];

    // Compile every plan once and warm the buffer pool; a query that
    // matches nothing means the generator or planner is broken, so fail
    // loudly (the CI smoke job relies on this).
    let mut plans: Vec<(&str, Vec<QueryPlan>)> = Vec::new();
    for (suite, queries) in suites {
        let mut compiled = Vec::new();
        for (name, xpath) in queries {
            let guard = engine.read();
            let plan = guard.compile(xpath).expect(name);
            let plan = guard.optimize_plan(plan, DocId(0)).expect(name).plan;
            let rows = guard.execute_plan(&plan, DocId(0)).expect(name).len();
            assert!(rows > 0, "{name} ({xpath}) returned no rows");
            eprintln!("  {name}: {rows} row(s)");
            compiled.push(plan);
        }
        plans.push((suite, compiled));
    }

    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>14} {:>12}",
        "suite", "mode", "threads", "queries", "queries/sec", "speedup"
    );
    let mut samples: Vec<Sample> = Vec::new();
    for (suite, compiled) in &plans {
        for &threads in &args.threads {
            for (mode, batched) in [("scalar", false), ("batched", true)] {
                engine.write().options_mut().batched = batched;
                let sample = run_window(
                    &engine,
                    compiled,
                    suite,
                    mode,
                    batched,
                    threads.max(1),
                    args.window,
                );
                let speedup = match mode {
                    "batched" => {
                        let scalar = samples
                            .iter()
                            .rfind(|s| s.suite == *suite && s.threads == threads)
                            .expect("scalar ran first");
                        format!("{:.2}x", sample.qps() / scalar.qps())
                    }
                    _ => "-".to_string(),
                };
                println!(
                    "{:>6} {:>8} {:>8} {:>12} {:>14.1} {:>12}",
                    suite,
                    mode,
                    threads,
                    sample.queries,
                    sample.qps(),
                    speedup
                );
                samples.push(sample);
            }
        }
    }
    engine.write().options_mut().batched = true;

    let json = render_json(&args, &suites, &samples);
    std::fs::write(&args.out, &json).expect("write json");
    eprintln!("wrote {}", args.out);
}

/// Runs the suite's query mix from `threads` workers for `window`.
fn run_window(
    engine: &Arc<SharedEngine>,
    plans: &[QueryPlan],
    suite: &'static str,
    mode: &'static str,
    batched: bool,
    threads: usize,
    window: Duration,
) -> Sample {
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let rows = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = Arc::clone(engine);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let rows = Arc::clone(&rows);
            scope.spawn(move || {
                let mut buf = Vec::with_capacity(BATCH_SIZE);
                let mut i = t; // offset so workers interleave the mix
                while !stop.load(Ordering::Relaxed) {
                    let plan = &plans[i % plans.len()];
                    let guard = engine.read();
                    let mut stream = guard.stream_plan(plan.clone(), DocId(0)).expect("stream");
                    let mut n = 0u64;
                    if batched {
                        loop {
                            buf.clear();
                            let k = stream.next_batch(&mut buf, BATCH_SIZE).expect("batch");
                            if k == 0 {
                                break;
                            }
                            n += k as u64;
                        }
                    } else {
                        while stream.next().expect("next").is_some() {
                            n += 1;
                        }
                    }
                    assert!(n > 0, "query produced no rows mid-bench");
                    queries.fetch_add(1, Ordering::Relaxed);
                    rows.fetch_add(n, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    Sample {
        suite,
        mode,
        threads,
        queries: queries.load(Ordering::Relaxed),
        rows: rows.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

/// Hand-rolled JSON (the workspace deliberately has no serde): the
/// samples plus per-suite batched/scalar speedups keyed by threads.
fn render_json(args: &Args, suites: &[(&str, &[(&str, &str)]); 2], samples: &[Sample]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput_batched_vs_scalar\",\n");
    out.push_str(&format!("  \"doc_megabytes\": {},\n", args.megabytes));
    out.push_str(&format!("  \"window_ms\": {},\n", args.window.as_millis()));
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str("  \"suites\": {\n");
    for (i, (suite, queries)) in suites.iter().enumerate() {
        let names: Vec<String> = queries
            .iter()
            .map(|(n, q)| format!("{{\"name\": \"{n}\", \"xpath\": \"{q}\"}}"))
            .collect();
        out.push_str(&format!("    \"{suite}\": [{}]", names.join(", ")));
        out.push_str(if i + 1 < suites.len() { ",\n" } else { "\n" });
    }
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"suite\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"queries\": {}, \"rows\": {}, \"elapsed_ms\": {:.1}, \"qps\": {:.1}}}{}\n",
            s.suite,
            s.mode,
            s.threads,
            s.queries,
            s.rows,
            s.elapsed.as_secs_f64() * 1e3,
            s.qps(),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_batched_over_scalar\": {\n");
    let suite_names: Vec<&str> = suites.iter().map(|(s, _)| *s).collect();
    for (i, suite) in suite_names.iter().enumerate() {
        let mut pairs = Vec::new();
        for &threads in &args.threads {
            let find = |mode: &str| {
                samples
                    .iter()
                    .find(|s| s.suite == *suite && s.mode == mode && s.threads == threads)
            };
            if let (Some(b), Some(s)) = (find("batched"), find("scalar")) {
                pairs.push(format!("\"{threads}\": {:.2}", b.qps() / s.qps()));
            }
        }
        out.push_str(&format!("    \"{suite}\": {{{}}}", pairs.join(", ")));
        out.push_str(if i + 1 < suite_names.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}
