//! Regenerates every table and figure of the paper's evaluation as text
//! tables (and CSV rows on stderr-free stdout) — see EXPERIMENTS.md for
//! the mapping.
//!
//! ```sh
//! cargo run --release -p vamana-bench --bin figures -- all
//! cargo run --release -p vamana-bench --bin figures -- fig12 --sizes=1,2,5,10
//! cargo run --release -p vamana-bench --bin figures -- fig6 --mb=10
//! ```

use std::time::Instant;
use vamana_bench::{document, run_best, Lineup, Outcome, QUERIES};
use vamana_core::cost::table::table_out;
use vamana_core::{DocId, Engine, MassStore};
use vamana_flex::Axis;

struct Args {
    command: String,
    sizes: Vec<f64>,
    megabytes: f64,
}

fn parse_args() -> Args {
    let mut command = "all".to_string();
    let mut sizes = vec![1.0, 2.0, 5.0, 10.0];
    let mut megabytes = 5.0;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--sizes=") {
            sizes = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
        } else if let Some(v) = arg.strip_prefix("--mb=") {
            megabytes = v.parse().unwrap_or(5.0);
        } else if !arg.starts_with("--") {
            command = arg;
        }
    }
    Args {
        command,
        sizes,
        megabytes,
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "table1" => table1(),
        "fig6" => explain_figure(
            "fig6",
            "/descendant::name/parent::*/self::person/address",
            args.megabytes,
        ),
        "fig7" => explain_figure(
            "fig7",
            "//name[text() = 'Yung Flach']/following-sibling::emailaddress",
            args.megabytes,
        ),
        "fig8" => trace_figure(
            "fig8",
            "/descendant::name/parent::*/self::person/address",
            args.megabytes,
        ),
        "fig9" => explain_figure(
            "fig9",
            "//province[text()='Vermont']/ancestor::person",
            args.megabytes,
        ),
        "fig12" => sweep_figure("fig12", 0, &args.sizes),
        "fig13" => sweep_figure("fig13", 1, &args.sizes),
        "fig14" => sweep_figure("fig14", 2, &args.sizes),
        "fig15" => sweep_figure("fig15", 3, &args.sizes),
        "fig16" => sweep_figure("fig16", 4, &args.sizes),
        "overhead" => overhead(args.megabytes),
        "io" => io_fraction(args.megabytes),
        "all" => {
            table1();
            explain_figure(
                "fig6",
                "/descendant::name/parent::*/self::person/address",
                args.megabytes,
            );
            explain_figure(
                "fig7",
                "//name[text() = 'Yung Flach']/following-sibling::emailaddress",
                args.megabytes,
            );
            trace_figure(
                "fig8",
                "/descendant::name/parent::*/self::person/address",
                args.megabytes,
            );
            explain_figure(
                "fig9",
                "//province[text()='Vermont']/ancestor::person",
                args.megabytes,
            );
            for (fig, qi) in [
                ("fig12", 0),
                ("fig13", 1),
                ("fig14", 2),
                ("fig15", 3),
                ("fig16", 4),
            ] {
                sweep_figure(fig, qi, &args.sizes);
            }
            overhead(args.megabytes);
            io_fraction(args.megabytes);
        }
        other => {
            eprintln!("unknown command `{other}`; try: table1 fig6 fig7 fig8 fig9 fig12..fig16 overhead all");
            std::process::exit(2);
        }
    }
}

/// Table I: OUT(opᵢ) upper bounds per axis class, demonstrated with the
/// paper's Fig 6 numbers (COUNT vs IN).
fn table1() {
    println!("==== Table I — step-operator output bounds (COUNT=2550, IN=4825 and reverse)");
    println!(
        "{:<22} {:>18} {:>18}",
        "axis", "OUT(2550,4825)", "OUT(4825,2550)"
    );
    for axis in Axis::ALL {
        let a = table_out(axis, 2550, 4825, false);
        let b = table_out(axis, 4825, 2550, false);
        println!("{:<22} {:>18} {:>18}", axis.as_str(), a, b);
    }
    println!();
}

/// Figs 6–9: cost-annotated default and optimized plans for one query.
fn explain_figure(fig: &str, query: &str, megabytes: f64) {
    println!("==== {fig} — {query} (~{megabytes} MB XMark document)");
    let xml = document(megabytes);
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).expect("load");
    let engine = Engine::new(store);
    let explain = engine.explain(DocId(0), query).expect("explain");
    println!(
        "-- default plan (Σ tuple volume = {}):",
        explain.default_cost
    );
    print!("{}", explain.default_plan);
    println!(
        "-- optimized plan (Σ tuple volume = {}; rules: {:?}; {} iteration(s)):",
        explain.optimized_cost, explain.applied, explain.iterations
    );
    print!("{}", explain.optimized_plan);
    let n = engine.query_doc(DocId(0), query).expect("run").len();
    println!("-- result size: {n}\n");
}

/// Fig 8: the optimization *sequence* — each applied transformation with
/// the plan it produced.
fn trace_figure(fig: &str, query: &str, megabytes: f64) {
    println!("==== {fig} — transformation trace of {query} (~{megabytes} MB)");
    let xml = document(megabytes);
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).expect("load");
    let engine = Engine::new(store);
    let plan = engine.compile(query).expect("compile");
    let outcome = engine.optimize_plan(plan, DocId(0)).expect("optimize");
    for (i, (rule, snapshot)) in outcome.trace.iter().enumerate() {
        println!("-- after transformation {} ({rule}):", i + 1);
        print!("{}", vamana_core::render(snapshot, None));
    }
    println!(
        "-- final cost {} (initial {}), {} iteration(s)\n",
        outcome.final_cost, outcome.initial_cost, outcome.iterations
    );
}

/// Figs 12–16: execution time of one evaluation query across document
/// sizes and engines.
fn sweep_figure(fig: &str, query_idx: usize, sizes: &[f64]) {
    let (label, query) = QUERIES[query_idx];
    println!("==== {fig} — execution time of {label}: {query}");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "size", "VQP-OPT", "VQP", "Jaxen", "Galax", "eXist-SJ", "results"
    );
    println!("csv,{fig},size_mb,vqp_opt_s,vqp_s,jaxen_s,galax_s,exist_sj_s,results");
    for &mb in sizes {
        let xml = document(mb);
        let actual_mb = xml.len() as f64 / 1_048_576.0;
        let lineup = Lineup::build(&xml);
        let outcomes: Vec<Outcome> = lineup
            .engines()
            .iter()
            .map(|e| run_best(*e, query, 1, 2))
            .collect();
        let count = outcomes
            .iter()
            .find_map(|o| match o {
                Outcome::Ok { count, .. } => Some(*count),
                _ => None,
            })
            .unwrap_or(0);
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
            format!("{actual_mb:.1}MB"),
            outcomes[0].cell(),
            outcomes[1].cell(),
            outcomes[2].cell(),
            outcomes[3].cell(),
            outcomes[4].cell(),
            count
        );
        let csv: Vec<String> = outcomes
            .iter()
            .map(|o| {
                o.seconds()
                    .map(|s| format!("{s:.6}"))
                    .unwrap_or_else(|| "".into())
            })
            .collect();
        println!("csv,{fig},{actual_mb:.2},{},{count}", csv.join(","));
    }
    println!();
}

/// The index-only claim measured in pages: how much of the document each
/// plan actually reads, cold-cache, per query.
fn io_fraction(megabytes: f64) {
    println!("==== I/O fraction — pages touched per query (cold cache, ~{megabytes} MB)");
    let xml = document(megabytes);
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).expect("load");
    let total_pages = store.stats().pages as u64;
    let mut engine = Engine::new(store);
    println!(
        "{:<4} {:>14} {:>14} {:>12} (of {} pages)",
        "qry", "VQP-OPT pages", "VQP pages", "results", total_pages
    );
    for (label, query) in QUERIES {
        let mut touched = [0u64; 2];
        let mut results = 0usize;
        for (i, optimize) in [true, false].into_iter().enumerate() {
            engine.options_mut().optimize = optimize;
            engine.store().buffer_pool().clear_cache();
            engine.store().buffer_pool().reset_stats();
            results = engine.query(query).expect("query").len();
            let b = engine.store().stats().buffer;
            touched[i] = b.misses; // cold cache: misses = distinct pages read
        }
        println!(
            "{:<4} {:>8} ({:>4.1}%) {:>8} ({:>4.1}%) {:>12}",
            label,
            touched[0],
            touched[0] as f64 / total_pages as f64 * 100.0,
            touched[1],
            touched[1] as f64 / total_pages as f64 * 100.0,
            results
        );
    }
    println!();
}

/// The "negligible optimization overhead" claim: time spent compiling and
/// optimizing each query vs executing it.
fn overhead(megabytes: f64) {
    println!("==== optimization overhead (~{megabytes} MB document)");
    let xml = document(megabytes);
    let mut store = MassStore::open_memory();
    store.load_xml("auction.xml", &xml).expect("load");
    let engine = Engine::new(store);
    println!(
        "{:<4} {:>14} {:>14} {:>14} {:>10}",
        "qry", "compile", "optimize", "execute(opt)", "ratio"
    );
    for (label, query) in QUERIES {
        let t0 = Instant::now();
        let plan = engine.compile(query).expect("compile");
        let compile = t0.elapsed();
        let t1 = Instant::now();
        let outcome = engine.optimize_plan(plan, DocId(0)).expect("optimize");
        let optimize = t1.elapsed();
        let t2 = Instant::now();
        let _ = engine
            .execute_plan(&outcome.plan, DocId(0))
            .expect("execute");
        let execute = t2.elapsed();
        let ratio = optimize.as_secs_f64() / execute.as_secs_f64().max(1e-12);
        println!(
            "{:<4} {:>14.2?} {:>14.2?} {:>14.2?} {:>9.4}",
            label, compile, optimize, execute, ratio
        );
    }
    println!();
}
