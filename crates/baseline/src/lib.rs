//! # vamana-baseline
//!
//! The comparator engines of the paper's evaluation (§VIII), rebuilt so
//! the experiments can run offline:
//!
//! * [`dom::DomEngine`] — a faithful DOM tree-traversal evaluator in the
//!   style of Jaxen and Galax: the whole document lives in memory and
//!   every step navigates the tree with no index support. Its *Galax
//!   profile* also refuses the sibling axes, which the paper reports as
//!   unsupported in Galax.
//! * [`join::StructuralJoinEngine`] — an eXist-style engine: per-name
//!   element lists with `(start, end, level)` intervals and stack-based
//!   structural merge joins for child/descendant chains; value predicates
//!   fall back to in-memory tree traversal (the behavior the paper blames
//!   for eXist's loss on Q5), and the sibling/following/preceding axes
//!   are unsupported, as the paper reports for eXist.
//!
//! All engines implement [`XPathEngine`], so the benchmark harness can
//! drive VAMANA and the baselines identically.

pub mod dom;
pub mod join;

use std::fmt;

/// Canonical identity of a result node for cross-engine comparison.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeIdentity {
    /// Node name (empty for text nodes).
    pub name: String,
    /// XPath string-value.
    pub value: String,
}

/// Errors shared by the baseline engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The expression did not parse.
    Parse(String),
    /// The engine does not support this axis/construct (mirrors the
    /// feature gaps the paper reports for Galax and eXist).
    Unsupported(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Parse(m) => write!(f, "parse error: {m}"),
            BaselineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// A queryable XPath engine (uniform benchmark interface).
pub trait XPathEngine {
    /// Engine label used in experiment output.
    fn label(&self) -> &str;

    /// Evaluates `xpath` and returns the result-set size.
    fn count(&self, xpath: &str) -> Result<usize, BaselineError>;

    /// Evaluates `xpath` and returns canonical node identities in
    /// document order (correctness cross-checks; slower than `count`).
    fn identities(&self, xpath: &str) -> Result<Vec<NodeIdentity>, BaselineError>;
}
