//! DOM tree-traversal XPath engine (Jaxen / Galax class).
//!
//! The document is fully materialized in memory (the scalability
//! limitation the paper attributes to this engine class) and every
//! location step is evaluated by navigating the tree — no indexes, no
//! statistics, no plan rewriting. The evaluator is nonetheless complete
//! and careful about XPath semantics (document order, per-context
//! positions, reverse axes), because it doubles as the *oracle* for the
//! correctness tests of the optimized VAMANA engine.

use crate::{BaselineError, NodeIdentity, XPathEngine};
use vamana_flex::Axis;
use vamana_xml::{Document, NodeId, NodeKind};
use vamana_xpath::{ast, Expr, LocationPath, NodeTest, Step};

/// Engine profile: which real-world engine's feature gaps to mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomProfile {
    /// Jaxen: full axis support.
    Jaxen,
    /// Galax: the paper reports `following-sibling`/`preceding-sibling`
    /// as unsupported.
    Galax,
}

/// The DOM engine.
pub struct DomEngine {
    doc: Document,
    profile: DomProfile,
    /// Document-order index per arena id (attributes included, right
    /// after their element).
    order: Vec<u32>,
    /// Exclusive end of each node's subtree in document order.
    subtree_end: Vec<u32>,
    /// All node ids in document order.
    doc_order: Vec<NodeId>,
}

/// An XPath value in the DOM engine.
#[derive(Debug, Clone)]
enum DomValue {
    Nodes(Vec<NodeId>),
    Str(String),
    Num(f64),
    Bool(bool),
}

type Result<T> = std::result::Result<T, BaselineError>;

impl DomEngine {
    /// Wraps a parsed document with the full-featured (Jaxen) profile.
    pub fn new(doc: Document) -> Self {
        Self::with_profile(doc, DomProfile::Jaxen)
    }

    /// Wraps a parsed document with an explicit profile.
    pub fn with_profile(doc: Document, profile: DomProfile) -> Self {
        let mut order = vec![0u32; doc.len()];
        let mut subtree_end = vec![0u32; doc.len()];
        let mut doc_order = Vec::with_capacity(doc.len());
        let mut counter = 0u32;
        // Iterative pre-order walk assigning order and subtree extents.
        enum Frame {
            Enter(NodeId),
            Leave(NodeId),
        }
        let mut stack = vec![Frame::Enter(Document::ROOT)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(id) => {
                    order[id.index()] = counter;
                    doc_order.push(id);
                    counter += 1;
                    // Attributes come right after the element itself.
                    for attr in doc.attributes(id) {
                        order[attr.index()] = counter;
                        subtree_end[attr.index()] = counter + 1;
                        doc_order.push(attr);
                        counter += 1;
                    }
                    stack.push(Frame::Leave(id));
                    let kids: Vec<_> = doc.children(id).collect();
                    for k in kids.into_iter().rev() {
                        stack.push(Frame::Enter(k));
                    }
                }
                Frame::Leave(id) => {
                    subtree_end[id.index()] = counter;
                }
            }
        }
        DomEngine {
            doc,
            profile,
            order,
            subtree_end,
            doc_order,
        }
    }

    /// Parses and wraps XML text.
    pub fn from_xml(xml: &str) -> Result<Self> {
        let doc = vamana_xml::parse(xml).map_err(|e| BaselineError::Parse(e.to_string()))?;
        Ok(Self::new(doc))
    }

    /// Parses and wraps XML text with a profile.
    pub fn from_xml_with_profile(xml: &str, profile: DomProfile) -> Result<Self> {
        let doc = vamana_xml::parse(xml).map_err(|e| BaselineError::Parse(e.to_string()))?;
        Ok(Self::with_profile(doc, profile))
    }

    /// The wrapped document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// Evaluates `xpath`, returning node ids in document order.
    pub fn eval(&self, xpath: &str) -> Result<Vec<NodeId>> {
        let expr = vamana_xpath::parse(xpath).map_err(|e| BaselineError::Parse(e.to_string()))?;
        match self.eval_expr(&expr, Document::ROOT, 1, 1)? {
            DomValue::Nodes(ns) => Ok(ns),
            _ => Err(BaselineError::Unsupported(
                "top-level scalar expression".into(),
            )),
        }
    }

    /// Evaluates `xpath` and coerces to a number (e.g. `count(//a)`).
    pub fn eval_number(&self, xpath: &str) -> Result<f64> {
        let expr = vamana_xpath::parse(xpath).map_err(|e| BaselineError::Parse(e.to_string()))?;
        let v = self.eval_expr(&expr, Document::ROOT, 1, 1)?;
        Ok(self.to_number(&v))
    }

    fn sort_dedup(&self, mut nodes: Vec<NodeId>) -> Vec<NodeId> {
        nodes.sort_by_key(|n| self.order[n.index()]);
        nodes.dedup();
        nodes
    }

    // ---- axes -----------------------------------------------------------

    fn axis_nodes(&self, n: NodeId, axis: Axis) -> Result<Vec<NodeId>> {
        if self.profile == DomProfile::Galax
            && matches!(axis, Axis::FollowingSibling | Axis::PrecedingSibling)
        {
            return Err(BaselineError::Unsupported(format!(
                "Galax profile does not support the {axis} axis"
            )));
        }
        let is_attr = self.doc.kind(n).is_attribute();
        Ok(match axis {
            Axis::SelfAxis => vec![n],
            Axis::Child => {
                if is_attr {
                    Vec::new()
                } else {
                    self.doc.children(n).collect()
                }
            }
            Axis::Descendant => {
                if is_attr {
                    Vec::new()
                } else {
                    self.doc.descendants(n).collect()
                }
            }
            Axis::DescendantOrSelf => {
                let mut v = vec![n];
                if !is_attr {
                    v.extend(self.doc.descendants(n));
                }
                v
            }
            Axis::Parent => self.doc.parent(n).into_iter().collect(),
            Axis::Ancestor | Axis::AncestorOrSelf => {
                let mut v = Vec::new();
                if axis == Axis::AncestorOrSelf {
                    v.push(n);
                }
                let mut cur = n;
                while let Some(p) = self.doc.parent(cur) {
                    v.push(p);
                    cur = p;
                }
                v.reverse(); // document order
                v
            }
            Axis::FollowingSibling => {
                if is_attr {
                    Vec::new()
                } else {
                    let mut v = Vec::new();
                    let mut cur = n;
                    while let Some(s) = self.doc.next_sibling(cur) {
                        v.push(s);
                        cur = s;
                    }
                    v
                }
            }
            Axis::PrecedingSibling => {
                if is_attr {
                    Vec::new()
                } else {
                    let mut v = Vec::new();
                    let mut cur = n;
                    while let Some(s) = self.doc.prev_sibling(cur) {
                        v.push(s);
                        cur = s;
                    }
                    v.reverse();
                    v
                }
            }
            Axis::Following => {
                let end = self.subtree_end[n.index()] as usize;
                self.doc_order[end..]
                    .iter()
                    .copied()
                    .filter(|m| !self.doc.kind(*m).is_attribute())
                    .collect()
            }
            Axis::Preceding => {
                let my_order = self.order[n.index()] as usize;
                self.doc_order[..my_order]
                    .iter()
                    .copied()
                    .filter(|m| {
                        !self.doc.kind(*m).is_attribute()
                            && self.subtree_end[m.index()] <= my_order as u32
                    })
                    .collect()
            }
            Axis::Attribute => {
                if is_attr {
                    Vec::new()
                } else {
                    self.doc.attributes(n).collect()
                }
            }
            Axis::Namespace => {
                // Synthesize from in-scope xmlns declarations.
                let mut seen = Vec::new();
                let mut out = Vec::new();
                let mut cur = Some(n);
                while let Some(c) = cur {
                    for a in self.doc.attributes(c) {
                        let name = self.doc.name(a).unwrap_or("");
                        if (name == "xmlns" || name.starts_with("xmlns:"))
                            && !seen.contains(&name.to_string())
                        {
                            seen.push(name.to_string());
                            out.push(a);
                        }
                    }
                    cur = self.doc.parent(c);
                }
                self.sort_dedup(out)
            }
        })
    }

    fn test_matches(&self, n: NodeId, axis: Axis, test: &NodeTest) -> bool {
        let kind = self.doc.kind(n);
        match test {
            NodeTest::Name(name) => {
                let principal = if axis == Axis::Attribute || axis == Axis::Namespace {
                    kind.is_attribute()
                } else {
                    kind.is_element()
                };
                principal && self.doc.name(n) == Some(&**name)
            }
            NodeTest::Wildcard => {
                if axis == Axis::Attribute || axis == Axis::Namespace {
                    kind.is_attribute()
                } else {
                    kind.is_element()
                }
            }
            NodeTest::NsWildcard(prefix) => {
                kind.is_element()
                    && self
                        .doc
                        .name(n)
                        .is_some_and(|name| name.starts_with(&format!("{prefix}:")))
            }
            NodeTest::Text => kind.is_text(),
            NodeTest::Node => !matches!(kind, NodeKind::Document),
            NodeTest::Comment => matches!(kind, NodeKind::Comment { .. }),
            NodeTest::Pi(target) => match kind {
                NodeKind::ProcessingInstruction { target: t, .. } => {
                    target.as_ref().is_none_or(|want| **t == **want)
                }
                _ => false,
            },
        }
    }

    // ---- paths ----------------------------------------------------------

    fn eval_location_path(&self, path: &LocationPath, ctx: NodeId) -> Result<Vec<NodeId>> {
        let mut current: Vec<NodeId> = if path.absolute {
            vec![Document::ROOT]
        } else {
            vec![ctx]
        };
        for step in &path.steps {
            let mut next = Vec::new();
            for c in &current {
                next.extend(self.eval_step(step, *c)?);
            }
            current = self.sort_dedup(next);
        }
        Ok(current)
    }

    /// Evaluates one location step from a single context node: axis,
    /// node test, then predicates with per-group positions. Exposed so
    /// the `EXPLAIN ANALYZE` oracle tests can replay a path step by step
    /// *without* the between-step duplicate elimination
    /// [`eval`](DomEngine::eval) performs — matching what the pipelined
    /// executor's per-operator counters see.
    pub fn eval_step(&self, step: &Step, ctx: NodeId) -> Result<Vec<NodeId>> {
        let mut group: Vec<NodeId> = self
            .axis_nodes(ctx, step.axis)?
            .into_iter()
            .filter(|n| self.test_matches(*n, step.axis, &step.test))
            .collect();
        for pred in &step.predicates {
            group = self.apply_predicate(pred, group, step.axis.is_reverse())?;
        }
        Ok(group)
    }

    fn apply_predicate(
        &self,
        pred: &Expr,
        group: Vec<NodeId>,
        reverse: bool,
    ) -> Result<Vec<NodeId>> {
        let size = group.len();
        let mut out = Vec::with_capacity(size);
        for (i, n) in group.into_iter().enumerate() {
            let pos = if reverse { size - i } else { i + 1 };
            let v = self.eval_expr(pred, n, pos, size)?;
            let keep = match v {
                DomValue::Num(x) => pos as f64 == x,
                other => self.to_boolean(&other),
            };
            if keep {
                out.push(n);
            }
        }
        Ok(out)
    }

    // ---- expressions ------------------------------------------------------

    fn eval_expr(&self, expr: &Expr, ctx: NodeId, pos: usize, size: usize) -> Result<DomValue> {
        Ok(match expr {
            Expr::Path(p) => DomValue::Nodes(self.eval_location_path(p, ctx)?),
            Expr::Filter {
                primary,
                predicates,
                path,
            } => {
                let DomValue::Nodes(mut nodes) = self.eval_expr(primary, ctx, pos, size)? else {
                    return Err(BaselineError::Unsupported(
                        "filtering a non-node-set".into(),
                    ));
                };
                for p in predicates {
                    nodes = self.apply_predicate(p, nodes, false)?;
                }
                if let Some(rel) = path {
                    let mut out = Vec::new();
                    for n in nodes {
                        out.extend(self.eval_location_path(rel, n)?);
                    }
                    nodes = self.sort_dedup(out);
                }
                DomValue::Nodes(nodes)
            }
            Expr::Or(a, b) => DomValue::Bool(
                self.to_boolean(&self.eval_expr(a, ctx, pos, size)?)
                    || self.to_boolean(&self.eval_expr(b, ctx, pos, size)?),
            ),
            Expr::And(a, b) => DomValue::Bool(
                self.to_boolean(&self.eval_expr(a, ctx, pos, size)?)
                    && self.to_boolean(&self.eval_expr(b, ctx, pos, size)?),
            ),
            Expr::Equality(op, a, b) => {
                let l = self.eval_expr(a, ctx, pos, size)?;
                let r = self.eval_expr(b, ctx, pos, size)?;
                DomValue::Bool(self.compare_eq(*op == ast::EqOp::Eq, &l, &r))
            }
            Expr::Relational(op, a, b) => {
                let l = self.eval_expr(a, ctx, pos, size)?;
                let r = self.eval_expr(b, ctx, pos, size)?;
                DomValue::Bool(self.compare_rel(*op, &l, &r))
            }
            Expr::Arithmetic(op, a, b) => {
                let l = self.to_number(&self.eval_expr(a, ctx, pos, size)?);
                let r = self.to_number(&self.eval_expr(b, ctx, pos, size)?);
                DomValue::Num(match op {
                    ast::ArithOp::Add => l + r,
                    ast::ArithOp::Sub => l - r,
                    ast::ArithOp::Mul => l * r,
                    ast::ArithOp::Div => l / r,
                    ast::ArithOp::Mod => l % r,
                })
            }
            Expr::Neg(e) => DomValue::Num(-self.to_number(&self.eval_expr(e, ctx, pos, size)?)),
            Expr::Union(a, b) => {
                let DomValue::Nodes(mut l) = self.eval_expr(a, ctx, pos, size)? else {
                    return Err(BaselineError::Unsupported("union of non-node-sets".into()));
                };
                let DomValue::Nodes(r) = self.eval_expr(b, ctx, pos, size)? else {
                    return Err(BaselineError::Unsupported("union of non-node-sets".into()));
                };
                l.extend(r);
                DomValue::Nodes(self.sort_dedup(l))
            }
            Expr::Literal(s) => DomValue::Str(s.to_string()),
            Expr::Number(n) => DomValue::Num(*n),
            Expr::Var(v) => return Err(BaselineError::Unsupported(format!("variable ${v}"))),
            Expr::FunctionCall(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_expr(a, ctx, pos, size)?);
                }
                self.call(name, &vals, ctx, pos, size)?
            }
        })
    }

    // ---- coercions --------------------------------------------------------

    fn string_value(&self, n: NodeId) -> String {
        self.doc.string_value(n)
    }

    fn to_boolean(&self, v: &DomValue) -> bool {
        match v {
            DomValue::Nodes(ns) => !ns.is_empty(),
            DomValue::Str(s) => !s.is_empty(),
            DomValue::Num(n) => *n != 0.0 && !n.is_nan(),
            DomValue::Bool(b) => *b,
        }
    }

    fn to_string_v(&self, v: &DomValue) -> String {
        match v {
            DomValue::Nodes(ns) => ns
                .first()
                .map(|n| self.string_value(*n))
                .unwrap_or_default(),
            DomValue::Str(s) => s.clone(),
            DomValue::Num(n) => {
                if *n == n.trunc() && n.abs() < 1e15 && !n.is_nan() {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            DomValue::Bool(b) => b.to_string(),
        }
    }

    fn to_number(&self, v: &DomValue) -> f64 {
        match v {
            DomValue::Num(n) => *n,
            DomValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => self.to_string_v(other).trim().parse().unwrap_or(f64::NAN),
        }
    }

    fn compare_eq(&self, eq: bool, l: &DomValue, r: &DomValue) -> bool {
        match (l, r) {
            (DomValue::Nodes(ls), DomValue::Nodes(rs)) => {
                for a in ls {
                    let av = self.string_value(*a);
                    for b in rs {
                        if (av == self.string_value(*b)) == eq {
                            return true;
                        }
                    }
                }
                false
            }
            (DomValue::Nodes(ns), other) | (other, DomValue::Nodes(ns)) => match other {
                DomValue::Bool(b) => (ns.is_empty() != *b) == eq,
                DomValue::Num(x) => ns.iter().any(|n| {
                    (self
                        .string_value(*n)
                        .trim()
                        .parse::<f64>()
                        .unwrap_or(f64::NAN)
                        == *x)
                        == eq
                }),
                DomValue::Str(s) => ns.iter().any(|n| (self.string_value(*n) == *s) == eq),
                DomValue::Nodes(_) => unreachable!(),
            },
            (a, b) => {
                if matches!(a, DomValue::Bool(_)) || matches!(b, DomValue::Bool(_)) {
                    (self.to_boolean(a) == self.to_boolean(b)) == eq
                } else if matches!(a, DomValue::Num(_)) || matches!(b, DomValue::Num(_)) {
                    (self.to_number(a) == self.to_number(b)) == eq
                } else {
                    (self.to_string_v(a) == self.to_string_v(b)) == eq
                }
            }
        }
    }

    fn compare_rel(&self, op: ast::RelOp, l: &DomValue, r: &DomValue) -> bool {
        let cmp = |a: f64, b: f64| match op {
            ast::RelOp::Lt => a < b,
            ast::RelOp::Le => a <= b,
            ast::RelOp::Gt => a > b,
            ast::RelOp::Ge => a >= b,
        };
        match (l, r) {
            (DomValue::Nodes(ls), DomValue::Nodes(rs)) => ls.iter().any(|a| {
                let av = self
                    .string_value(*a)
                    .trim()
                    .parse::<f64>()
                    .unwrap_or(f64::NAN);
                rs.iter().any(|b| {
                    cmp(
                        av,
                        self.string_value(*b)
                            .trim()
                            .parse::<f64>()
                            .unwrap_or(f64::NAN),
                    )
                })
            }),
            (DomValue::Nodes(ns), other) => {
                let rv = self.to_number(other);
                ns.iter().any(|n| {
                    cmp(
                        self.string_value(*n)
                            .trim()
                            .parse::<f64>()
                            .unwrap_or(f64::NAN),
                        rv,
                    )
                })
            }
            (other, DomValue::Nodes(ns)) => {
                let lv = self.to_number(other);
                ns.iter().any(|n| {
                    cmp(
                        lv,
                        self.string_value(*n)
                            .trim()
                            .parse::<f64>()
                            .unwrap_or(f64::NAN),
                    )
                })
            }
            (a, b) => cmp(self.to_number(a), self.to_number(b)),
        }
    }

    // ---- functions ----------------------------------------------------------

    fn call(
        &self,
        name: &str,
        args: &[DomValue],
        ctx: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<DomValue> {
        let s0 = |args: &[DomValue]| match args.first() {
            Some(v) => self.to_string_v(v),
            None => self.string_value(ctx),
        };
        Ok(match name {
            "position" => DomValue::Num(pos as f64),
            "last" => DomValue::Num(size as f64),
            "count" => match args.first() {
                Some(DomValue::Nodes(ns)) => DomValue::Num(ns.len() as f64),
                _ => {
                    return Err(BaselineError::Unsupported(
                        "count() needs a node-set".into(),
                    ))
                }
            },
            "not" => DomValue::Bool(!args.first().map(|v| self.to_boolean(v)).unwrap_or(false)),
            "true" => DomValue::Bool(true),
            "false" => DomValue::Bool(false),
            "boolean" => DomValue::Bool(args.first().map(|v| self.to_boolean(v)).unwrap_or(false)),
            "string" => DomValue::Str(s0(args)),
            "number" => DomValue::Num(s0(args).trim().parse().unwrap_or(f64::NAN)),
            "concat" => DomValue::Str(args.iter().map(|a| self.to_string_v(a)).collect::<String>()),
            "contains" => DomValue::Bool(
                self.to_string_v(&args[0])
                    .contains(&self.to_string_v(&args[1])),
            ),
            "starts-with" => DomValue::Bool(
                self.to_string_v(&args[0])
                    .starts_with(&self.to_string_v(&args[1])),
            ),
            "string-length" => DomValue::Num(s0(args).chars().count() as f64),
            "normalize-space" => {
                DomValue::Str(s0(args).split_whitespace().collect::<Vec<_>>().join(" "))
            }
            "name" | "local-name" => {
                let full = match args.first() {
                    Some(DomValue::Nodes(ns)) => ns
                        .first()
                        .and_then(|n| self.doc.name(*n))
                        .unwrap_or("")
                        .to_string(),
                    None => self.doc.name(ctx).unwrap_or("").to_string(),
                    _ => return Err(BaselineError::Unsupported("name() needs a node-set".into())),
                };
                if name == "local-name" {
                    DomValue::Str(full.rsplit(':').next().unwrap_or("").to_string())
                } else {
                    DomValue::Str(full)
                }
            }
            "sum" => match args.first() {
                Some(DomValue::Nodes(ns)) => DomValue::Num(
                    ns.iter()
                        .map(|n| {
                            self.string_value(*n)
                                .trim()
                                .parse::<f64>()
                                .unwrap_or(f64::NAN)
                        })
                        .sum(),
                ),
                _ => return Err(BaselineError::Unsupported("sum() needs a node-set".into())),
            },
            "floor" => DomValue::Num(self.to_number(&args[0]).floor()),
            "ceiling" => DomValue::Num(self.to_number(&args[0]).ceil()),
            "round" => DomValue::Num(self.to_number(&args[0]).round()),
            other => return Err(BaselineError::Unsupported(format!("function {other}()"))),
        })
    }

    /// Evaluates a predicate expression at `node` with explicit dynamic
    /// context. Exposed for the structural-join engine's DOM fallback.
    pub fn predicate_holds(
        &self,
        pred: &Expr,
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<bool> {
        let v = self.eval_expr(pred, node, pos, size)?;
        Ok(match v {
            DomValue::Num(x) => pos as f64 == x,
            other => self.to_boolean(&other),
        })
    }

    /// Canonical identity of a node (for cross-engine comparison).
    pub fn identity(&self, n: NodeId) -> NodeIdentity {
        NodeIdentity {
            name: self.doc.name(n).unwrap_or("").to_string(),
            value: self.string_value(n),
        }
    }
}

impl XPathEngine for DomEngine {
    fn label(&self) -> &str {
        match self.profile {
            DomProfile::Jaxen => "dom-jaxen",
            DomProfile::Galax => "dom-galax",
        }
    }

    fn count(&self, xpath: &str) -> Result<usize> {
        Ok(self.eval(xpath)?.len())
    }

    fn identities(&self, xpath: &str) -> Result<Vec<NodeIdentity>> {
        Ok(self
            .eval(xpath)?
            .into_iter()
            .map(|n| self.identity(n))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<site><people>
      <person id="p0"><name>Ann</name><emailaddress>a@x</emailaddress>
        <address><city>Monroe</city><province>Vermont</province></address></person>
      <person id="p1"><name>Bob</name>
        <watches><watch open_auction="oa1"/><watch open_auction="oa2"/></watches></person>
    </people>
    <open_auctions><open_auction><itemref/><price>12</price></open_auction></open_auctions>
    </site>"#;

    fn engine() -> DomEngine {
        DomEngine::from_xml(DOC).unwrap()
    }

    #[test]
    fn simple_paths() {
        let e = engine();
        assert_eq!(e.count("//person").unwrap(), 2);
        assert_eq!(e.count("//person/name").unwrap(), 2);
        assert_eq!(e.count("/site/people/person").unwrap(), 2);
        assert_eq!(e.count("/site//watch").unwrap(), 2);
        assert_eq!(e.count("//nothing").unwrap(), 0);
    }

    #[test]
    fn paper_queries() {
        let e = engine();
        assert_eq!(e.count("//person/address").unwrap(), 1);
        assert_eq!(e.count("//watches/watch/ancestor::person").unwrap(), 1);
        assert_eq!(
            e.count("/descendant::name/parent::*/self::person/address")
                .unwrap(),
            1
        );
        assert_eq!(
            e.count("//itemref/following-sibling::price/parent::*")
                .unwrap(),
            1
        );
        assert_eq!(
            e.count("//province[text()='Vermont']/ancestor::person")
                .unwrap(),
            1
        );
    }

    #[test]
    fn predicates_and_positions() {
        let e = engine();
        assert_eq!(e.count("//person[name='Ann']").unwrap(), 1);
        assert_eq!(e.count("//person[1]").unwrap(), 1);
        assert_eq!(e.count("//watch[2]").unwrap(), 1);
        assert_eq!(e.count("//person[position()=last()]").unwrap(), 1);
        assert_eq!(e.count("//person[@id='p1']").unwrap(), 1);
        assert_eq!(e.count("//person[watches]").unwrap(), 1);
        assert_eq!(e.count("//price[. > 10]").unwrap(), 1);
        assert_eq!(e.count("//price[. > 20]").unwrap(), 0);
    }

    #[test]
    fn reverse_axis_positions_count_from_context() {
        let e = engine();
        // ancestor::*[1] is the parent.
        let ids = e.identities("//city/ancestor::*[1]").unwrap();
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].name, "address");
    }

    #[test]
    fn results_in_document_order() {
        let e = engine();
        let ids = e.identities("//name | //price").unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0].value, "Ann");
        assert_eq!(ids[2].value, "12");
    }

    #[test]
    fn galax_profile_rejects_sibling_axes() {
        let e = DomEngine::from_xml_with_profile(DOC, DomProfile::Galax).unwrap();
        assert!(matches!(
            e.count("//itemref/following-sibling::price"),
            Err(BaselineError::Unsupported(_))
        ));
        // Everything else still works.
        assert_eq!(e.count("//person").unwrap(), 2);
    }

    #[test]
    fn functions_work_in_predicates() {
        let e = engine();
        assert_eq!(e.count("//person[count(watches/watch) = 2]").unwrap(), 1);
        assert_eq!(e.count("//person[contains(name, 'nn')]").unwrap(), 1);
        assert_eq!(e.count("//person[starts-with(name, 'B')]").unwrap(), 1);
        assert_eq!(e.count("//person[not(address)]").unwrap(), 1);
        assert_eq!(e.eval_number("count(//watch)").unwrap(), 2.0);
        assert_eq!(e.eval_number("sum(//price)").unwrap(), 12.0);
    }

    #[test]
    fn following_and_preceding() {
        let e = engine();
        // Everything after person[1]'s subtree that is a price.
        assert_eq!(e.count("//person[1]/following::price").unwrap(), 1);
        // preceding excludes ancestors.
        let ids = e.identities("//price/preceding::person").unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(e.count("//price/ancestor::open_auctions").unwrap(), 1);
    }

    #[test]
    fn attribute_axis_and_tests() {
        let e = engine();
        assert_eq!(e.count("//watch/@open_auction").unwrap(), 2);
        assert_eq!(e.count("//@id").unwrap(), 2);
        assert_eq!(e.count("//watch/@*").unwrap(), 2);
        let ids = e.identities("//person[1]/@id").unwrap();
        assert_eq!(ids[0].value, "p0");
    }

    #[test]
    fn filter_expressions() {
        let e = engine();
        assert_eq!(e.count("(//person)[1]").unwrap(), 1);
        let ids = e.identities("(//person)[2]/name").unwrap();
        assert_eq!(ids[0].value, "Bob");
    }

    #[test]
    fn scalar_top_level_is_error_via_eval() {
        let e = engine();
        assert!(e.eval("1 + 1").is_err());
        assert_eq!(e.eval_number("1 + 1").unwrap(), 2.0);
    }
}
