//! Structural-join XPath engine (eXist / TIMBER class).
//!
//! Elements are indexed by name as `(start, end, level)` intervals from a
//! single numbering pass. Chains of `child`/`descendant` steps with name
//! tests are evaluated bottom-up with stack-based structural merge joins
//! (Stack-Tree style) over whole per-name lists — no context pruning, the
//! very behavior the paper contrasts with VAMANA's index-driven pipeline:
//!
//! * every step touches its *entire* name list, regardless of how
//!   selective the surrounding query is;
//! * value predicates leave the index and traverse the in-memory tree
//!   (eXist's documented fallback, which the paper blames for its Q5
//!   loss);
//! * the sibling, `following` and `preceding` axes are unsupported, as
//!   the paper reports for eXist.

use crate::dom::DomEngine;
use crate::{BaselineError, NodeIdentity, XPathEngine};
use std::collections::HashMap;
use vamana_flex::Axis;
use vamana_xml::{Document, NodeId};
use vamana_xpath::{Expr, LocationPath, NodeTest, Step};

/// One element occurrence in the interval index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Pre-order start number.
    pub start: u32,
    /// Exclusive end of the subtree.
    pub end: u32,
    /// Depth (document element = 1).
    pub level: u32,
    /// Back-pointer into the DOM (predicate fallback).
    pub node: NodeId,
}

type Result<T> = std::result::Result<T, BaselineError>;

/// The structural-join engine.
pub struct StructuralJoinEngine {
    /// DOM fallback for predicates and as the node store.
    dom: DomEngine,
    /// name → intervals sorted by `start`.
    lists: HashMap<Box<str>, Vec<Interval>>,
    /// Interval of the document root element(s)' parent (the document),
    /// used as the initial context.
    doc_interval: Interval,
}

impl StructuralJoinEngine {
    /// Builds the interval index over a parsed document.
    pub fn new(doc: Document) -> Self {
        let dom = DomEngine::new(doc);
        let doc_ref = dom.document();
        let mut lists: HashMap<Box<str>, Vec<Interval>> = HashMap::new();
        let mut counter = 1u32;

        // Iterative numbering walk over elements only.
        enum Frame {
            Enter(NodeId, u32),
            Leave(usize),
        }
        let mut intervals: Vec<(Box<str>, Interval)> = Vec::new();
        let mut stack: Vec<Frame> = doc_ref
            .children(Document::ROOT)
            .filter(|c| doc_ref.kind(*c).is_element())
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .map(|c| Frame::Enter(c, 1))
            .collect();
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(id, level) => {
                    let name: Box<str> = doc_ref.name(id).unwrap_or("").into();
                    let idx = intervals.len();
                    intervals.push((
                        name,
                        Interval {
                            start: counter,
                            end: 0,
                            level,
                            node: id,
                        },
                    ));
                    counter += 1;
                    stack.push(Frame::Leave(idx));
                    let kids: Vec<_> = doc_ref
                        .children(id)
                        .filter(|c| doc_ref.kind(*c).is_element())
                        .collect();
                    for k in kids.into_iter().rev() {
                        stack.push(Frame::Enter(k, level + 1));
                    }
                }
                Frame::Leave(idx) => {
                    intervals[idx].1.end = counter;
                    counter += 1;
                }
            }
        }
        for (name, iv) in intervals {
            lists.entry(name).or_default().push(iv);
        }
        for list in lists.values_mut() {
            list.sort_by_key(|iv| iv.start);
        }
        let doc_interval = Interval {
            start: 0,
            end: counter + 1,
            level: 0,
            node: Document::ROOT,
        };
        StructuralJoinEngine {
            dom,
            lists,
            doc_interval,
        }
    }

    /// Parses XML text and builds the engine.
    pub fn from_xml(xml: &str) -> Result<Self> {
        let doc = vamana_xml::parse(xml).map_err(|e| BaselineError::Parse(e.to_string()))?;
        Ok(Self::new(doc))
    }

    /// All intervals for `name` (empty slice if absent).
    pub fn name_list(&self, name: &str) -> &[Interval] {
        self.lists.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Stack-based ancestor/descendant (or parent/child) structural merge
    /// join: returns the descendants from `descendants` that have an
    /// ancestor (resp. parent) in `ancestors`.
    ///
    /// Both inputs must be sorted by `start`; output is sorted by `start`.
    pub fn structural_join(
        ancestors: &[Interval],
        descendants: &[Interval],
        parent_child_only: bool,
    ) -> Vec<Interval> {
        let mut out = Vec::new();
        let mut stack: Vec<Interval> = Vec::new();
        let mut ai = 0usize;
        let mut di = 0usize;
        while di < descendants.len() {
            let d = descendants[di];
            // Push every ancestor starting before d.
            while ai < ancestors.len() && ancestors[ai].start < d.start {
                let a = ancestors[ai];
                while let Some(top) = stack.last() {
                    if top.end < a.start {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                stack.push(a);
                ai += 1;
            }
            // Pop ancestors that ended before d.
            while let Some(top) = stack.last() {
                if top.end < d.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            let matched = if parent_child_only {
                stack
                    .last()
                    .is_some_and(|a| a.start < d.start && d.end < a.end && d.level == a.level + 1)
            } else {
                stack.iter().any(|a| a.start < d.start && d.end < a.end)
            };
            if matched {
                out.push(d);
            }
            di += 1;
        }
        out
    }

    /// Ancestor-direction join: the ancestors from `ancestors` that
    /// contain at least one interval of `descendants`.
    pub fn ancestor_join(ancestors: &[Interval], descendants: &[Interval]) -> Vec<Interval> {
        let mut out = Vec::new();
        for a in ancestors {
            // Binary search for a descendant starting inside (a.start, a.end).
            let lo = descendants.partition_point(|d| d.start <= a.start);
            if descendants.get(lo).is_some_and(|d| d.end < a.end) {
                out.push(*a);
            }
        }
        out
    }

    fn test_name(step: &Step) -> Result<&str> {
        match &step.test {
            NodeTest::Name(n) => Ok(n),
            other => Err(BaselineError::Unsupported(format!(
                "structural joins need name tests, got {other}"
            ))),
        }
    }

    /// Evaluates a location path with joins where possible, falling back
    /// to DOM traversal for predicates and for non-join axes within the
    /// supported set.
    fn eval_path(&self, path: &LocationPath) -> Result<Vec<Interval>> {
        let mut current: Vec<Interval> = vec![self.doc_interval];
        let mut at_root = true;
        for step in &path.steps {
            current = self.eval_step(step, &current, at_root)?;
            at_root = false;
        }
        Ok(current)
    }

    fn eval_step(&self, step: &Step, ctx: &[Interval], at_root: bool) -> Result<Vec<Interval>> {
        let mut result = match step.axis {
            Axis::Child | Axis::Descendant => {
                let name = Self::test_name(step)?;
                let list = self.name_list(name);
                if at_root && ctx.len() == 1 && ctx[0].node == Document::ROOT {
                    // Joining against the document interval: everything
                    // qualifies for descendant; children are level 1.
                    match step.axis {
                        Axis::Descendant => list.to_vec(),
                        _ => list.iter().copied().filter(|iv| iv.level == 1).collect(),
                    }
                } else {
                    Self::structural_join(ctx, list, step.axis == Axis::Child)
                }
            }
            Axis::DescendantOrSelf => {
                if matches!(step.test, NodeTest::Node) {
                    // The `//` helper step: keep contexts, mark that the
                    // next step joins on descendant. Emulate by expanding
                    // to self ∪ descendants lazily: we simply return the
                    // context and let the following child-join behave as
                    // a descendant join by widening levels — instead, the
                    // cheap correct route: collect all element intervals
                    // inside each context.
                    let mut out: Vec<Interval> = Vec::new();
                    for name_list in self.lists.values() {
                        for iv in name_list {
                            if ctx.iter().any(|c| {
                                (c.start < iv.start && iv.end < c.end)
                                    || (c.start == iv.start && c.end == iv.end)
                            }) {
                                out.push(*iv);
                            }
                        }
                    }
                    out.extend(ctx.iter().copied().filter(|c| c.node == Document::ROOT));
                    out.sort_by_key(|iv| iv.start);
                    out.dedup();
                    out
                } else {
                    let name = Self::test_name(step)?;
                    let list = self.name_list(name);
                    let mut out = Self::structural_join(ctx, list, false);
                    out.extend(
                        ctx.iter()
                            .copied()
                            .filter(|c| list.iter().any(|iv| iv.start == c.start)),
                    );
                    out.sort_by_key(|iv| iv.start);
                    out.dedup();
                    out
                }
            }
            Axis::Ancestor => {
                let name = Self::test_name(step)?;
                let list = self.name_list(name);
                Self::ancestor_join(list, ctx)
            }
            Axis::Parent => {
                let name = Self::test_name(step)?;
                let list = self.name_list(name);
                // parents = ancestors one level up
                let mut out = Vec::new();
                for a in list {
                    if ctx
                        .iter()
                        .any(|d| a.start < d.start && d.end < a.end && d.level == a.level + 1)
                    {
                        out.push(*a);
                    }
                }
                out
            }
            Axis::SelfAxis => {
                let name = Self::test_name(step);
                match name {
                    Ok(n) => {
                        let list = self.name_list(n);
                        ctx.iter()
                            .copied()
                            .filter(|c| list.iter().any(|iv| iv.start == c.start))
                            .collect()
                    }
                    Err(_) if matches!(step.test, NodeTest::Node | NodeTest::Wildcard) => {
                        ctx.to_vec()
                    }
                    Err(e) => return Err(e),
                }
            }
            other => {
                return Err(BaselineError::Unsupported(format!(
                    "the {other} axis is not supported by the structural-join engine \
                     (matching the axis gaps the paper reports for eXist)"
                )))
            }
        };
        // Predicates: leave the index, traverse the DOM (the eXist
        // behavior the paper describes).
        for pred in &step.predicates {
            result = self.apply_predicate_via_dom(pred, result)?;
        }
        Ok(result)
    }

    fn apply_predicate_via_dom(&self, pred: &Expr, group: Vec<Interval>) -> Result<Vec<Interval>> {
        let mut out = Vec::new();
        let size = group.len();
        for (i, iv) in group.into_iter().enumerate() {
            if self.dom_predicate_holds(pred, iv.node, i + 1, size)? {
                out.push(iv);
            }
        }
        Ok(out)
    }

    fn dom_predicate_holds(
        &self,
        pred: &Expr,
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<bool> {
        // Leave the index: the DOM evaluator runs the predicate with the
        // join group's dynamic context.
        self.dom.predicate_holds(pred, node, pos, size)
    }

    /// Evaluates `xpath` with the join pipeline.
    pub fn eval(&self, xpath: &str) -> Result<Vec<Interval>> {
        let expr = vamana_xpath::parse(xpath).map_err(|e| BaselineError::Parse(e.to_string()))?;
        match expr {
            Expr::Path(p) => self.eval_path(&p),
            Expr::Union(a, b) => {
                let Expr::Path(pa) = *a else {
                    return Err(BaselineError::Unsupported("non-path union".into()));
                };
                let Expr::Path(pb) = *b else {
                    return Err(BaselineError::Unsupported("non-path union".into()));
                };
                let mut l = self.eval_path(&pa)?;
                l.extend(self.eval_path(&pb)?);
                l.sort_by_key(|iv| iv.start);
                l.dedup();
                Ok(l)
            }
            _ => Err(BaselineError::Unsupported(
                "top-level scalar expression".into(),
            )),
        }
    }
}

impl XPathEngine for StructuralJoinEngine {
    fn label(&self) -> &str {
        "join-exist"
    }

    fn count(&self, xpath: &str) -> Result<usize> {
        Ok(self.eval(xpath)?.len())
    }

    fn identities(&self, xpath: &str) -> Result<Vec<NodeIdentity>> {
        Ok(self
            .eval(xpath)?
            .into_iter()
            .map(|iv| self.dom.identity(iv.node))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<site><people>
      <person id="p0"><name>Ann</name>
        <address><city>Monroe</city><province>Vermont</province></address></person>
      <person id="p1"><name>Bob</name>
        <watches><watch/><watch/></watches></person>
    </people>
    <open_auctions><open_auction><itemref/><price>12</price></open_auction></open_auctions>
    </site>"#;

    fn engine() -> StructuralJoinEngine {
        StructuralJoinEngine::from_xml(DOC).unwrap()
    }

    #[test]
    fn name_lists_are_sorted() {
        let e = engine();
        let persons = e.name_list("person");
        assert_eq!(persons.len(), 2);
        assert!(persons[0].start < persons[1].start);
        assert!(persons[0].end < persons[1].start); // siblings don't nest
    }

    #[test]
    fn descendant_join() {
        let e = engine();
        assert_eq!(e.count("//person").unwrap(), 2);
        assert_eq!(e.count("//people//watch").unwrap(), 2);
        assert_eq!(e.count("//open_auctions//watch").unwrap(), 0);
    }

    #[test]
    fn child_join_checks_levels() {
        let e = engine();
        assert_eq!(e.count("/site/people/person").unwrap(), 2);
        assert_eq!(e.count("/site/person").unwrap(), 0); // not a child
        assert_eq!(e.count("//person/address/city").unwrap(), 1);
    }

    #[test]
    fn ancestor_join_works() {
        let e = engine();
        assert_eq!(e.count("//watch/ancestor::person").unwrap(), 1);
        assert_eq!(e.count("//city/ancestor::site").unwrap(), 1);
    }

    #[test]
    fn parent_step() {
        let e = engine();
        assert_eq!(e.count("//city/parent::address").unwrap(), 1);
        assert_eq!(e.count("//city/parent::person").unwrap(), 0);
    }

    #[test]
    fn predicates_fall_back_to_dom() {
        let e = engine();
        assert_eq!(e.count("//person[name='Ann']").unwrap(), 1);
        assert_eq!(
            e.count("//province[text()='Vermont']/ancestor::person")
                .unwrap(),
            1
        );
        assert_eq!(e.count("//person[@id='p1']").unwrap(), 1);
    }

    #[test]
    fn sibling_axes_unsupported_like_exist() {
        let e = engine();
        assert!(matches!(
            e.count("//itemref/following-sibling::price"),
            Err(BaselineError::Unsupported(_))
        ));
        assert!(matches!(
            e.count("//price/preceding-sibling::itemref"),
            Err(BaselineError::Unsupported(_))
        ));
        assert!(matches!(
            e.count("//price/following::person"),
            Err(BaselineError::Unsupported(_))
        ));
    }

    #[test]
    fn structural_join_unit() {
        // Hand-built intervals: a(1..10){ b(2..5){ c(3..4) } b(6..9){} }
        let a = Interval {
            start: 1,
            end: 10,
            level: 1,
            node: Document::ROOT,
        };
        let b1 = Interval {
            start: 2,
            end: 5,
            level: 2,
            node: Document::ROOT,
        };
        let c = Interval {
            start: 3,
            end: 4,
            level: 3,
            node: Document::ROOT,
        };
        let b2 = Interval {
            start: 6,
            end: 9,
            level: 2,
            node: Document::ROOT,
        };
        let descendants = StructuralJoinEngine::structural_join(&[a], &[b1, c, b2], false);
        assert_eq!(descendants.len(), 3);
        let children = StructuralJoinEngine::structural_join(&[a], &[b1, c, b2], true);
        assert_eq!(children.len(), 2); // c is not a child of a
        let anc = StructuralJoinEngine::ancestor_join(&[a, b2], &[c]);
        assert_eq!(anc.len(), 1); // only a contains c
    }

    #[test]
    fn identities_match_dom_for_join_queries() {
        let e = engine();
        let dom = DomEngine::from_xml(DOC).unwrap();
        for q in [
            "//person",
            "//person/address",
            "//watch/ancestor::person",
            "//city/parent::address",
            "//person[name='Ann']",
            "//people//watch",
        ] {
            assert_eq!(e.identities(q).unwrap(), dom.identities(q).unwrap(), "{q}");
        }
    }
}
