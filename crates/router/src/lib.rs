//! # vamana-router
//!
//! The sharded front tier: speaks the VAMANA line protocol to clients
//! and fans requests out to a configured topology of primaries and
//! read replicas.
//!
//! - **Routing** — single-document verbs (`QUERY DOC`, `EVAL`,
//!   `EXPLAIN`, `ANALYZE`, `INSERT`, `DELETE`, `LOADXML`/`LOAD`) go to
//!   the shard that owns the document: existing documents by registry,
//!   new ones by consistent hashing on the name (see [`ring`]).
//! - **Read load balancing** — reads rotate across the owning shard's
//!   replicas, bounded by [`RouterConfig::max_lag`]: a replica more
//!   than `max_lag` frames behind its primary (computed router-side
//!   from health probes) is demoted past the primary in the candidate
//!   order.
//! - **Scatter-gather** — a cross-document `QUERY` fans out one
//!   `QUERY DOC` per document, shards queried concurrently, and merges
//!   per-document results in global load order — which reproduces
//!   single-store document order exactly (FLEX keys order by load
//!   ordinal; see [`topology::Registry`]).
//! - **Failover** — every backend request retries across the candidate
//!   list with backoff; a failed backend is marked down immediately and
//!   the health monitor ([`health`]) brings it back within one probe
//!   interval.
//! - **Aggregation** — `STATS` sums engine counters across primaries
//!   and adds the router's own `router_*` counters; `TOPOLOGY` reports
//!   per-backend health and document placement.
//!
//! The router runs on the same nonblocking event core as the server
//! ([`vamana_server::event`]): one loop thread owns every client
//! socket, parsing is pipelined, and a worker pool does the backend
//! fan-out.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use vamana_server::event::{self, Completions, ConnId, Dispatch, LineService};
use vamana_server::pool::WorkerPool;

pub mod backend;
pub mod health;
pub mod ring;
pub mod topology;

use topology::{Registry, Topology};

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to serve clients on (port 0 for ephemeral).
    pub listen: String,
    /// The shards: `(primary_addr, replica_addrs)` in shard order.
    pub shards: Vec<(String, Vec<String>)>,
    /// Max WAL frames a replica may trail its primary and still serve
    /// reads; staler replicas are demoted past the primary.
    pub max_lag: u64,
    /// Health-probe interval (failover and recovery both happen within
    /// roughly one interval).
    pub health_interval: Duration,
    /// Extra passes over the candidate list before a request gives up.
    pub retries: usize,
    /// Worker threads doing backend fan-out.
    pub workers: usize,
    /// Queued requests beyond which clients get `ERR busy`.
    pub queue_depth: usize,
    /// Default per-connection row cap (`LIMIT` overrides; 0 = unlimited).
    pub default_limit: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            listen: "127.0.0.1:0".into(),
            shards: Vec::new(),
            max_lag: 0,
            health_interval: Duration::from_millis(250),
            retries: 2,
            workers: 8,
            queue_depth: 128,
            default_limit: 20,
        }
    }
}

/// Router-side counters, reported under `STAT router_*`.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Requests routed (everything except PING/QUIT/LIMIT).
    pub requests: AtomicU64,
    /// Cross-document scatter-gather queries.
    pub scatters: AtomicU64,
    /// Single-backend forwards.
    pub forwards: AtomicU64,
    /// Backend attempts that failed with an I/O error.
    pub backend_errors: AtomicU64,
    /// Requests that succeeded only after at least one failed attempt.
    pub failovers: AtomicU64,
    /// Up-but-stale replicas demoted past the primary by the LAG bound.
    pub lag_rejections: AtomicU64,
}

struct RouterState {
    topology: Arc<Topology>,
    registry: Registry,
    metrics: RouterMetrics,
    config: RouterConfig,
    stopping: AtomicBool,
}

/// One client request being routed on a worker.
struct RouterJob {
    line: String,
    limit: usize,
    conn: ConnId,
    seq: u64,
}

// ---------------------------------------------------------------------
// Routing primitives
// ---------------------------------------------------------------------

impl RouterState {
    /// Runs `line` against the candidate backends in order, with
    /// `retries` extra passes and small backoff between passes. `Err`
    /// is a ready-to-send `ERR …` message.
    fn route_to(
        &self,
        candidates: &[&backend::Backend],
        line: &str,
    ) -> Result<Vec<String>, String> {
        let mut last_err = String::from("no candidate backends");
        let mut failed_attempts = 0u64;
        for pass in 0..=self.config.retries {
            if pass > 0 {
                std::thread::sleep(Duration::from_millis(10 << pass.min(4)));
            }
            for backend in candidates {
                match backend.request(line) {
                    Ok(reply) => {
                        if failed_attempts > 0 {
                            self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(reply);
                    }
                    Err(e) => {
                        failed_attempts += 1;
                        self.metrics.backend_errors.fetch_add(1, Ordering::Relaxed);
                        last_err = format!("{} ({e})", backend.addr);
                    }
                }
            }
        }
        Err(format!("ERR backend no shard member reachable: {last_err}"))
    }

    /// Routes a read to `shard`: fresh replicas, then primary, then
    /// stale replicas as a last resort.
    fn route_read(&self, shard: usize, line: &str) -> Result<Vec<String>, String> {
        let shard = &self.topology.shards[shard];
        let (plan, stale) = shard.read_plan(self.config.max_lag);
        self.metrics
            .lag_rejections
            .fetch_add(stale, Ordering::Relaxed);
        self.route_to(&plan, line)
    }

    /// Routes a write to `shard`'s primary (writes never fail over to
    /// replicas — they are read-only by construction).
    fn route_write(&self, shard: usize, line: &str) -> Result<Vec<String>, String> {
        let shard = &self.topology.shards[shard];
        self.route_to(&[&shard.primary], line)
    }

    /// The owning shard for a document token: registry first, then the
    /// ring for names the router has not seen (the backend answers
    /// `ERR query no such document` if it truly does not exist).
    fn owner_of(&self, token: &str) -> Result<(String, usize), String> {
        if let Some((_, entry)) = self.registry.resolve(token) {
            return Ok((entry.name, entry.shard));
        }
        if token.parse::<usize>().is_ok() {
            return Err(format!("ERR query no such document {token}"));
        }
        Ok((token.to_string(), self.topology.ring.owner(token)))
    }
}

// ---------------------------------------------------------------------
// Verb handlers
// ---------------------------------------------------------------------

/// Truncates `ROW` lines to `limit` (0 = unlimited), passing all other
/// lines through — the backend streams uncapped (`LIMIT 0` at dial
/// time) and the router enforces the client's limit itself.
fn apply_limit(reply: Vec<String>, limit: usize) -> Vec<String> {
    if limit == 0 {
        return reply;
    }
    let mut rows = 0;
    reply
        .into_iter()
        .filter(|l| {
            if l.starts_with("ROW ") {
                rows += 1;
                rows <= limit
            } else {
                true
            }
        })
        .collect()
}

/// Parses the `OK <n> row(s) …` terminator of a backend `QUERY` reply.
fn row_total(reply: &[String]) -> Option<u64> {
    reply
        .last()?
        .strip_prefix("OK ")?
        .split_once(' ')
        .and_then(|(n, rest)| rest.starts_with("row(s)").then(|| n.parse().ok())?)
}

impl RouterState {
    /// `QUERY <xpath>` with no `DOC` scope: fan out one `QUERY DOC` per
    /// registered document (shards in parallel, documents on one shard
    /// in sequence over a reused connection) and merge in global load
    /// order.
    fn scatter_query(&self, xpath: &str, limit: usize) -> Vec<String> {
        self.metrics.scatters.fetch_add(1, Ordering::Relaxed);
        let docs = self.registry.snapshot();
        if docs.is_empty() {
            return vec!["ERR query no documents loaded (use LOADXML or LOAD)".into()];
        }
        let start = std::time::Instant::now();
        // Group documents by owning shard, remembering global ordinals.
        let mut by_shard: Vec<Vec<(usize, String)>> = vec![Vec::new(); self.topology.shards.len()];
        for (ordinal, doc) in docs.iter().enumerate() {
            by_shard[doc.shard].push((ordinal, doc.name.clone()));
        }
        // Per-document reply lines plus the backend-reported row total.
        type DocRows = (Vec<String>, u64);
        let results: Mutex<Vec<Option<DocRows>>> = Mutex::new(vec![None; docs.len()]);
        let first_error: Mutex<Option<String>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for (shard, group) in by_shard.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let results = &results;
                let first_error = &first_error;
                scope.spawn(move || {
                    for (ordinal, name) in group {
                        let request = format!("QUERY DOC {name} {xpath}");
                        let outcome = match self.route_read(shard, &request) {
                            Ok(reply) => match row_total(&reply) {
                                Some(total) => {
                                    let rows = reply
                                        .into_iter()
                                        .filter(|l| l.starts_with("ROW "))
                                        .collect();
                                    Ok((rows, total))
                                }
                                // The backend replied ERR (bad xpath,
                                // missing doc): surface it verbatim.
                                None => Err(reply.last().cloned().unwrap_or_default()),
                            },
                            Err(e) => Err(e),
                        };
                        match outcome {
                            Ok(r) => {
                                results.lock().unwrap_or_else(|p| p.into_inner())[*ordinal] =
                                    Some(r);
                            }
                            Err(e) => {
                                let mut slot =
                                    first_error.lock().unwrap_or_else(|p| p.into_inner());
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                return;
                            }
                        }
                    }
                });
            }
        });
        if let Some(err) = first_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return vec![err];
        }
        let mut out = Vec::new();
        let mut total = 0u64;
        for slot in results.into_inner().unwrap_or_else(|p| p.into_inner()) {
            let (rows, n) = slot.expect("no error recorded, every ordinal filled");
            total += n;
            out.extend(rows);
        }
        if limit > 0 {
            out.truncate(limit);
        }
        out.push(format!(
            "OK {total} row(s) plan=scatter shards={} {}us",
            by_shard.iter().filter(|g| !g.is_empty()).count(),
            start.elapsed().as_micros()
        ));
        out
    }

    /// `QUERY`/`EVAL`/`EXPLAIN`/`ANALYZE`: parse `[JSON] [DOC <doc>]
    /// <xpath>`, pick the target document, forward to its owner.
    fn read_verb(&self, verb: &str, rest: &str, limit: usize) -> Vec<String> {
        let (json, rest) = match rest.strip_prefix("JSON") {
            Some(r) if r.starts_with(' ') && matches!(verb, "EXPLAIN" | "ANALYZE") => {
                (true, r.trim())
            }
            _ => (false, rest),
        };
        let (doc, xpath) = match rest.strip_prefix("DOC ") {
            Some(r) => match r.trim_start().split_once(' ') {
                Some((d, x)) => (Some(d), x.trim()),
                None => {
                    return vec![format!(
                        "ERR proto {verb} DOC needs a document and an XPath expression"
                    )]
                }
            },
            None => (None, rest),
        };
        if xpath.is_empty() {
            return vec![format!("ERR proto {verb} needs an XPath expression")];
        }
        if verb == "QUERY" && doc.is_none() {
            return self.scatter_query(xpath, limit);
        }
        // EVAL/EXPLAIN/ANALYZE without DOC mean "document 0": the
        // globally-first document, which is local document 0 on its
        // owning shard (per-shard load order is a subsequence of the
        // global order), so forwarding with an explicit DOC scope
        // preserves single-node semantics.
        let target = match doc {
            Some(token) => self.owner_of(token),
            None => match self.registry.snapshot().first() {
                Some(entry) => Ok((entry.name.clone(), entry.shard)),
                None => return vec!["ERR query no documents loaded (use LOADXML or LOAD)".into()],
            },
        };
        let (name, shard) = match target {
            Ok(t) => t,
            Err(e) => return vec![e],
        };
        self.metrics.forwards.fetch_add(1, Ordering::Relaxed);
        let request = format!(
            "{verb}{} DOC {name} {xpath}",
            if json { " JSON" } else { "" }
        );
        match self.route_read(shard, &request) {
            Ok(reply) => apply_limit(reply, limit),
            Err(e) => vec![e],
        }
    }

    /// `INSERT`/`DELETE`: resolve the document, forward to the owning
    /// shard's primary (never a replica).
    fn write_verb(&self, verb: &str, rest: &str) -> Vec<String> {
        let Some((doc, tail)) = rest.split_once(' ').map(|(d, t)| (d, t.trim())) else {
            return vec![format!(
                "ERR proto {verb} needs a document and a target XPath"
            )];
        };
        let (name, shard) = match self.owner_of(doc) {
            Ok(t) => t,
            Err(e) => return vec![e],
        };
        self.metrics.forwards.fetch_add(1, Ordering::Relaxed);
        match self.route_write(shard, &format!("{verb} {name} {tail}")) {
            Ok(reply) => reply,
            Err(e) => vec![e],
        }
    }

    /// `LOADXML`/`LOAD`: place the (possibly new) document by ring,
    /// forward to the owner's primary, and register it on success.
    fn load_verb(&self, verb: &str, rest: &str) -> Vec<String> {
        let Some((name, _)) = rest.split_once(' ') else {
            return vec![format!("ERR proto {verb} needs a name and a payload")];
        };
        let shard = match self.registry.resolve(name) {
            Some((_, entry)) => entry.shard,
            None => self.topology.ring.owner(name),
        };
        self.metrics.forwards.fetch_add(1, Ordering::Relaxed);
        match self.route_write(shard, &format!("{verb} {rest}")) {
            Ok(reply) => {
                if reply.last().map(|l| l.starts_with("OK")) == Some(true) {
                    self.registry.register(name, shard);
                }
                reply
            }
            Err(e) => vec![e],
        }
    }

    /// `CHECKPOINT`: broadcast to every primary.
    fn checkpoint_verb(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, shard) in self.topology.shards.iter().enumerate() {
            match self.route_to(&[&shard.primary], "CHECKPOINT") {
                Ok(reply) => out.push(format!(
                    "SHARD {i} {}",
                    reply.last().cloned().unwrap_or_default()
                )),
                Err(e) => return vec![e],
            }
        }
        out.push(format!(
            "OK checkpoint shards={}",
            self.topology.shards.len()
        ));
        out
    }

    /// `STATS`: the router's own `router_*` counters plus engine
    /// counters summed across the reachable primaries.
    fn stats_verb(&self) -> Vec<String> {
        let m = &self.metrics;
        let mut out = vec![
            format!("STAT router_shards {}", self.topology.shards.len()),
            format!(
                "STAT router_replicas {}",
                self.topology
                    .shards
                    .iter()
                    .map(|s| s.replicas.len())
                    .sum::<usize>()
            ),
            format!("STAT router_docs {}", self.registry.len()),
            format!(
                "STAT router_requests {}",
                m.requests.load(Ordering::Relaxed)
            ),
            format!(
                "STAT router_scatters {}",
                m.scatters.load(Ordering::Relaxed)
            ),
            format!(
                "STAT router_forwards {}",
                m.forwards.load(Ordering::Relaxed)
            ),
            format!(
                "STAT router_backend_errors {}",
                m.backend_errors.load(Ordering::Relaxed)
            ),
            format!(
                "STAT router_failovers {}",
                m.failovers.load(Ordering::Relaxed)
            ),
            format!(
                "STAT router_lag_rejections {}",
                m.lag_rejections.load(Ordering::Relaxed)
            ),
        ];
        // Aggregate primary counters: same STAT keys, values summed.
        let mut sums: Vec<(String, u64)> = Vec::new();
        let mut reporting = 0;
        for shard in &self.topology.shards {
            let Ok(reply) = shard.primary.request("STATS") else {
                continue;
            };
            reporting += 1;
            for line in &reply {
                let Some(kv) = line.strip_prefix("STAT ") else {
                    continue;
                };
                let Some((key, value)) = kv.split_once(' ') else {
                    continue;
                };
                let Ok(value) = value.parse::<u64>() else {
                    continue;
                };
                match sums.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v += value,
                    None => sums.push((key.to_string(), value)),
                }
            }
        }
        out.push(format!("STAT router_primaries_reporting {reporting}"));
        out.extend(sums.into_iter().map(|(k, v)| format!("STAT {k} {v}")));
        out.push("OK".into());
        out
    }

    /// `TOPOLOGY`: per-backend health and document placement.
    fn topology_verb(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut replicas = 0;
        for (i, shard) in self.topology.shards.iter().enumerate() {
            out.push(format!(
                "SHARD {i} primary {} up={} last_lsn={}",
                shard.primary.addr,
                shard.primary.is_up() as u32,
                shard.primary.health.lsn.load(Ordering::Relaxed)
            ));
            for (j, replica) in shard.replicas.iter().enumerate() {
                replicas += 1;
                out.push(format!(
                    "REPLICA {i}.{j} {} up={} applied_lsn={} behind={} fresh={}",
                    replica.addr,
                    replica.is_up() as u32,
                    replica.health.lsn.load(Ordering::Relaxed),
                    shard.behind(replica),
                    (replica.is_up() && shard.behind(replica) <= self.config.max_lag) as u32
                ));
            }
        }
        for (ordinal, doc) in self.registry.snapshot().iter().enumerate() {
            out.push(format!("DOC {ordinal} {} shard={}", doc.name, doc.shard));
        }
        out.push(format!(
            "OK topology shards={} replicas={replicas} docs={}",
            self.topology.shards.len(),
            self.registry.len()
        ));
        out
    }

    /// `DOCS`: the global registry in load order.
    fn docs_verb(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .registry
            .snapshot()
            .iter()
            .enumerate()
            .map(|(ordinal, doc)| format!("DOC {ordinal} {} shard={}", doc.name, doc.shard))
            .collect();
        out.push(format!("OK {} document(s)", out.len()));
        out
    }

    /// `LAG`: the router's freshness view of every replica.
    fn lag_verb(&self) -> Vec<String> {
        let mut out = vec!["LAG role router".to_string()];
        for (i, shard) in self.topology.shards.iter().enumerate() {
            out.push(format!(
                "LAG shard{i}_last_lsn {}",
                shard.primary.health.lsn.load(Ordering::Relaxed)
            ));
            for (j, replica) in shard.replicas.iter().enumerate() {
                out.push(format!(
                    "LAG shard{i}_replica{j}_behind {}",
                    shard.behind(replica)
                ));
            }
        }
        out.push("OK lag".into());
        out
    }

    /// `CACHE LIST` aggregates `VIEW` rows from every backend;
    /// `CACHE CLEAR` broadcasts.
    fn cache_verb(&self, rest: &str) -> Vec<String> {
        match rest {
            "" | "LIST" => {
                let mut out = Vec::new();
                for backend in self.topology.all_backends() {
                    if let Ok(reply) = backend.request("CACHE LIST") {
                        out.extend(reply.into_iter().filter(|l| l.starts_with("VIEW ")));
                    }
                }
                out.push(format!("OK {} view(s)", out.len()));
                out
            }
            "CLEAR" => {
                for backend in self.topology.all_backends() {
                    let _ = backend.request("CACHE CLEAR");
                }
                vec!["OK cache cleared".into()]
            }
            _ => vec!["ERR proto CACHE takes LIST or CLEAR".into()],
        }
    }

    /// Routes one full request line (already known not to be an
    /// inline-answered verb) and returns the response lines.
    fn route_request(&self, line: &str, limit: usize) -> Vec<String> {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb {
            "QUERY" | "EVAL" | "EXPLAIN" | "ANALYZE" => self.read_verb(verb, rest, limit),
            "INSERT" | "DELETE" => self.write_verb(verb, rest),
            "LOADXML" | "LOAD" => self.load_verb(verb, rest),
            "CHECKPOINT" => self.checkpoint_verb(),
            "STATS" => self.stats_verb(),
            "TOPOLOGY" => self.topology_verb(),
            "DOCS" => self.docs_verb(),
            "LAG" => self.lag_verb(),
            "CACHE" => self.cache_verb(rest),
            "REPLICATE" => {
                vec!["ERR proto REPLICATE is not routable; connect to a shard primary".into()]
            }
            _ => vec![format!("ERR proto unknown request {verb}")],
        }
    }
}

// ---------------------------------------------------------------------
// The event-core service
// ---------------------------------------------------------------------

struct RouterService {
    state: Arc<RouterState>,
    pool: Arc<WorkerPool<RouterJob>>,
    limits: Mutex<HashMap<ConnId, usize>>,
}

impl LineService for RouterService {
    fn handle(&self, conn: ConnId, seq: u64, line: &str) -> Dispatch {
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb {
            "PING" => Dispatch::Reply(b"OK pong\n".to_vec()),
            "QUIT" => Dispatch::ReplyClose(b"OK bye\n".to_vec()),
            "LIMIT" => match rest.parse::<usize>() {
                Ok(n) => {
                    self.limits
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .insert(conn, n);
                    Dispatch::Reply(format!("OK limit {n}\n").into_bytes())
                }
                Err(_) => {
                    Dispatch::Reply(b"ERR proto LIMIT needs a non-negative integer\n".to_vec())
                }
            },
            _ => {
                let limit = *self
                    .limits
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .get(&conn)
                    .unwrap_or(&self.state.config.default_limit);
                let job = RouterJob {
                    line: line.to_string(),
                    limit,
                    conn,
                    seq,
                };
                // Control verbs (STATS/TOPOLOGY/LAG/DOCS) bypass
                // admission so monitoring answers under saturation.
                let control = matches!(verb, "STATS" | "TOPOLOGY" | "LAG" | "DOCS");
                let submitted = if control {
                    self.pool.submit(job)
                } else {
                    self.pool.try_submit(job)
                };
                match submitted {
                    Ok(()) => Dispatch::Pending,
                    Err(_) => {
                        Dispatch::Reply(b"ERR busy router at capacity, retry later\n".to_vec())
                    }
                }
            }
        }
    }

    fn on_close(&self, conn: ConnId) {
        self.limits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&conn);
    }
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

/// The front tier service.
pub struct Router;

impl Router {
    /// Binds the listen address, bootstraps the document registry from
    /// the reachable primaries, starts the health monitor, and serves
    /// on a background thread.
    pub fn start(config: RouterConfig) -> std::io::Result<RouterHandle> {
        if config.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one --shard",
            ));
        }
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let topology = Arc::new(Topology::new(config.shards.clone()));
        let state = Arc::new(RouterState {
            topology: Arc::clone(&topology),
            registry: Registry::default(),
            metrics: RouterMetrics::default(),
            config,
            stopping: AtomicBool::new(false),
        });
        bootstrap_registry(&state);

        let completions = Completions::new()?;
        let pool = {
            let state = Arc::clone(&state);
            let completions = completions.clone();
            Arc::new(WorkerPool::new(
                state.config.workers,
                state.config.queue_depth,
                "vamana-route",
                move |job: RouterJob| {
                    let reply = state.route_request(&job.line, job.limit);
                    let mut bytes = Vec::new();
                    for line in reply {
                        bytes.extend_from_slice(line.as_bytes());
                        bytes.push(b'\n');
                    }
                    completions.complete(job.conn, job.seq, bytes);
                },
            ))
        };
        let service = Arc::new(RouterService {
            state: Arc::clone(&state),
            pool,
            limits: Mutex::new(HashMap::new()),
        });
        // Health monitor.
        let monitor = {
            let state = Arc::clone(&state);
            let interval = state.config.health_interval;
            std::thread::Builder::new()
                .name("vamana-health".into())
                .spawn(move || {
                    let stop = {
                        let state = Arc::clone(&state);
                        move || state.stopping.load(Ordering::SeqCst)
                    };
                    health::run_monitor(Arc::clone(&state.topology), interval, stop);
                })?
        };
        // Event loop.
        let loop_thread = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("vamana-router".into())
                .spawn(move || {
                    event::run_event_loop(listener, service, completions, move || {
                        state.stopping.load(Ordering::SeqCst)
                    })
                })?
        };
        Ok(RouterHandle {
            addr,
            state,
            threads: vec![monitor],
            loop_thread: Some(loop_thread),
        })
    }
}

/// Bootstraps the registry by asking each reachable primary for its
/// `DOCS`, interleaving per-shard lists by local ordinal (every shard's
/// local order is a subsequence of the global load order; interleaving
/// reconstructs it exactly when loads round-robined across shards and
/// approximates it otherwise — documents loaded *through* the router
/// are always recorded in exact global order).
fn bootstrap_registry(state: &RouterState) {
    let mut per_shard: Vec<Vec<String>> = Vec::new();
    for shard in &state.topology.shards {
        let names = match shard.primary.request("DOCS") {
            Ok(reply) => reply
                .iter()
                .filter_map(|l| l.strip_prefix("DOC "))
                .filter_map(|l| l.split_whitespace().nth(1))
                .map(str::to_string)
                .collect(),
            Err(_) => Vec::new(),
        };
        per_shard.push(names);
    }
    let deepest = per_shard.iter().map(Vec::len).max().unwrap_or(0);
    for position in 0..deepest {
        for (shard, names) in per_shard.iter().enumerate() {
            if let Some(name) = names.get(position) {
                state.registry.register(name, shard);
            }
        }
    }
}

/// A running router; dropping it stops the service.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    threads: Vec<std::thread::JoinHandle<()>>,
    loop_thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl RouterHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the event loop and health monitor and joins them.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(loop_thread) = self.loop_thread.take() else {
            return;
        };
        self.state.stopping.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = loop_thread.join();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_limit_truncates_only_rows() {
        let reply: Vec<String> = vec![
            "ROW a 1".into(),
            "ROW b 2".into(),
            "ROW c 3".into(),
            "OK 3 row(s)".into(),
        ];
        let capped = apply_limit(reply.clone(), 2);
        assert_eq!(capped.len(), 3);
        assert_eq!(capped.last().unwrap(), "OK 3 row(s)");
        assert_eq!(apply_limit(reply, 0).len(), 4);
    }

    #[test]
    fn row_total_parses_query_terminators() {
        let reply: Vec<String> = vec!["OK 17 row(s) plan=cached 120us hits=3 misses=0".into()];
        assert_eq!(row_total(&reply), Some(17));
        let err: Vec<String> = vec!["ERR query nope".into()];
        assert_eq!(row_total(&err), None);
        let scalar: Vec<String> = vec!["OK scalar 5us".into()];
        assert_eq!(row_total(&scalar), None);
    }
}
