//! One routed-to server process: its address, health gauges, and a
//! small pool of idle protocol connections.
//!
//! Router workers check a connection out, run one request, and check it
//! back in; connections are created on demand and discarded on any I/O
//! error (the next checkout dials fresh). Every pooled connection sends
//! `LIMIT 0` once at dial time: backends stream *all* rows and the
//! router applies the client's own limit after merging — a per-shard
//! limit would under-fill cross-shard results.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How long a backend dial may take before the attempt counts as a
/// failure (keeps a dead backend from stalling a scatter).
const DIAL_TIMEOUT: Duration = Duration::from_millis(500);

/// Per-request I/O budget on a backend connection.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Health gauges the monitor thread maintains and routing reads.
#[derive(Debug, Default)]
pub struct Health {
    /// Whether the last probe (or last routed request) succeeded.
    pub up: AtomicBool,
    /// Primaries: last committed LSN. Replicas: last applied LSN.
    pub lsn: AtomicU64,
    /// Consecutive failed probes (resets on success).
    pub failures: AtomicU64,
    /// Total successful probes.
    pub probes: AtomicU64,
}

/// A checked-out protocol connection to one backend.
pub struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn dial(addr: &str) -> std::io::Result<Conn> {
        let sockaddr = addr
            .parse()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, DIAL_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut conn = Conn {
            reader: BufReader::new(stream),
        };
        // Uncap the backend's row limit for the lifetime of this
        // connection; the router enforces the client's limit itself.
        let reply = conn.round_trip("LIMIT 0")?;
        if reply.last().map(|l| l.starts_with("OK")) != Some(true) {
            return Err(std::io::Error::other(format!(
                "backend {addr} rejected LIMIT 0: {reply:?}"
            )));
        }
        Ok(conn)
    }

    /// Sends one request line and reads response lines through the
    /// `OK`/`ERR` terminator.
    pub fn round_trip(&mut self, request: &str) -> std::io::Result<Vec<String>> {
        let stream = self.reader.get_ref();
        let mut writer = stream.try_clone()?;
        writer.write_all(request.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("backend closed mid-response to {request:?}"),
                ));
            }
            let line = line.trim_end_matches(['\n', '\r']).to_string();
            let done = line.starts_with("OK") || line.starts_with("ERR");
            lines.push(line);
            if done {
                return Ok(lines);
            }
        }
    }
}

/// One backend process: address, health, and idle connections.
pub struct Backend {
    /// The address requests are dialed to.
    pub addr: String,
    /// Health gauges (see [`Health`]).
    pub health: Health,
    idle: Mutex<Vec<Conn>>,
}

impl Backend {
    /// A backend for `addr`, initially presumed up (the first probe or
    /// request corrects this within one health interval).
    pub fn new(addr: String) -> Backend {
        let health = Health::default();
        health.up.store(true, Ordering::Relaxed);
        Backend {
            addr,
            health,
            idle: Mutex::new(Vec::new()),
        }
    }

    fn idle_pool(&self) -> std::sync::MutexGuard<'_, Vec<Conn>> {
        self.idle.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Checks out an idle connection or dials a new one.
    pub fn checkout(&self) -> std::io::Result<Conn> {
        if let Some(conn) = self.idle_pool().pop() {
            return Ok(conn);
        }
        Conn::dial(&self.addr)
    }

    /// Returns a healthy connection to the pool (error-path connections
    /// are simply dropped).
    pub fn checkin(&self, conn: Conn) {
        let mut pool = self.idle_pool();
        if pool.len() < 16 {
            pool.push(conn);
        }
    }

    /// Runs one request with connection reuse; any I/O error marks the
    /// backend down (the health monitor brings it back) and discards
    /// the connection.
    pub fn request(&self, line: &str) -> std::io::Result<Vec<String>> {
        let attempt = self
            .checkout()
            .and_then(|mut conn| conn.round_trip(line).map(|reply| (conn, reply)));
        match attempt {
            Ok((conn, reply)) => {
                self.checkin(conn);
                self.health.up.store(true, Ordering::Relaxed);
                Ok(reply)
            }
            Err(e) => {
                self.health.up.store(false, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Whether routing should currently consider this backend.
    pub fn is_up(&self) -> bool {
        self.health.up.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_backend_reports_dial_error() {
        // A port from the ephemeral range with nothing bound: connect
        // must fail fast, not hang.
        let backend = Backend::new("127.0.0.1:1".into());
        let err = backend.request("PING").unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::PermissionDenied
            ),
            "{err:?}"
        );
    }
}
