//! Background health monitoring.
//!
//! One thread probes every backend with `LAG` on a fixed interval and
//! writes the results into each backend's [`Health`] gauges. Routing
//! never trusts a replica's *own* view of its lag: a replica cut off
//! from its primary keeps reporting `behind 0` while silently going
//! stale, so freshness is computed router-side as
//! `primary.last_lsn − replica.applied_lsn` using the two most recent
//! probes. A backend whose probe fails is marked down immediately and
//! comes back on the first successful probe — so failover and recovery
//! both happen within one health interval.
//!
//! [`Health`]: crate::backend::Health

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::topology::Topology;

/// Parses `LAG <key> <value>` out of a probe response.
fn lag_value(lines: &[String], key: &str) -> Option<u64> {
    let want = format!("LAG {key} ");
    lines
        .iter()
        .find_map(|l| l.strip_prefix(&want))
        .and_then(|v| v.parse().ok())
}

/// Probes one backend and updates its gauges; `key` names the LSN
/// gauge that matters for its role (`last_lsn` on primaries,
/// `applied_lsn` on replicas).
fn probe(backend: &crate::backend::Backend, key: &str) {
    match backend.request("LAG") {
        Ok(reply) => {
            if let Some(lsn) = lag_value(&reply, key) {
                backend.health.lsn.store(lsn, Ordering::Relaxed);
            }
            backend.health.up.store(true, Ordering::Relaxed);
            backend.health.failures.store(0, Ordering::Relaxed);
            backend.health.probes.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            backend.health.up.store(false, Ordering::Relaxed);
            backend.health.failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs the monitor until `stop` returns true. Spawned by
/// [`Router::start`](crate::Router::start); the interval comes from
/// [`RouterConfig::health_interval`](crate::RouterConfig).
pub fn run_monitor(topology: Arc<Topology>, interval: Duration, stop: impl Fn() -> bool) {
    while !stop() {
        for shard in &topology.shards {
            probe(&shard.primary, "last_lsn");
            for replica in &shard.replicas {
                probe(replica, "applied_lsn");
            }
        }
        std::thread::sleep(interval);
    }
}
