//! `vamana-router` — the sharded front-tier process.
//!
//! ```text
//! vamana-router --listen 127.0.0.1:4040 \
//!               --shard 127.0.0.1:4050,127.0.0.1:4051,127.0.0.1:4052 \
//!               --shard 127.0.0.1:4060,127.0.0.1:4061 \
//!               [--max-lag N] [--health-interval MS] [--retries N]
//!               [--workers N] [--port-file PATH]
//! ```
//!
//! Each `--shard` is a comma-separated list: the primary's address
//! first, then any read replicas. Clients speak the ordinary VAMANA
//! line protocol to `--listen`; see `DESIGN.md` ("Wire protocol") for
//! the router-specific verbs (`TOPOLOGY`) and routing semantics. With
//! `--port-file`, the actually bound address is written there
//! write-then-rename once serving (useful with port 0).

use std::time::Duration;

use vamana_router::{Router, RouterConfig};

fn usage() -> ! {
    eprintln!(
        "usage: vamana-router --listen <addr> --shard <primary>[,<replica>...]... \
         [--max-lag N] [--health-interval MS] [--retries N] [--workers N] \
         [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = RouterConfig::default();
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => config.listen = value(),
            "--shard" => {
                let spec = value();
                let mut parts = spec.split(',').map(str::to_string);
                let Some(primary) = parts.next().filter(|p| !p.is_empty()) else {
                    usage();
                };
                config.shards.push((primary, parts.collect()));
            }
            "--max-lag" => match value().parse() {
                Ok(n) => config.max_lag = n,
                Err(_) => usage(),
            },
            "--health-interval" => match value().parse() {
                Ok(ms) => config.health_interval = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--retries" => match value().parse() {
                Ok(n) => config.retries = n,
                Err(_) => usage(),
            },
            "--workers" => match value().parse() {
                Ok(n) => config.workers = n,
                Err(_) => usage(),
            },
            "--port-file" => port_file = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let handle = match Router::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("vamana-router: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("vamana-router serving on {}", handle.addr());
    if let Some(path) = port_file {
        // Write-then-rename so a watcher never reads a half-written file.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, handle.addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_err()
        {
            eprintln!("vamana-router: cannot write port file {path}");
            std::process::exit(1);
        }
    }
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
