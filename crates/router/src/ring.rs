//! Consistent-hash ring over shards.
//!
//! Documents are placed on shards by hashing the document *name* onto a
//! ring of virtual nodes (FNV-1a, 64 vnodes per shard). Consistency is
//! the property the front tier leans on: the same name always lands on
//! the same shard regardless of which router instance computes it or in
//! which order documents were loaded, so any number of stateless
//! routers agree on ownership without coordination. Virtual nodes keep
//! the assignment balanced — with one point per shard, a 2-shard ring
//! can easily end up 80/20; with 64 each, the split stays within a few
//! percent of even for realistic document counts.

/// 64-bit FNV-1a: tiny, dependency-free, and plenty uniform for
/// placement (this is not a defense against adversarial names).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Finalizer decorrelating the near-sequential FNV hashes of vnode
/// labels (splitmix64's mixing function): without it the ring points
/// cluster and the placement skews badly.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Virtual nodes per shard.
const VNODES: usize = 64;

/// A fixed consistent-hash ring: `shards × VNODES` points, sorted by
/// hash; a name maps to the shard owning the first point at or after
/// its hash (wrapping).
pub struct Ring {
    /// `(point_hash, shard_index)`, sorted by hash.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds the ring for `shards` shards (at least one).
    pub fn new(shards: usize) -> Ring {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                points.push((
                    mix(fnv1a(format!("shard-{shard}#{vnode}").as_bytes())),
                    shard,
                ));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The shard that owns `name`.
    pub fn owner(&self, name: &str) -> usize {
        let h = mix(fnv1a(name.as_bytes()));
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[i % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let a = Ring::new(3);
        let b = Ring::new(3);
        for name in ["auction", "site", "regions", "xmark-7", ""] {
            assert_eq!(a.owner(name), b.owner(name));
        }
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[ring.owner(&format!("doc-{i}"))] += 1;
        }
        for &c in &counts {
            // 2500 ± 40% — loose, but catches a broken ring (all-on-one
            // would be 10000/0/0/0).
            assert!((1500..=3500).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new(1);
        assert_eq!(ring.owner("anything"), 0);
    }
}
