//! The routed-to cluster: shards, their replicas, and the global
//! document registry.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

use crate::backend::Backend;
use crate::ring::Ring;

/// One shard: a write primary plus any number of read replicas.
pub struct Shard {
    /// The primary — owns writes and is the read fallback.
    pub primary: Backend,
    /// Read replicas following the primary's WAL feed.
    pub replicas: Vec<Backend>,
    /// Round-robin cursor for replica selection.
    rr: AtomicUsize,
}

impl Shard {
    /// Builds a shard from addresses.
    pub fn new(primary: String, replicas: Vec<String>) -> Shard {
        Shard {
            primary: Backend::new(primary),
            replicas: replicas.into_iter().map(Backend::new).collect(),
            rr: AtomicUsize::new(0),
        }
    }

    /// How far `replica` trails this shard's primary, from the health
    /// monitor's last probes. Computed router-side — a replica cut off
    /// from its primary self-reports `behind 0` while going stale, so
    /// its own view is never trusted.
    pub fn behind(&self, replica: &Backend) -> u64 {
        self.primary
            .health
            .lsn
            .load(Ordering::Relaxed)
            .saturating_sub(replica.health.lsn.load(Ordering::Relaxed))
    }

    /// The ordered candidate list for a read: fresh replicas first
    /// (round-robin rotated), then the primary, then stale or down
    /// replicas as a last resort. Also returns how many up-but-stale
    /// replicas were demoted past the primary (the LAG-bound
    /// rejections, counted by the router's metrics).
    pub fn read_plan(&self, max_lag: u64) -> (Vec<&Backend>, u64) {
        let n = self.replicas.len();
        let start = if n > 0 {
            self.rr.fetch_add(1, Ordering::Relaxed) % n
        } else {
            0
        };
        let mut fresh = Vec::new();
        let mut rest = Vec::new();
        let mut stale = 0;
        for k in 0..n {
            let replica = &self.replicas[(start + k) % n];
            if replica.is_up() && self.behind(replica) <= max_lag {
                fresh.push(replica);
            } else {
                if replica.is_up() {
                    stale += 1;
                }
                rest.push(replica);
            }
        }
        let mut plan = fresh;
        plan.push(&self.primary);
        plan.extend(rest);
        (plan, stale)
    }
}

/// The full cluster: shard list plus the consistent-hash ring that
/// places documents on it.
pub struct Topology {
    /// The shards, in configuration order.
    pub shards: Vec<Shard>,
    /// Document-name → shard placement.
    pub ring: Ring,
}

impl Topology {
    /// Builds the topology from `(primary, replicas)` address pairs.
    pub fn new(shards: Vec<(String, Vec<String>)>) -> Topology {
        let ring = Ring::new(shards.len().max(1));
        Topology {
            shards: shards.into_iter().map(|(p, r)| Shard::new(p, r)).collect(),
            ring,
        }
    }

    /// Every backend, primaries first (used by broadcast verbs and the
    /// health monitor).
    pub fn all_backends(&self) -> impl Iterator<Item = &Backend> {
        self.shards
            .iter()
            .map(|s| &s.primary)
            .chain(self.shards.iter().flat_map(|s| s.replicas.iter()))
    }
}

/// One registered document: its name and owning shard.
#[derive(Debug, Clone)]
pub struct DocEntry {
    /// The document name (the routing key).
    pub name: String,
    /// Index of the owning shard.
    pub shard: usize,
}

/// The global document registry, in global load order.
///
/// Ordinal position here is what makes scatter-gather merging correct:
/// FLEX keys order by load ordinal, and each shard's local load order
/// is a subsequence of this global order, so concatenating per-document
/// results by registry ordinal reproduces single-store document order
/// exactly.
#[derive(Default)]
pub struct Registry {
    docs: RwLock<Vec<DocEntry>>,
}

impl Registry {
    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<DocEntry>> {
        self.docs.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers `name` on `shard` (idempotent); returns its ordinal.
    pub fn register(&self, name: &str, shard: usize) -> usize {
        let mut docs = self.docs.write().unwrap_or_else(|p| p.into_inner());
        if let Some(i) = docs.iter().position(|d| d.name == name) {
            return i;
        }
        docs.push(DocEntry {
            name: name.to_string(),
            shard,
        });
        docs.len() - 1
    }

    /// A point-in-time copy, in global load order.
    pub fn snapshot(&self) -> Vec<DocEntry> {
        self.read().clone()
    }

    /// Registered document count.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether no documents are registered yet.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Resolves a protocol document token — a global ordinal or a name
    /// — to `(ordinal, entry)`, mirroring the server's own resolution.
    pub fn resolve(&self, token: &str) -> Option<(usize, DocEntry)> {
        let docs = self.read();
        if let Ok(i) = token.parse::<usize>() {
            if i < docs.len() {
                return Some((i, docs[i].clone()));
            }
        }
        docs.iter()
            .position(|d| d.name == token)
            .map(|i| (i, docs[i].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_preserves_load_order_and_dedups() {
        let reg = Registry::default();
        assert_eq!(reg.register("a", 0), 0);
        assert_eq!(reg.register("b", 1), 1);
        assert_eq!(reg.register("a", 0), 0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.resolve("1").unwrap().1.name, "b");
        assert_eq!(reg.resolve("b").unwrap().0, 1);
        assert!(reg.resolve("missing").is_none());
    }

    #[test]
    fn read_plan_prefers_fresh_replicas_then_primary() {
        let shard = Shard::new("p".into(), vec!["r0".into(), "r1".into()]);
        shard.primary.health.lsn.store(10, Ordering::Relaxed);
        shard.replicas[0].health.lsn.store(10, Ordering::Relaxed); // fresh
        shard.replicas[1].health.lsn.store(2, Ordering::Relaxed); // stale
        let (plan, stale) = shard.read_plan(3);
        assert_eq!(stale, 1);
        let addrs: Vec<&str> = plan.iter().map(|b| b.addr.as_str()).collect();
        assert_eq!(addrs, ["r0", "p", "r1"]);
    }

    #[test]
    fn read_plan_rotates_fresh_replicas() {
        let shard = Shard::new("p".into(), vec!["r0".into(), "r1".into()]);
        let first = shard.read_plan(0).0[0].addr.clone();
        let second = shard.read_plan(0).0[0].addr.clone();
        assert_ne!(first, second, "round-robin must alternate");
    }
}
