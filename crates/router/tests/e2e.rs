//! Router end-to-end tests: real TCP servers behind a real router,
//! covering the front-tier acceptance criteria — consistent routing
//! (the same document always lands on the same shard), scatter-gather
//! results byte-equal to a single-node engine holding every document,
//! LAG-bounded read rejection falling back to the primary, replica
//! failover within the health-check window (`kill -9` of a real
//! follower process), and clean degradation when a primary dies
//! mid-stream.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vamana_core::Engine;
use vamana_mass::{FsyncPolicy, MassStore};
use vamana_router::{Router, RouterConfig, RouterHandle};
use vamana_server::testkit::{lag_value, stat_value, Client};
use vamana_server::{ReplicaRole, ReplicaStatus, Server, ServerConfig, ServerHandle};

const DEADLINE: Duration = Duration::from_secs(20);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vamana-router-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn memory_server() -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        Engine::new(MassStore::open_memory()),
        ServerConfig::default(),
    )
    .expect("bind")
    .spawn()
    .expect("spawn")
}

fn start_router(shards: Vec<(String, Vec<String>)>, config: RouterConfig) -> RouterHandle {
    Router::start(RouterConfig { shards, ..config }).expect("start router")
}

/// The comparison baseline: ROW lines plus the stable `OK <n> row(s)`
/// prefix (plan/latency details differ between a router and a single
/// node by construction).
fn stable_rows(mut reply: Vec<String>) -> Vec<String> {
    let ok = reply.pop().expect("terminator");
    assert!(ok.starts_with("OK"), "{ok}");
    let stable = if ok.starts_with("OK scalar") {
        "OK scalar".to_string()
    } else {
        ok.split(" plan=")
            .next()
            .unwrap_or(&ok)
            .trim_end()
            .to_string()
    };
    reply.push(stable);
    reply
}

const DOCS: [(&str, &str); 4] = [
    (
        "east",
        "<site><people><person><name>Ada</name></person><person><name>Alan</name></person></people></site>",
    ),
    (
        "west",
        "<site><people><person><name>Grace</name></person></people></site>",
    ),
    (
        "north",
        "<site><people><person><name>Edsger</name></person><person><name>Barbara</name></person></people></site>",
    ),
    (
        "south",
        "<site><people><person><name>Donald</name></person></people></site>",
    ),
];

#[test]
fn consistent_routing_and_scatter_gather_match_single_node() {
    // Two shards, no replicas; the same four documents loaded through
    // the router and into one single-node engine, in the same order.
    let shard0 = memory_server();
    let shard1 = memory_server();
    let router = start_router(
        vec![
            (shard0.addr().to_string(), vec![]),
            (shard1.addr().to_string(), vec![]),
        ],
        RouterConfig::default(),
    );
    let single = memory_server();

    let mut via_router = Client::connect_addr(router.addr());
    let mut via_single = Client::connect_addr(single.addr());
    for (name, xml) in DOCS {
        let reply = via_router.round_trip(&format!("LOADXML {name} {xml}"));
        assert!(reply[0].starts_with("OK loaded"), "{reply:?}");
        let reply = via_single.round_trip(&format!("LOADXML {name} {xml}"));
        assert!(reply[0].starts_with("OK loaded"), "{reply:?}");
    }

    // Both shards got documents (the ring spreads four names), and the
    // registry knows all four in load order.
    let topology = via_router.round_trip("TOPOLOGY");
    let placed: Vec<&String> = topology.iter().filter(|l| l.starts_with("DOC ")).collect();
    assert_eq!(placed.len(), 4, "{topology:?}");
    for (ordinal, (name, _)) in DOCS.iter().enumerate() {
        assert!(
            placed[ordinal].starts_with(&format!("DOC {ordinal} {name} ")),
            "registry out of load order: {placed:?}"
        );
    }

    // Scatter-gather equals the single node, row for row, across
    // limits, for node-set queries of different shapes.
    for limit in [0, 2, 20] {
        via_router.round_trip(&format!("LIMIT {limit}"));
        via_single.round_trip(&format!("LIMIT {limit}"));
        for q in [
            "QUERY //person/name",
            "QUERY //people",
            "QUERY //person[name='Grace']",
            "QUERY //nothing",
        ] {
            assert_eq!(
                stable_rows(via_router.round_trip(q)),
                stable_rows(via_single.round_trip(q)),
                "router and single node diverge on {q} at LIMIT {limit}"
            );
        }
    }

    // Doc-scoped reads and document-0 semantics survive routing.
    via_router.round_trip("LIMIT 0");
    via_single.round_trip("LIMIT 0");
    for q in [
        "QUERY DOC west //person/name",
        "QUERY DOC 2 //name",
        "EVAL count(//person)", // doc 0 = globally-first = "east"
        "EVAL DOC south count(//person)",
    ] {
        assert_eq!(
            stable_rows(via_router.round_trip(q)),
            stable_rows(via_single.round_trip(q)),
            "diverge on {q}"
        );
    }

    // Consistent routing: re-resolving every document hits the same
    // shard every time (the TOPOLOGY placement is stable).
    for _ in 0..3 {
        assert_eq!(
            via_router
                .round_trip("TOPOLOGY")
                .iter()
                .filter(|l| l.starts_with("DOC "))
                .collect::<Vec<_>>(),
            placed,
            "placement drifted between requests"
        );
    }

    // A routed write lands on the owning shard and is visible to the
    // next scatter — equal to the single node applying the same write.
    for target in [&mut via_router, &mut via_single] {
        let reply = target.round_trip("INSERT north //people <person><name>Tony</name></person>");
        assert!(reply[0].starts_with("OK update"), "{reply:?}");
    }
    assert_eq!(
        stable_rows(via_router.round_trip("QUERY //person/name")),
        stable_rows(via_single.round_trip("QUERY //person/name")),
        "post-write scatter diverges"
    );

    // EXPLAIN routes and returns a plan report.
    let plan = via_router.round_trip("EXPLAIN DOC east //person/name");
    assert!(plan.iter().any(|l| l.starts_with("PLAN ")), "{plan:?}");

    // Aggregated stats see both shards' engines.
    let stats = via_router.round_trip("STATS");
    assert_eq!(stat_value(&stats, "router_shards"), 2, "{stats:?}");
    assert_eq!(stat_value(&stats, "router_docs"), 4, "{stats:?}");
    assert_eq!(stat_value(&stats, "router_primaries_reporting"), 2);
    assert_eq!(stat_value(&stats, "documents"), 4, "summed over shards");
    assert!(stat_value(&stats, "router_scatters") >= 4, "{stats:?}");

    router.stop();
    shard0.stop();
    shard1.stop();
    single.stop();
}

#[test]
fn a_new_router_bootstraps_the_registry_from_running_shards() {
    let shard0 = memory_server();
    let shard1 = memory_server();
    let shards = vec![
        (shard0.addr().to_string(), vec![]),
        (shard1.addr().to_string(), vec![]),
    ];
    let first = start_router(shards.clone(), RouterConfig::default());
    let mut client = Client::connect_addr(first.addr());
    // These names alternate shards on the 2-ring (west/auction → one
    // shard, east/north → the other), so a bootstrapping router can
    // reconstruct the global load order exactly by interleaving the
    // shards' local orders — the property this test pins down.
    for (name, xml) in [
        ("west", DOCS[1].1),
        ("east", DOCS[0].1),
        ("auction", DOCS[3].1),
        ("north", DOCS[2].1),
    ] {
        client.round_trip(&format!("LOADXML {name} {xml}"));
    }
    let reference = stable_rows(client.round_trip("QUERY //person/name"));
    first.stop();

    // A second, stateless router instance over the same shards learns
    // the documents from DOCS and answers identically.
    let second = start_router(shards, RouterConfig::default());
    let mut client = Client::connect_addr(second.addr());
    let docs = client.round_trip("DOCS");
    assert!(
        docs.last().unwrap().starts_with("OK 4 document(s)"),
        "{docs:?}"
    );
    assert_eq!(
        stable_rows(client.round_trip("QUERY //person/name")),
        reference,
        "bootstrapped router diverges from the loading router"
    );
    second.stop();
    shard0.stop();
    shard1.stop();
}

#[test]
fn unknown_documents_route_to_a_clean_error() {
    let shard = memory_server();
    let router = start_router(
        vec![(shard.addr().to_string(), vec![])],
        RouterConfig::default(),
    );
    let mut client = Client::connect_addr(router.addr());
    client.round_trip("LOADXML known <r><a>1</a></r>");

    // A named unknown document is forwarded to its ring owner, which
    // answers exactly like a single node would.
    let err = client.round_trip("QUERY DOC missing //a");
    assert!(err[0].starts_with("ERR query no such document"), "{err:?}");
    // A numeric ordinal beyond the registry cannot be ring-placed and
    // is rejected at the router.
    let err = client.round_trip("EVAL DOC 7 count(//a)");
    assert!(err[0].starts_with("ERR query no such document"), "{err:?}");
    let err = client.round_trip("INSERT 99 //a <b/>");
    assert!(err[0].starts_with("ERR query no such document"), "{err:?}");
    // The connection survives every error.
    assert_eq!(client.round_trip("PING"), vec!["OK pong"]);
    router.stop();
    shard.stop();
}

/// A read-only "replica" whose LAG gauges the test controls directly:
/// a server with a replica role over an independent engine. The router
/// never trusts a replica's self-reported lag, but it does read its
/// `applied_lsn` — which this harness pins wherever the test wants.
fn fake_replica(
    primary: SocketAddr,
    xml_docs: &[(&str, &str)],
) -> (ServerHandle, Arc<ReplicaStatus>) {
    let mut store = MassStore::open_memory();
    for (name, xml) in xml_docs {
        store.load_xml(name, xml).unwrap();
    }
    let status = Arc::new(ReplicaStatus::default());
    status.connected.store(true, Ordering::Relaxed);
    let handle = Server::bind(
        "127.0.0.1:0",
        Engine::new(store),
        ServerConfig {
            replica: Some(ReplicaRole {
                primary: primary.to_string(),
                status: Arc::clone(&status),
            }),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    (handle, status)
}

#[test]
fn stale_replica_is_rejected_by_the_lag_bound_and_reads_fall_back_to_primary() {
    let dir = temp_dir("lagbound");
    // A durable primary so writes advance a real LSN.
    let mut store =
        MassStore::create_durable(dir.join("primary.mass"), 512, FsyncPolicy::Never).unwrap();
    store
        .load_xml(
            "auction",
            "<site><people><person><name>Ada</name></person></people></site>",
        )
        .unwrap();
    let primary = Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // The "replica" holds only the pre-write data and reports a pinned
    // applied LSN of 0.
    let (replica, _status) = fake_replica(
        primary.addr(),
        &[(
            "auction",
            "<site><people><person><name>Ada</name></person></people></site>",
        )],
    );

    let router = start_router(
        vec![(primary.addr().to_string(), vec![replica.addr().to_string()])],
        RouterConfig {
            max_lag: 1_000_000, // effectively unbounded for now
            health_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect_addr(router.addr());

    // Write through the router: the primary's LSN advances; the fake
    // replica stays at applied_lsn 0 and still has the old data.
    let reply = client.round_trip("INSERT auction //people <person><name>New</name></person>");
    assert!(reply[0].starts_with("OK update"), "{reply:?}");

    // Give the health monitor a probe cycle to see the new LSNs.
    let until = Instant::now() + DEADLINE;
    loop {
        let lag = client.round_trip("LAG");
        if lag_value(&lag, "shard0_last_lsn") >= 2 && lag_value(&lag, "shard0_replica0_behind") >= 1
        {
            break;
        }
        assert!(Instant::now() < until, "health never converged: {lag:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // With the bound wide open, the replica serves reads — and its
    // answer is visibly stale (1 person, not 2). This proves the
    // replica really is in the read path.
    let stale = client.round_trip("EVAL count(//person)");
    assert_eq!(stale[0], "VAL 1", "expected the stale replica: {stale:?}");

    router.stop();

    // Same topology with max_lag 0: the stale replica is demoted and
    // every read falls back to the primary's fresh answer.
    let strict = start_router(
        vec![(primary.addr().to_string(), vec![replica.addr().to_string()])],
        RouterConfig {
            max_lag: 0,
            health_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect_addr(strict.addr());
    let until = Instant::now() + DEADLINE;
    loop {
        let lag = client.round_trip("LAG");
        if lag_value(&lag, "shard0_replica0_behind") >= 1 {
            break;
        }
        assert!(Instant::now() < until, "health never converged: {lag:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    for _ in 0..4 {
        let fresh = client.round_trip("EVAL count(//person)");
        assert_eq!(
            fresh[0], "VAL 2",
            "stale replica served under max_lag=0: {fresh:?}"
        );
    }
    let stats = client.round_trip("STATS");
    assert!(
        stat_value(&stats, "router_lag_rejections") >= 4,
        "{stats:?}"
    );
    let topo = client.round_trip("TOPOLOGY");
    assert!(
        topo.iter()
            .any(|l| l.starts_with("REPLICA 0.0") && l.ends_with("fresh=0")),
        "{topo:?}"
    );

    strict.stop();
    replica.stop();
    primary.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

struct FollowerProc {
    child: Child,
    addr: SocketAddr,
}

/// The `vamana-replica` binary: next to this test binary if the
/// workspace was built, otherwise built on demand (tests of one crate
/// do not build another crate's binaries by default).
fn replica_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // deps/
    dir.pop(); // debug/ or release/
    let candidate = dir.join("vamana-replica");
    if !candidate.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let status = Command::new(cargo)
            .args(["build", "-p", "vamana-replica", "--bin", "vamana-replica"])
            .status()
            .expect("run cargo build");
        assert!(status.success(), "building vamana-replica failed");
    }
    candidate
}

/// Spawns the real `vamana-replica` binary and waits for its port file.
fn spawn_follower_process(primary: SocketAddr, data: &Path) -> FollowerProc {
    let port_file = data.with_extension("port");
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(replica_bin())
        .args([
            "--primary",
            &primary.to_string(),
            "--listen",
            "127.0.0.1:0",
            "--data",
            data.to_str().unwrap(),
            "--fsync",
            "never",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vamana-replica");
    let until = Instant::now() + DEADLINE;
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(Instant::now() < until, "follower never wrote {port_file:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    FollowerProc { child, addr }
}

#[test]
fn killed_replica_fails_over_within_the_health_window() {
    let dir = temp_dir("failover");
    let mut store =
        MassStore::create_durable(dir.join("primary.mass"), 512, FsyncPolicy::Never).unwrap();
    store
        .load_xml(
            "auction",
            "<site><people><person><name>Ada</name></person></people></site>",
        )
        .unwrap();
    let primary = Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // Two real follower processes streaming the primary's WAL.
    let mut f1 = spawn_follower_process(primary.addr(), &dir.join("r1.mass"));
    let mut f2 = spawn_follower_process(primary.addr(), &dir.join("r2.mass"));
    for proc in [&f1, &f2] {
        let mut c = Client::connect_retry(proc.addr, DEADLINE);
        let until = Instant::now() + DEADLINE;
        loop {
            let lag = c.round_trip("LAG");
            if lag_value(&lag, "behind") == 0 && lag_value(&lag, "applied_lsn") >= 1 {
                break;
            }
            assert!(Instant::now() < until, "follower never converged: {lag:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    let health_interval = Duration::from_millis(50);
    let router = start_router(
        vec![(
            primary.addr().to_string(),
            vec![f1.addr.to_string(), f2.addr.to_string()],
        )],
        RouterConfig {
            max_lag: 0,
            health_interval,
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect_addr(router.addr());
    for _ in 0..4 {
        let reply = client.round_trip("EVAL count(//person)");
        assert_eq!(reply[0], "VAL 1", "{reply:?}");
    }

    // kill -9 one replica mid-service: every subsequent read must still
    // be answered (failover to the sibling replica or the primary), and
    // within the health window TOPOLOGY marks the corpse down.
    f1.child.kill().expect("kill -9");
    f1.child.wait().expect("reap");
    for _ in 0..10 {
        let reply = client.round_trip("EVAL count(//person)");
        assert_eq!(reply[0], "VAL 1", "read failed during failover: {reply:?}");
    }
    let until = Instant::now() + DEADLINE;
    loop {
        let topo = client.round_trip("TOPOLOGY");
        if topo
            .iter()
            .any(|l| l.starts_with("REPLICA 0.0") && l.contains(" up=0 "))
        {
            break;
        }
        assert!(
            Instant::now() < until,
            "dead replica never marked down: {topo:?}"
        );
        std::thread::sleep(health_interval);
    }
    // And reads still flow after the mark-down.
    let reply = client.round_trip("EVAL count(//person)");
    assert_eq!(reply[0], "VAL 1", "{reply:?}");

    router.stop();
    f2.child.kill().ok();
    primary.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_primary_errors_writes_cleanly_while_reads_keep_serving() {
    let dir = temp_dir("deadprimary");
    let mut store =
        MassStore::create_durable(dir.join("primary.mass"), 512, FsyncPolicy::Never).unwrap();
    store
        .load_xml(
            "auction",
            "<site><people><person><name>Ada</name></person></people></site>",
        )
        .unwrap();
    let primary = Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let (replica, status) = fake_replica(
        primary.addr(),
        &[(
            "auction",
            "<site><people><person><name>Ada</name></person></people></site>",
        )],
    );
    // The replica is fully caught up as far as the router knows.
    status.applied_lsn.store(1, Ordering::Relaxed);

    let router = start_router(
        vec![(primary.addr().to_string(), vec![replica.addr().to_string()])],
        RouterConfig {
            max_lag: 1_000_000,
            health_interval: Duration::from_millis(50),
            retries: 0,
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect_addr(router.addr());
    let reply = client.round_trip("QUERY //person/name");
    assert!(
        reply.last().unwrap().starts_with("OK 1 row(s)"),
        "{reply:?}"
    );

    // Stop the primary. Writes must fail with a backend error — not
    // hang, not land on the read-only replica — while reads keep being
    // served by the replica, and the client connection stays usable.
    primary.stop();
    let err = client.round_trip("INSERT auction //people <person/>");
    assert!(err[0].starts_with("ERR backend"), "{err:?}");
    for _ in 0..5 {
        let reply = client.round_trip("EVAL count(//person)");
        assert_eq!(
            reply[0], "VAL 1",
            "read lost after primary death: {reply:?}"
        );
    }
    assert_eq!(client.round_trip("PING"), vec!["OK pong"]);

    router.stop();
    replica.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backend_death_mid_scatter_is_a_protocol_error_not_a_hang() {
    // Two single-primary shards; one dies between scatters. The
    // scatter that needs it must come back as one clean ERR line and
    // the client connection must survive.
    let shard0 = memory_server();
    let shard1 = memory_server();
    let router = start_router(
        vec![
            (shard0.addr().to_string(), vec![]),
            (shard1.addr().to_string(), vec![]),
        ],
        RouterConfig {
            retries: 0,
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect_addr(router.addr());
    for (name, xml) in DOCS {
        client.round_trip(&format!("LOADXML {name} {xml}"));
    }
    let healthy = client.round_trip("QUERY //person/name");
    assert!(
        healthy.last().unwrap().starts_with("OK 6 row(s)"),
        "{healthy:?}"
    );

    // Find a document on shard 1 so we can prove per-shard behavior.
    let topology = client.round_trip("TOPOLOGY");
    let on_shard0 = topology
        .iter()
        .filter_map(|l| l.strip_prefix("DOC "))
        .find(|l| l.ends_with("shard=0"))
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("a document on shard 0")
        .to_string();

    shard1.stop();
    // The cross-document scatter needs the dead shard: clean error.
    let err = client.round_trip("QUERY //person/name");
    assert!(err[0].starts_with("ERR backend"), "{err:?}");
    assert_eq!(err.len(), 1, "one clean error line: {err:?}");
    // A doc-scoped read on the surviving shard still works.
    let ok = client.round_trip(&format!("QUERY DOC {on_shard0} //person/name"));
    assert!(ok.last().unwrap().starts_with("OK"), "{ok:?}");
    // The client connection survives the failure.
    assert_eq!(client.round_trip("PING"), vec!["OK pong"]);

    router.stop();
    shard0.stop();
}
