//! Compiled-plan cache.
//!
//! Compiling and optimizing an XPath expression costs parse, plan
//! build, and a cost-model fixpoint; a serving workload repeats the
//! same expressions, so the server caches the *optimized* plan keyed by
//! `(xpath text, document id)` and validates each hit against the store
//! [generation](vamana_mass::MassStore::generation). Any mutation bumps
//! the generation, so plans optimized against stale statistics (or
//! stale documents entirely) can never be served: a generation mismatch
//! is a miss that recompiles and replaces the entry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vamana_core::{DocId, QueryPlan};

struct Entry {
    generation: u64,
    plan: Arc<QueryPlan>,
    /// Last-used stamp for LRU eviction.
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<(String, u32), Entry>,
    clock: u64,
}

/// Bounded LRU cache of optimized plans with hit/miss counters.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// A cache holding up to `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks up the plan for `(xpath, doc)` compiled at `generation`.
    /// Stale entries are dropped and counted as misses.
    pub fn get(&self, xpath: &str, doc: DocId, generation: u64) -> Option<Arc<QueryPlan>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&(xpath.to_string(), doc.0)) {
            Some(entry) if entry.generation == generation => {
                entry.stamp = clock;
                let plan = Arc::clone(&entry.plan);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            Some(_) => {
                inner.map.remove(&(xpath.to_string(), doc.0));
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the plan compiled for `(xpath, doc)` at `generation`,
    /// evicting the least-recently-used entry if full.
    pub fn insert(&self, xpath: &str, doc: DocId, generation: u64, plan: Arc<QueryPlan>) {
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            (xpath.to_string(), doc.0),
            Entry {
                generation,
                plan,
                stamp,
            },
        );
        while inner.map.len() > self.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                }
                None => break,
            }
        }
    }

    /// Drops the entry for `(xpath, doc)` regardless of generation — the
    /// write path for externally invalidated plans (e.g. a newly
    /// materialized view supersedes the plan optimized before it
    /// existed).
    pub fn remove(&self, xpath: &str, doc: DocId) {
        self.lock().map.remove(&(xpath.to_string(), doc.0));
    }

    /// Drops every entry for `doc` not compiled at `generation`. The
    /// generation check on `get` already refuses stale hits, but only
    /// for the key being probed — without this sweep a write-heavy
    /// workload leaves one dead entry behind per (xpath, write)
    /// until LRU pressure finds them.
    pub fn purge_doc(&self, doc: DocId, generation: u64) {
        self.lock()
            .map
            .retain(|(_, d), e| *d != doc.0 || e.generation == generation);
    }

    /// Drops every entry. Loads already invalidate via the generation
    /// check; this additionally releases the memory of plans that will
    /// never validate again.
    pub fn clear(&self) {
        self.lock().map.clear();
    }

    /// Current number of cached plans.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_core::{Engine, MassStore};

    fn plan_for(e: &Engine, xpath: &str) -> Arc<QueryPlan> {
        Arc::new(e.compile(xpath).unwrap())
    }

    fn engine() -> Engine {
        let mut store = MassStore::open_memory();
        store.load_xml("d", "<r><a/><b/></r>").unwrap();
        Engine::new(store)
    }

    #[test]
    fn hit_requires_matching_generation() {
        let e = engine();
        let cache = PlanCache::new(8);
        let doc = DocId(0);
        assert!(cache.get("//a", doc, 1).is_none());
        cache.insert("//a", doc, 1, plan_for(&e, "//a"));
        assert!(cache.get("//a", doc, 1).is_some());
        // A mutation bumps the generation: the entry no longer validates.
        assert!(cache.get("//a", doc, 2).is_none());
        assert_eq!(cache.len(), 0, "stale entry must be dropped");
        assert_eq!(cache.counters(), (1, 2));
    }

    #[test]
    fn lru_eviction_bounds_size() {
        let e = engine();
        let cache = PlanCache::new(2);
        let doc = DocId(0);
        cache.insert("//a", doc, 1, plan_for(&e, "//a"));
        cache.insert("//b", doc, 1, plan_for(&e, "//b"));
        assert!(cache.get("//a", doc, 1).is_some()); // refresh //a
        cache.insert("//r", doc, 1, plan_for(&e, "//r"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("//a", doc, 1).is_some(), "recently used survives");
        assert!(cache.get("//b", doc, 1).is_none(), "LRU entry evicted");
    }

    #[test]
    fn write_heavy_loop_cannot_grow_the_map() {
        let e = engine();
        let cache = PlanCache::new(256);
        let doc = DocId(0);
        // Each "write" bumps the generation; the workload re-plans two
        // expressions per generation. Without purge_doc the map would
        // hold one dead entry per (xpath, generation) pair.
        for generation in 1..=100u64 {
            for xpath in ["//a", "//b"] {
                if cache.get(xpath, doc, generation).is_none() {
                    cache.insert(xpath, doc, generation, plan_for(&e, xpath));
                }
            }
            cache.purge_doc(doc, generation + 1); // the write lands here
        }
        assert!(
            cache.len() <= 2,
            "stale generations piled up: {} entries",
            cache.len()
        );
    }

    #[test]
    fn remove_drops_entry_regardless_of_generation() {
        let e = engine();
        let cache = PlanCache::new(8);
        let doc = DocId(0);
        cache.insert("//a", doc, 1, plan_for(&e, "//a"));
        cache.remove("//a", doc);
        assert!(cache.get("//a", doc, 1).is_none());
    }

    #[test]
    fn clear_empties() {
        let e = engine();
        let cache = PlanCache::new(4);
        cache.insert("//a", DocId(0), 1, plan_for(&e, "//a"));
        cache.clear();
        assert!(cache.is_empty());
    }
}
