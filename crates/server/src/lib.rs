//! # vamana-server
//!
//! A concurrent query service over one shared VAMANA engine: a TCP
//! line protocol multiplexed by a nonblocking event core (or a
//! thread-per-connection core, see [`CoreMode`]), executed by a worker
//! thread pool, with a compiled-plan cache, bounded-queue admission
//! control, per-query deadlines, and a metrics registry.
//!
//! ## Protocol
//!
//! The authoritative wire grammar lives in `DESIGN.md` ("Wire
//! protocol"). One request per line, UTF-8; every request produces one
//! or more response lines ending with `OK …` or a single
//! `ERR <kind> <message>`. The verbs:
//!
//! ```text
//! QUERY [DOC <doc>] <xpath>   rows over all (or one) document(s)
//! EVAL [DOC <doc>] <xpath>    full XPath on document 0 (or <doc>)
//! EXPLAIN [JSON] [DOC <doc>] <xpath>   plans + optimizer trace
//! ANALYZE [JSON] [DOC <doc>] <xpath>   instrumented run
//! LOADXML <name> <xml>        load inline XML
//! LOAD <name> <path>          load an XML file
//! INSERT <doc> <target-xpath> <fragment>
//! DELETE <doc> <target-xpath>
//! CHECKPOINT                  fold WAL into pages, truncate
//! LIMIT <n>                   per-connection row cap (0 = unlimited)
//! STATS                       metrics snapshot
//! DOCS                        loaded documents, in load order
//! CACHE [LIST] | CACHE CLEAR  materialized views
//! LAG                         replication gauges
//! REPLICATE <from_lsn>        become a WAL frame feed
//! PING / QUIT
//! ```
//!
//! On a server configured as a replica ([`ServerConfig::replica`]),
//! every mutating verb answers `ERR readonly` naming the primary. The
//! `DOC`-scoped read forms exist for front tiers: `vamana-router`
//! scatters a cross-document `QUERY` as per-document `QUERY DOC` calls
//! to the shards that own each document and concatenates the results in
//! global load order (which is exactly single-store document order,
//! because FLEX keys order by load ordinal).
//!
//! ## Threading model
//!
//! Two connection cores share everything below the parser:
//!
//! - [`CoreMode::Event`] (default): one event-loop thread owns every
//!   connection socket nonblockingly (see [`event`]); requests are
//!   parsed pipelined and idle connections cost no threads.
//! - [`CoreMode::Threaded`]: one (detached) thread per connection, kept
//!   as the pre-PR-9 baseline for comparison benchmarks.
//!
//! Under either core, a fixed worker pool executes jobs against the
//! shared engine. The queue between parser and workers is bounded:
//! a full queue rejects at admission with `ERR busy` rather than
//! queueing unboundedly, and every job carries a deadline checked when
//! dequeued and between result batches. Control-plane verbs (`STATS`,
//! `LAG`, `CACHE`, `DOCS`) bypass the capacity check so monitoring and
//! router health probes stay answerable under saturation. Updates and
//! checkpoints additionally serialize on a single-writer lane.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vamana_core::{exec::BATCH_SIZE, DocId, Engine, SharedEngine, UpdateOp, Value};

pub mod cache;
pub mod event;
mod feed;
pub mod metrics;
pub mod poll;
pub mod pool;
pub mod render;
pub mod testkit;

pub use cache::PlanCache;
pub use metrics::Metrics;
pub use render::{render_rows, RenderOptions, Rendered};

use event::{Completions, ConnId, Dispatch, LineService};
use metrics::ActiveGuard;
use pool::WorkerPool;

/// Which connection core the server runs (the worker pool underneath is
/// the same either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreMode {
    /// Nonblocking event loop: one thread for all connection I/O,
    /// pipelined request parsing, idle connections cost no threads.
    /// Requires epoll (Linux).
    Event,
    /// One thread per connection — the PR 1 design, kept for baseline
    /// benchmarks and as a portability fallback.
    Threaded,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Jobs admitted but not yet running; beyond this, `ERR busy`.
    pub queue_depth: usize,
    /// Per-query deadline, from admission to last tuple.
    pub query_timeout: Duration,
    /// Compiled plans cached across queries.
    pub plan_cache_size: usize,
    /// Default per-connection row cap (`LIMIT` overrides; 0 = unlimited).
    pub default_limit: usize,
    /// Characters of string-value shown per row.
    pub value_width: usize,
    /// Width of the engine's intra-query scan pool, applied to the
    /// engine at bind time. `0` leaves the engine's own setting (one
    /// scan worker per core by default) untouched.
    pub scan_workers: usize,
    /// Committed WAL frames retained for replication catch-up on durable
    /// stores. A follower whose resume LSN has aged out of this window
    /// is snapshot-shipped instead of streamed.
    pub repl_retain: usize,
    /// How long an idle replication feed waits for new commits before
    /// emitting a heartbeat frame (followers use it for lag and
    /// liveness).
    pub feed_heartbeat: Duration,
    /// `Some` turns this server into a read-only replica: write verbs
    /// return a redirect error naming the primary, and `LAG`/`STATS`
    /// report the sync status the replica runtime keeps here.
    pub replica: Option<ReplicaRole>,
    /// Connection core; see [`CoreMode`].
    pub core: CoreMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            query_timeout: Duration::from_secs(10),
            plan_cache_size: 256,
            default_limit: 20,
            value_width: 200,
            scan_workers: 0,
            repl_retain: vamana_mass::DEFAULT_RETAIN_FRAMES,
            feed_heartbeat: Duration::from_millis(200),
            replica: None,
            core: CoreMode::Event,
        }
    }
}

/// Live sync counters a replica runtime shares with its read-only
/// server (reported by `LAG` and `STATS`).
#[derive(Debug, Default)]
pub struct ReplicaStatus {
    /// LSN of the last frame received from the primary.
    pub received_lsn: AtomicU64,
    /// LSN of the last commit applied to the local store.
    pub applied_lsn: AtomicU64,
    /// The primary's last committed LSN as of the latest frame or
    /// heartbeat.
    pub primary_last_lsn: AtomicU64,
    /// Whether the feed connection is currently up.
    pub connected: AtomicBool,
    /// Reconnect attempts since start.
    pub reconnects: AtomicU64,
    /// Snapshot installs since start.
    pub snapshots: AtomicU64,
    /// Total frames received (including heartbeats).
    pub frames: AtomicU64,
}

/// Marks a server as a read-only replica of `primary`.
#[derive(Debug, Clone)]
pub struct ReplicaRole {
    /// Address writes should be redirected to.
    pub primary: String,
    /// Shared sync status, updated by the replica's sync loop.
    pub status: Arc<ReplicaStatus>,
}

/// Errors a job can produce (I/O errors are handled per connection).
#[derive(Debug)]
pub enum ServerError {
    /// Rejected at admission: queue full.
    Busy,
    /// Deadline exceeded, queued or mid-execution.
    Timeout(Duration),
    /// Compile or execution failure.
    Query(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Busy => write!(f, "busy server at capacity, retry later"),
            ServerError::Timeout(t) => write!(f, "timeout query exceeded {}ms", t.as_millis()),
            ServerError::Query(msg) => write!(f, "query {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// State shared by the accept thread, connection threads, and workers.
pub struct Shared {
    engine: Arc<SharedEngine>,
    cache: PlanCache,
    metrics: Metrics,
    config: ServerConfig,
    stopping: AtomicBool,
    /// Single-writer lane: updates and checkpoints serialize here
    /// *before* taking the engine write lock, so at most one worker
    /// blocks readers at a time and the rest queue with their deadlines
    /// still ticking.
    writer_lane: Mutex<()>,
    /// Replication feed connections currently streaming.
    feeds: AtomicU64,
}

impl Shared {
    /// The engine behind the service.
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.engine
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }
}

/// Where a `LOAD`/`LOADXML` payload comes from.
enum LoadSource {
    /// Inline XML on the request line.
    Inline(String),
    /// A path readable by the server process.
    File(String),
}

/// What one pooled job asks for.
enum Request {
    Query {
        xpath: String,
        doc: Option<String>,
    },
    Eval {
        xpath: String,
        doc: Option<String>,
    },
    Explain {
        xpath: String,
        json: bool,
        doc: Option<String>,
    },
    Analyze {
        xpath: String,
        json: bool,
        doc: Option<String>,
    },
    Update {
        doc: String,
        op: UpdateOp,
    },
    Checkpoint,
    Load {
        name: String,
        source: LoadSource,
    },
    Stats,
    Docs,
    CacheList,
    CacheClear,
    Lag,
}

impl Request {
    /// Control-plane requests skip the query metrics (and are submitted
    /// on the control lane, bypassing admission capacity).
    fn is_control(&self) -> bool {
        matches!(
            self,
            Request::Stats
                | Request::Docs
                | Request::CacheList
                | Request::CacheClear
                | Request::Lag
        )
    }
}

/// Where a job's response goes.
pub(crate) enum ReplyTo {
    /// Threaded core: the connection thread blocks on this channel.
    Sync(SyncSender<Result<Outcome, ServerError>>),
    /// Event core: serialized bytes are delivered to the loop.
    Event {
        completions: Completions,
        conn: ConnId,
        seq: u64,
    },
}

impl ReplyTo {
    fn deliver(self, result: Result<Outcome, ServerError>) {
        match self {
            // A send error means the client hung up; nothing to do.
            ReplyTo::Sync(tx) => {
                let _ = tx.send(result);
            }
            ReplyTo::Event {
                completions,
                conn,
                seq,
            } => completions.complete(conn, seq, reply_bytes(&result)),
        }
    }
}

/// One unit of work handed to the pool.
pub struct Job {
    request: Request,
    limit: usize,
    deadline: Instant,
    reply: ReplyTo,
}

/// A successful job result, ready to serialize.
enum Outcome {
    Rows {
        rendered: Rendered,
        cached: bool,
        elapsed: Duration,
        buffer_hits: u64,
        buffer_misses: u64,
        batch_pins: u64,
        pins_saved: u64,
    },
    Scalar {
        text: String,
        elapsed: Duration,
    },
    /// An `EXPLAIN`/`ANALYZE` report: each line goes out as `PLAN …`.
    Report {
        lines: Vec<String>,
        elapsed: Duration,
    },
    /// An applied `INSERT`/`DELETE`.
    Updated {
        matched: u64,
        inserted: u64,
        deleted: u64,
        lsn: u64,
        generation: u64,
        writer_wait: Duration,
        elapsed: Duration,
    },
    /// A completed `CHECKPOINT`.
    Checkpointed {
        records: u64,
        last_lsn: u64,
        elapsed: Duration,
    },
    /// A completed `LOAD`/`LOADXML`.
    Loaded {
        id: u32,
        generation: u64,
    },
    /// Pre-formatted protocol lines plus the terminator (`STATS`,
    /// `DOCS`, `CACHE`, `LAG`).
    Lines {
        lines: Vec<String>,
        ok: String,
    },
}

fn query_err(e: impl std::fmt::Display) -> ServerError {
    ServerError::Query(e.to_string())
}

/// Runs one job on a worker thread and replies to its connection.
pub(crate) fn execute_job(shared: &Shared, job: Job) {
    let _active = ActiveGuard::enter(&shared.metrics);
    let now = Instant::now();
    // Control verbs are not deadline-bound: STATS/LAG must answer even
    // under an aggressive query-timeout policy.
    if now >= job.deadline && !job.request.is_control() {
        shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
        job.reply
            .deliver(Err(ServerError::Timeout(shared.config.query_timeout)));
        return;
    }
    let result = match &job.request {
        Request::Query { xpath, doc } => {
            run_query(shared, xpath, doc.as_deref(), job.limit, job.deadline)
        }
        Request::Eval { xpath, doc } => run_eval(shared, xpath, doc.as_deref(), job.limit),
        Request::Explain { xpath, json, doc } => run_explain(shared, xpath, *json, doc.as_deref()),
        Request::Analyze { xpath, json, doc } => run_analyze(shared, xpath, *json, doc.as_deref()),
        Request::Update { doc, op } => run_update(shared, doc, op, job.deadline),
        Request::Checkpoint => run_checkpoint(shared, job.deadline),
        Request::Load { name, source } => run_load(shared, name, source),
        Request::Stats => Ok(Outcome::Lines {
            lines: render_stats(shared),
            ok: "OK".into(),
        }),
        Request::Docs => run_docs(shared),
        Request::CacheList => {
            let views = shared.engine.read().views().list();
            let lines = views
                .iter()
                .map(|v| {
                    format!(
                        "VIEW doc={} rows={} bytes={} generation={} hits={} {}",
                        v.doc,
                        v.rows,
                        v.bytes,
                        v.generation,
                        v.hits,
                        escape_line(&v.xpath)
                    )
                })
                .collect::<Vec<_>>();
            Ok(Outcome::Lines {
                ok: format!("OK {} view(s)", lines.len()),
                lines,
            })
        }
        Request::CacheClear => {
            shared.engine.read().views().clear();
            shared.cache.clear();
            Ok(Outcome::Lines {
                lines: Vec::new(),
                ok: "OK cache cleared".into(),
            })
        }
        Request::Lag => Ok(Outcome::Lines {
            lines: render_lag(shared),
            ok: "OK lag".into(),
        }),
    };
    // Control verbs and loads are not queries: keep the latency
    // histogram and error counters meaningful for query traffic.
    let is_query = !job.request.is_control() && !matches!(job.request, Request::Load { .. });
    match &result {
        Ok(outcome) if is_query => {
            shared.metrics.queries.fetch_add(1, Ordering::Relaxed);
            let (elapsed, rows, hits, misses, pins, saved) = match outcome {
                Outcome::Rows {
                    rendered,
                    elapsed,
                    buffer_hits,
                    buffer_misses,
                    batch_pins,
                    pins_saved,
                    ..
                } => (
                    *elapsed,
                    rendered.total as u64,
                    *buffer_hits,
                    *buffer_misses,
                    *batch_pins,
                    *pins_saved,
                ),
                Outcome::Scalar { elapsed, .. }
                | Outcome::Report { elapsed, .. }
                | Outcome::Updated { elapsed, .. }
                | Outcome::Checkpointed { elapsed, .. } => (*elapsed, 0, 0, 0, 0, 0),
                Outcome::Loaded { .. } | Outcome::Lines { .. } => (Duration::ZERO, 0, 0, 0, 0, 0),
            };
            shared.metrics.latency.record(elapsed);
            shared
                .metrics
                .rows_returned
                .fetch_add(rows, Ordering::Relaxed);
            shared
                .metrics
                .buffer_hits
                .fetch_add(hits, Ordering::Relaxed);
            shared
                .metrics
                .buffer_misses
                .fetch_add(misses, Ordering::Relaxed);
            shared.metrics.batch_pins.fetch_add(pins, Ordering::Relaxed);
            shared
                .metrics
                .pins_saved
                .fetch_add(saved, Ordering::Relaxed);
        }
        Ok(_) => {}
        Err(ServerError::Timeout(_)) => {
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) if is_query => {
            shared.metrics.queries.fetch_add(1, Ordering::Relaxed);
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {}
    }
    job.reply.deliver(result);
}

/// Executes `xpath` over every document (or just `doc`) via the plan
/// cache, enforcing `deadline` between result batches, and renders up
/// to `limit` rows.
fn run_query(
    shared: &Shared,
    xpath: &str,
    doc: Option<&str>,
    limit: usize,
    deadline: Instant,
) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    if engine.store().documents().is_empty() {
        return Err(ServerError::Query(
            "no documents loaded (use LOADXML or LOAD)".into(),
        ));
    }
    let docs: Vec<DocId> = match doc {
        Some(token) => vec![resolve_doc(&engine, token)
            .ok_or_else(|| ServerError::Query(format!("no such document {token}")))?],
        None => (0..engine.store().documents().len() as u32)
            .map(DocId)
            .collect(),
    };
    let start = Instant::now();
    let before = engine.store().buffer_pool().stats();
    let mut all = Vec::new();
    let mut all_cached = true;
    for doc in docs {
        // Plans validate against the *per-document* generation: an
        // update to one document invalidates exactly that document's
        // cached plans, and loads/updates elsewhere leave them warm.
        let generation = engine.store().doc_generation(doc);
        let plan = match shared.cache.get(xpath, doc, generation) {
            Some(plan) => plan,
            None => {
                all_cached = false;
                let compiled = engine.compile(xpath).map_err(query_err)?;
                let optimized = if engine.options().optimize {
                    engine.optimize_plan(compiled, doc).map_err(query_err)?.plan
                } else {
                    compiled
                };
                let plan = Arc::new(optimized);
                shared
                    .cache
                    .insert(xpath, doc, generation, Arc::clone(&plan));
                plan
            }
        };
        let mut stream = engine
            .stream_plan((*plan).clone(), doc)
            .map_err(query_err)?;
        // Batches land straight in the result buffer — no per-tuple
        // dispatch between the executor and the render path. The
        // deadline is checked once per batch (≤ BATCH_SIZE tuples).
        let doc_start = all.len();
        while stream.next_batch(&mut all, BATCH_SIZE).map_err(query_err)? > 0 {
            if Instant::now() >= deadline {
                return Err(ServerError::Timeout(shared.config.query_timeout));
            }
        }
        if Instant::now() >= deadline {
            return Err(ServerError::Timeout(shared.config.query_timeout));
        }
        // Feed this document's result to the view cache. A fresh
        // admission supersedes the compiled plan cached above — drop it
        // so the next compilation goes through the view-rewrite pass.
        if engine.observe_result(doc, xpath, &all[doc_start..]) {
            shared.cache.remove(xpath, doc);
        }
    }
    // XPath node-set semantics across documents: document order, no
    // duplicates (streams yield pipeline order within one document).
    // Keys order by load ordinal across documents, so this is also the
    // global order a front tier reproduces by concatenating per-document
    // results in load order.
    all.sort_by(|a, b| a.key.cmp(&b.key));
    all.dedup_by(|a, b| a.key == b.key);
    let rendered = render_rows(
        &engine,
        &all,
        &RenderOptions {
            limit,
            value_width: shared.config.value_width,
        },
    )
    .map_err(query_err)?;
    // Snapshot after rendering: index-answerable queries do their page
    // reads in string-value extraction, not plan execution.
    let after = engine.store().buffer_pool().stats();
    Ok(Outcome::Rows {
        rendered,
        cached: all_cached,
        elapsed: start.elapsed(),
        buffer_hits: after.hits.saturating_sub(before.hits),
        buffer_misses: after.misses.saturating_sub(before.misses),
        batch_pins: after.batch_pins.saturating_sub(before.batch_pins),
        pins_saved: after.pins_saved.saturating_sub(before.pins_saved),
    })
}

/// Resolves the target document of an `EVAL`/`EXPLAIN`/`ANALYZE`:
/// the `DOC` operand if given, document 0 otherwise.
fn resolve_read_doc(engine: &Engine, doc: Option<&str>) -> Result<DocId, ServerError> {
    if engine.store().documents().is_empty() {
        return Err(ServerError::Query(
            "no documents loaded (use LOADXML or LOAD)".into(),
        ));
    }
    match doc {
        Some(token) => resolve_doc(engine, token)
            .ok_or_else(|| ServerError::Query(format!("no such document {token}"))),
        None => Ok(DocId(0)),
    }
}

/// Evaluates `xpath` as a full XPath expression — scalars come back as
/// `VAL`, node-sets as rows.
fn run_eval(
    shared: &Shared,
    xpath: &str,
    doc: Option<&str>,
    limit: usize,
) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    let doc = resolve_read_doc(&engine, doc)?;
    let start = Instant::now();
    let before = engine.store().buffer_pool().stats();
    let value = engine.evaluate(doc, xpath).map_err(query_err)?;
    let elapsed = start.elapsed();
    match value {
        Value::Nodes(nodes) => {
            let rendered = render_rows(
                &engine,
                &nodes,
                &RenderOptions {
                    limit,
                    value_width: shared.config.value_width,
                },
            )
            .map_err(query_err)?;
            let after = engine.store().buffer_pool().stats();
            Ok(Outcome::Rows {
                rendered,
                cached: false,
                elapsed,
                buffer_hits: after.hits.saturating_sub(before.hits),
                buffer_misses: after.misses.saturating_sub(before.misses),
                batch_pins: after.batch_pins.saturating_sub(before.batch_pins),
                pins_saved: after.pins_saved.saturating_sub(before.pins_saved),
            })
        }
        Value::Num(n) => Ok(Outcome::Scalar {
            text: n.to_string(),
            elapsed,
        }),
        Value::Str(s) => Ok(Outcome::Scalar { text: s, elapsed }),
        Value::Bool(b) => Ok(Outcome::Scalar {
            text: b.to_string(),
            elapsed,
        }),
    }
}

/// Produces the `EXPLAIN` report for `xpath`: both plans with estimate
/// cards plus the optimizer's pass log.
fn run_explain(
    shared: &Shared,
    xpath: &str,
    json: bool,
    doc: Option<&str>,
) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    let doc = resolve_read_doc(&engine, doc)?;
    let start = Instant::now();
    let ex = engine.explain(doc, xpath).map_err(query_err)?;
    let elapsed = start.elapsed();
    let lines = if json {
        vec![explain_json(xpath, &ex)]
    } else {
        let mut text = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(text, "default plan (Σ tuple volume {}):", ex.default_cost);
        text.push_str(&ex.default_plan);
        let _ = writeln!(
            text,
            "optimized plan (Σ tuple volume {}; rules {:?}; {} iteration(s)):",
            ex.optimized_cost, ex.applied, ex.iterations
        );
        text.push_str(&ex.optimized_plan);
        text.push_str("optimizer trace:\n");
        text.push_str(&ex.opt_trace.render());
        text.lines().map(str::to_string).collect()
    };
    Ok(Outcome::Report { lines, elapsed })
}

/// Runs `xpath` with per-operator instrumentation and reports
/// estimated-vs-actual cardinalities (`EXPLAIN ANALYZE`).
fn run_analyze(
    shared: &Shared,
    xpath: &str,
    json: bool,
    doc: Option<&str>,
) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    let doc = resolve_read_doc(&engine, doc)?;
    let analysis = engine.analyze_doc(doc, xpath).map_err(query_err)?;
    let elapsed = analysis.profile.elapsed;
    let lines = if json {
        vec![analysis.render_json()]
    } else {
        let mut text = analysis.render();
        text.push_str("optimizer trace:\n");
        text.push_str(&analysis.opt_trace.render());
        text.lines().map(str::to_string).collect()
    };
    Ok(Outcome::Report { lines, elapsed })
}

/// Resolves a protocol document token — a numeric id or a document
/// name — against the store.
fn resolve_doc(engine: &Engine, token: &str) -> Option<DocId> {
    let docs = engine.store().documents();
    if let Ok(i) = token.parse::<u32>() {
        if (i as usize) < docs.len() {
            return Some(DocId(i));
        }
    }
    docs.iter()
        .position(|d| &*d.name == token)
        .map(|i| DocId(i as u32))
}

/// Applies an `INSERT`/`DELETE` on the single-writer lane: serialize
/// against other writers first (deadline still enforced), then take the
/// engine write lock and route the mutation through
/// [`Engine::apply_update`] — and through the WAL on durable stores.
fn run_update(
    shared: &Shared,
    doc: &str,
    op: &UpdateOp,
    deadline: Instant,
) -> Result<Outcome, ServerError> {
    let _lane = shared.writer_lane.lock().unwrap_or_else(|p| p.into_inner());
    if Instant::now() >= deadline {
        return Err(ServerError::Timeout(shared.config.query_timeout));
    }
    let mut engine = shared.engine.write();
    let Some(doc) = resolve_doc(&engine, doc) else {
        return Err(ServerError::Query(format!("no such document {doc}")));
    };
    let start = Instant::now();
    let outcome = engine.apply_update(doc, op).map_err(query_err)?;
    // Sweep the written document's superseded plans out of the cache;
    // without this every (xpath, old-generation) pair would linger until
    // individually probed or LRU-evicted.
    shared.cache.purge_doc(doc, outcome.doc_generation);
    shared.metrics.updates.fetch_add(1, Ordering::Relaxed);
    shared.metrics.writer_wait_us.fetch_add(
        outcome.profile.writer_wait.as_micros() as u64,
        Ordering::Relaxed,
    );
    Ok(Outcome::Updated {
        matched: outcome.matched,
        inserted: outcome.inserted,
        deleted: outcome.deleted,
        lsn: outcome.lsn,
        generation: outcome.doc_generation,
        writer_wait: outcome.profile.writer_wait,
        elapsed: start.elapsed(),
    })
}

/// Folds the WAL into the page store under the single-writer lane.
fn run_checkpoint(shared: &Shared, deadline: Instant) -> Result<Outcome, ServerError> {
    let _lane = shared.writer_lane.lock().unwrap_or_else(|p| p.into_inner());
    if Instant::now() >= deadline {
        return Err(ServerError::Timeout(shared.config.query_timeout));
    }
    let start = Instant::now();
    let stats = shared.engine.write().checkpoint().map_err(query_err)?;
    shared.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
    Ok(Outcome::Checkpointed {
        records: stats.depth,
        last_lsn: stats.last_lsn,
        elapsed: start.elapsed(),
    })
}

/// Handles `LOAD`/`LOADXML` on a worker (engine write lock).
fn run_load(shared: &Shared, name: &str, source: &LoadSource) -> Result<Outcome, ServerError> {
    let xml = match source {
        LoadSource::Inline(xml) => xml.clone(),
        LoadSource::File(path) => std::fs::read_to_string(path)
            .map_err(|e| ServerError::Query(format!("cannot read {path}: {e}")))?,
    };
    // No cache clear: plans validate per document, and a load never
    // changes an existing document's generation — other documents'
    // cached plans stay warm.
    let id = shared.engine.load_xml(name, &xml).map_err(query_err)?;
    Ok(Outcome::Loaded {
        id: id.0,
        generation: shared.engine.generation(),
    })
}

/// Lists loaded documents in load order (`DOCS`) — front tiers use this
/// to bootstrap their document registry from running shards.
fn run_docs(shared: &Shared) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    let lines: Vec<String> = engine
        .store()
        .documents()
        .iter()
        .enumerate()
        .map(|(i, d)| {
            format!(
                "DOC {} {} generation={}",
                i,
                d.name,
                engine.store().doc_generation(DocId(i as u32))
            )
        })
        .collect();
    Ok(Outcome::Lines {
        ok: format!("OK {} document(s)", lines.len()),
        lines,
    })
}

/// Hand-rolled JSON for `EXPLAIN JSON` (ANALYZE reuses
/// [`vamana_core::Analysis::render_json`]).
fn explain_json(xpath: &str, ex: &vamana_core::Explain) -> String {
    use std::fmt::Write as _;
    use vamana_core::explain::escape_json;
    let mut s = String::from("{");
    let _ = write!(s, "\"xpath\":\"{}\",", escape_json(xpath));
    let _ = write!(s, "\"default_cost\":{},", ex.default_cost);
    let _ = write!(s, "\"optimized_cost\":{},", ex.optimized_cost);
    let _ = write!(s, "\"iterations\":{},", ex.iterations);
    s.push_str("\"applied\":[");
    for (i, rule) in ex.applied.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", escape_json(rule));
    }
    let _ = write!(
        s,
        "],\"default_plan\":\"{}\",\"optimized_plan\":\"{}\",\"trace\":[",
        escape_json(&ex.default_plan),
        escape_json(&ex.optimized_plan)
    );
    for (i, line) in ex.opt_trace.render().lines().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", escape_json(line));
    }
    s.push_str("]}");
    s
}

/// Protocol values are single-line: escape the characters that would
/// break framing.
fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// The query service: a TCP listener plus the worker pool behind it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    pool: Arc<WorkerPool<Job>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:4050`, port 0 for ephemeral) and
    /// spins up the worker pool over `engine`.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        engine: Engine,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::bind_shared(addr, Arc::new(SharedEngine::new(engine)), config)
    }

    /// Like [`Server::bind`], but over an engine the caller keeps a
    /// handle to — the REPL's `.serve` shares its session engine with
    /// the service this way.
    pub fn bind_shared(
        addr: impl std::net::ToSocketAddrs,
        engine: Arc<SharedEngine>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        {
            let mut guard = engine.write();
            if config.scan_workers > 0 {
                guard.options_mut().parallel_workers = config.scan_workers;
            }
            // Semantic result caching is opt-in per process: the
            // VAMANA_VIEWS environment variable enables it on servers
            // whose embedder did not set `EngineOptions::views` itself
            // (the replica e2e suite turns it on for spawned followers
            // this way).
            if matches!(
                std::env::var("VAMANA_VIEWS").ok().as_deref(),
                Some("1") | Some("on") | Some("true")
            ) {
                guard.options_mut().views = true;
            }
            // Whole-query fusion gets the same opt-in: VAMANA_FUSE
            // enables the cost-gated fusion pass on servers whose
            // embedder left `EngineOptions::fuse` at its default.
            if matches!(
                std::env::var("VAMANA_FUSE").ok().as_deref(),
                Some("1") | Some("on") | Some("true")
            ) {
                guard.options_mut().fuse = true;
            }
            // Durable stores get a replication ring at bind time so the
            // `REPLICATE` feed can serve committed frames; checkpoints
            // truncate only the file log, never this ring.
            if guard.store().is_durable() && guard.store().replication_log().is_none() {
                guard
                    .store_mut()
                    .and_then(|s| {
                        s.attach_replication(config.repl_retain)
                            .map_err(vamana_core::EngineError::Storage)
                    })
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
            }
        }
        let shared = Arc::new(Shared {
            engine,
            cache: PlanCache::new(config.plan_cache_size),
            metrics: Metrics::default(),
            config: config.clone(),
            stopping: AtomicBool::new(false),
            writer_lane: Mutex::new(()),
            feeds: AtomicU64::new(0),
        });
        let pool = {
            let shared = Arc::clone(&shared);
            Arc::new(WorkerPool::new(
                config.workers,
                config.queue_depth,
                "vamana-worker",
                move |job| execute_job(&shared, job),
            ))
        };
        Ok(Server {
            listener,
            shared,
            pool,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state, for embedding (the REPL inspects metrics).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Serves until [`ServerHandle::stop`] flips the stop flag (or
    /// forever when run directly), on the configured [`CoreMode`].
    pub fn run(self) -> std::io::Result<()> {
        match self.shared.config.core {
            CoreMode::Event => self.run_event(),
            CoreMode::Threaded => self.run_threaded(),
        }
    }

    /// The nonblocking core: one event-loop thread for every
    /// connection (see [`event`]).
    fn run_event(self) -> std::io::Result<()> {
        let completions = Completions::new()?;
        let service = Arc::new(EventService {
            shared: Arc::clone(&self.shared),
            pool: Arc::clone(&self.pool),
            completions: completions.clone(),
            limits: Mutex::new(HashMap::new()),
        });
        let shared = Arc::clone(&self.shared);
        event::run_event_loop(self.listener, service, completions, move || {
            shared.stopping.load(Ordering::SeqCst)
        })
    }

    /// The PR 1 core: accepted connections get their own thread; the
    /// accept loop itself never does protocol work.
    fn run_threaded(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            self.shared
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let pool = Arc::clone(&self.pool);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &shared, &pool);
            });
        }
        Ok(())
    }

    /// Runs the connection core on a background thread, returning a
    /// handle to stop it (used by tests and the REPL's `.serve`).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::Builder::new()
            .name("vamana-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// A running server; dropping it stops the accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (metrics, cache, engine) of the running server.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Stops accepting and joins the connection core. Existing
    /// connections finish their in-flight request and then fail on the
    /// next read.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the core with a no-op connection (works for both the
        // blocking accept loop and the poller).
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// What the shared request parser decided about one line.
enum Parsed {
    /// Answer immediately with this one line (no trailing newline).
    Inline(String),
    /// Submit on the admission-controlled lane.
    Job(Request),
    /// Submit on the control lane (no capacity rejection).
    Control(Request),
    /// Set the per-connection row cap.
    Limit(usize),
    /// `QUIT`.
    Quit,
    /// `REPLICATE <from>`: the connection becomes a WAL frame feed.
    Feed(u64),
}

/// Parses one request line into a [`Parsed`] action. Shared verbatim by
/// both connection cores so the grammar cannot drift between them.
fn parse_line(config: &ServerConfig, request: &str) -> Parsed {
    let (verb, rest) = match request.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (request, ""),
    };
    // A replica is read-only: every mutating verb is redirected to
    // the primary (queries, stats and lag checks proceed normally).
    if let Some(role) = &config.replica {
        if matches!(
            verb,
            "LOADXML" | "LOAD" | "INSERT" | "DELETE" | "CHECKPOINT"
        ) {
            return Parsed::Inline(format!(
                "ERR readonly replica; send writes to the primary at {}",
                role.primary
            ));
        }
    }
    match verb {
        "PING" => Parsed::Inline("OK pong".into()),
        "QUIT" => Parsed::Quit,
        "LIMIT" => match rest.parse::<usize>() {
            Ok(n) => Parsed::Limit(n),
            Err(_) => Parsed::Inline("ERR proto LIMIT needs a non-negative integer".into()),
        },
        "STATS" => Parsed::Control(Request::Stats),
        "DOCS" => Parsed::Control(Request::Docs),
        // Materialized-view inspection. Allowed on replicas: the
        // view cache is node-local derived state, not document data.
        "CACHE" => match rest {
            "" | "LIST" => Parsed::Control(Request::CacheList),
            "CLEAR" => Parsed::Control(Request::CacheClear),
            _ => Parsed::Inline("ERR proto CACHE takes LIST or CLEAR".into()),
        },
        "LAG" => Parsed::Control(Request::Lag),
        "REPLICATE" => match rest.parse::<u64>() {
            Ok(from) => Parsed::Feed(from),
            Err(_) => Parsed::Inline("ERR proto REPLICATE needs a starting LSN".into()),
        },
        "LOADXML" | "LOAD" => {
            let Some((name, payload)) = rest.split_once(' ').map(|(n, p)| (n, p.trim())) else {
                return Parsed::Inline(format!("ERR proto {verb} needs a name and a payload"));
            };
            let source = if verb == "LOAD" {
                LoadSource::File(payload.to_string())
            } else {
                LoadSource::Inline(payload.to_string())
            };
            Parsed::Job(Request::Load {
                name: name.to_string(),
                source,
            })
        }
        "INSERT" | "DELETE" | "CHECKPOINT" => match parse_update(verb, rest) {
            Ok(request) => Parsed::Job(request),
            Err(msg) => Parsed::Inline(format!("ERR proto {msg}")),
        },
        "QUERY" | "EVAL" | "EXPLAIN" | "ANALYZE" => {
            // EXPLAIN/ANALYZE take an optional JSON modifier, and every
            // read verb an optional DOC scope, before the expression:
            // `EXPLAIN JSON DOC auction //a/b`.
            let (json, rest) = match rest.strip_prefix("JSON") {
                Some(r) if r.starts_with(' ') && matches!(verb, "EXPLAIN" | "ANALYZE") => {
                    (true, r.trim())
                }
                _ => (false, rest),
            };
            let (doc, xpath) = match rest.strip_prefix("DOC ") {
                Some(r) => match r.trim_start().split_once(' ') {
                    Some((d, x)) => (Some(d.to_string()), x.trim()),
                    None => {
                        return Parsed::Inline(format!(
                            "ERR proto {verb} DOC needs a document and an XPath expression"
                        ))
                    }
                },
                None => (None, rest),
            };
            if xpath.is_empty() {
                return Parsed::Inline(format!("ERR proto {verb} needs an XPath expression"));
            }
            let xpath = xpath.to_string();
            Parsed::Job(match verb {
                "QUERY" => Request::Query { xpath, doc },
                "EVAL" => Request::Eval { xpath, doc },
                "EXPLAIN" => Request::Explain { xpath, json, doc },
                _ => Request::Analyze { xpath, json, doc },
            })
        }
        _ => Parsed::Inline(format!("ERR proto unknown request {verb}")),
    }
}

/// The [`LineService`] adapter running the VAMANA protocol on the
/// nonblocking core: cheap verbs answer inline on the loop, everything
/// touching the engine dispatches to the worker pool and completes
/// asynchronously.
struct EventService {
    shared: Arc<Shared>,
    pool: Arc<WorkerPool<Job>>,
    completions: Completions,
    /// Per-connection `LIMIT` overrides.
    limits: Mutex<HashMap<ConnId, usize>>,
}

impl EventService {
    fn limit_for(&self, conn: ConnId) -> usize {
        *self
            .limits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&conn)
            .unwrap_or(&self.shared.config.default_limit)
    }

    fn submit(&self, conn: ConnId, seq: u64, request: Request, control: bool) -> Dispatch {
        let job = Job {
            limit: self.limit_for(conn),
            deadline: Instant::now() + self.shared.config.query_timeout,
            reply: ReplyTo::Event {
                completions: self.completions.clone(),
                conn,
                seq,
            },
            request,
        };
        let submitted = if control {
            self.pool.submit(job)
        } else {
            self.pool.try_submit(job)
        };
        match submitted {
            Ok(()) => Dispatch::Pending,
            Err(_) => {
                self.shared
                    .metrics
                    .busy_rejections
                    .fetch_add(1, Ordering::Relaxed);
                Dispatch::Reply(format!("ERR {}\n", ServerError::Busy).into_bytes())
            }
        }
    }
}

impl LineService for EventService {
    fn handle(&self, conn: ConnId, seq: u64, line: &str) -> Dispatch {
        match parse_line(&self.shared.config, line) {
            Parsed::Inline(reply) => Dispatch::Reply(format!("{reply}\n").into_bytes()),
            Parsed::Limit(n) => {
                self.limits
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(conn, n);
                Dispatch::Reply(format!("OK limit {n}\n").into_bytes())
            }
            Parsed::Quit => Dispatch::ReplyClose(b"OK bye\n".to_vec()),
            Parsed::Feed(from) => {
                let shared = Arc::clone(&self.shared);
                Dispatch::Handoff(Box::new(move |stream| {
                    let _ = feed::serve_feed(stream, &shared, from);
                }))
            }
            Parsed::Job(request) => self.submit(conn, seq, request, false),
            Parsed::Control(request) => self.submit(conn, seq, request, true),
        }
    }

    fn on_open(&self, _conn: ConnId) {
        self.shared
            .metrics
            .connections
            .fetch_add(1, Ordering::Relaxed);
    }

    fn on_close(&self, conn: ConnId) {
        self.limits
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&conn);
    }
}

/// Parses and answers requests from one client until QUIT/EOF
/// (threaded core).
fn serve_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    pool: &Arc<WorkerPool<Job>>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut limit = shared.config.default_limit;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        let request = line.trim_end_matches(['\n', '\r']);
        if request.is_empty() {
            continue;
        }
        match parse_line(&shared.config, request) {
            Parsed::Inline(reply) => writeln!(writer, "{reply}")?,
            Parsed::Limit(n) => {
                limit = n;
                writeln!(writer, "OK limit {n}")?;
            }
            Parsed::Quit => {
                writeln!(writer, "OK bye")?;
                return Ok(());
            }
            Parsed::Feed(from) => {
                // The connection becomes a one-way frame feed; it never
                // returns to the line protocol.
                return feed::serve_feed(writer, shared, from);
            }
            Parsed::Job(request) | Parsed::Control(request) => {
                let control = request.is_control();
                let (tx, rx) = std::sync::mpsc::sync_channel(1);
                let job = Job {
                    request,
                    limit,
                    deadline: Instant::now() + shared.config.query_timeout,
                    reply: ReplyTo::Sync(tx),
                };
                let submitted = if control {
                    pool.submit(job)
                } else {
                    pool.try_submit(job)
                };
                if submitted.is_err() {
                    shared
                        .metrics
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "ERR {}", ServerError::Busy)?;
                    writer.flush()?;
                    continue;
                }
                let result = match rx.recv() {
                    Ok(result) => result,
                    // Worker pool shut down before replying.
                    Err(_) => Err(ServerError::Query("busy server shutting down".into())),
                };
                writer.write_all(&reply_bytes(&result))?;
            }
        }
        writer.flush()?;
    }
}

/// Serializes a job result into protocol bytes — the single rendering
/// path both cores share.
fn reply_bytes(result: &Result<Outcome, ServerError>) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut out = String::new();
    match result {
        Ok(Outcome::Rows {
            rendered,
            cached,
            elapsed,
            buffer_hits,
            buffer_misses,
            ..
        }) => {
            for row in &rendered.lines {
                let _ = writeln!(out, "ROW {}", escape_line(row));
            }
            let _ = writeln!(
                out,
                "OK {} row(s) plan={} {}us hits={} misses={}",
                rendered.total,
                if *cached { "cached" } else { "compiled" },
                elapsed.as_micros(),
                buffer_hits,
                buffer_misses
            );
        }
        Ok(Outcome::Scalar { text, elapsed }) => {
            let _ = writeln!(out, "VAL {}", escape_line(text));
            let _ = writeln!(out, "OK scalar {}us", elapsed.as_micros());
        }
        Ok(Outcome::Report { lines, elapsed }) => {
            for line in lines {
                let _ = writeln!(out, "PLAN {}", escape_line(line));
            }
            let _ = writeln!(out, "OK {} line(s) {}us", lines.len(), elapsed.as_micros());
        }
        Ok(Outcome::Updated {
            matched,
            inserted,
            deleted,
            lsn,
            generation,
            writer_wait,
            elapsed,
        }) => {
            let _ = writeln!(
                out,
                "OK update matched={matched} inserted={inserted} deleted={deleted} \
                 lsn={lsn} generation={generation} writer_wait={}us {}us",
                writer_wait.as_micros(),
                elapsed.as_micros()
            );
        }
        Ok(Outcome::Checkpointed {
            records,
            last_lsn,
            elapsed,
        }) => {
            let _ = writeln!(
                out,
                "OK checkpoint records={records} lsn={last_lsn} {}us",
                elapsed.as_micros()
            );
        }
        Ok(Outcome::Loaded { id, generation }) => {
            let _ = writeln!(out, "OK loaded document {id} generation {generation}");
        }
        Ok(Outcome::Lines { lines, ok }) => {
            for line in lines {
                let _ = writeln!(out, "{line}");
            }
            let _ = writeln!(out, "{ok}");
        }
        Err(e) => {
            let _ = writeln!(out, "ERR {e}");
        }
    }
    out.into_bytes()
}

/// Parses `INSERT <doc> <target> <fragment>`, `DELETE <doc> <target>`
/// and `CHECKPOINT`. The insert fragment is split from the target XPath
/// at the first ` <` (a fragment is always markup; a target never
/// contains ` <` because comparisons bind tighter than spaces in our
/// grammar's practical use — and `<` in predicates is written without a
/// leading space or the update is rejected as missing its fragment).
fn parse_update(verb: &str, rest: &str) -> Result<Request, String> {
    if verb == "CHECKPOINT" {
        return Ok(Request::Checkpoint);
    }
    let Some((doc, tail)) = rest.split_once(' ').map(|(d, t)| (d, t.trim())) else {
        return Err(format!("{verb} needs a document and a target XPath"));
    };
    if doc.is_empty() || tail.is_empty() {
        return Err(format!("{verb} needs a document and a target XPath"));
    }
    match verb {
        "INSERT" => {
            let Some(at) = tail.find(" <") else {
                return Err("INSERT needs an XML fragment after the target XPath".into());
            };
            let (target, fragment) = tail.split_at(at);
            Ok(Request::Update {
                doc: doc.to_string(),
                op: UpdateOp::Insert {
                    target: target.trim().to_string(),
                    fragment: fragment.trim().to_string(),
                },
            })
        }
        _ => Ok(Request::Update {
            doc: doc.to_string(),
            op: UpdateOp::Delete {
                target: tail.to_string(),
            },
        }),
    }
}

/// One `STAT key value` line per metric, cache and store counter.
fn render_stats(shared: &Shared) -> Vec<String> {
    let mut out = Vec::new();
    shared.metrics.render(&mut out);
    let (hits, misses) = shared.cache.counters();
    out.push(format!("STAT plan_cache_hits {hits}"));
    out.push(format!("STAT plan_cache_misses {misses}"));
    out.push(format!("STAT plan_cache_size {}", shared.cache.len()));
    out.push(format!("STAT workers {}", shared.config.workers));
    out.push(format!("STAT queue_depth {}", shared.config.queue_depth));
    let engine = shared.engine.read();
    let stats = engine.store().stats();
    out.push(format!("STAT documents {}", stats.documents));
    out.push(format!("STAT store_tuples {}", stats.tuples));
    out.push(format!("STAT store_pages {}", stats.pages));
    out.push(format!(
        "STAT store_generation {}",
        engine.store().generation()
    ));
    out.push(format!("STAT store_format {}", stats.format.as_str()));
    out.push(format!(
        "STAT store_compressed_pages {}",
        stats.compressed_pages
    ));
    out.push(format!(
        "STAT store_uncompressed_pages {}",
        stats.uncompressed_pages
    ));
    out.push(format!("STAT store_dict_entries {}", stats.dict_entries));
    out.push(format!("STAT store_disk_bytes {}", stats.disk_bytes()));
    out.push(format!(
        "STAT store_compression_ratio {:.4}",
        stats.compression_ratio()
    ));
    out.push(format!("STAT pool_buffer_hits {}", stats.buffer.hits));
    out.push(format!("STAT pool_buffer_misses {}", stats.buffer.misses));
    out.push(format!("STAT pool_decodes_v1 {}", stats.buffer.decodes_v1));
    out.push(format!("STAT pool_decodes_v2 {}", stats.buffer.decodes_v2));
    out.push(format!(
        "STAT pool_format_fallbacks {}",
        stats.buffer.format_fallbacks
    ));
    out.push(format!("STAT pool_batch_pins {}", stats.buffer.batch_pins));
    out.push(format!("STAT pool_pins_saved {}", stats.buffer.pins_saved));
    let views = engine.views().stats();
    out.push(format!("STAT view_hits {}", views.hits));
    out.push(format!("STAT view_misses {}", views.misses));
    out.push(format!("STAT view_evictions {}", views.evictions));
    out.push(format!("STAT view_bytes {}", views.bytes));
    out.push(format!("STAT view_views {}", views.views));
    let par = engine.parallel_stats();
    out.push(format!("STAT scan_workers {}", engine.effective_workers()));
    out.push(format!("STAT pool_par_morsels {}", par.morsels));
    out.push(format!("STAT pool_par_batches {}", par.worker_batches));
    out.push(format!("STAT pool_par_merge_stalls {}", par.merge_stalls));
    let (fused_chains, fused_steps) = engine.fused_stats();
    out.push(format!("STAT fused_chains {fused_chains}"));
    out.push(format!("STAT fused_steps {fused_steps}"));
    let wal = engine.store().wal_stats();
    out.push(format!(
        "STAT store_durable {}",
        engine.store().is_durable() as u32
    ));
    out.push(format!("STAT wal_records {}", wal.records));
    out.push(format!("STAT wal_depth {}", wal.depth));
    out.push(format!("STAT wal_fsyncs {}", wal.fsyncs));
    out.push(format!("STAT wal_last_lsn {}", wal.last_lsn));
    out.push(format!("STAT wal_replayed_lsn {}", wal.replayed_lsn));
    out.push(format!(
        "STAT engine_writer_wait_us {}",
        engine.writer_wait_total().as_micros()
    ));
    match &shared.config.replica {
        Some(role) => {
            let s = &role.status;
            let applied = s.applied_lsn.load(Ordering::Relaxed);
            let primary_last = s.primary_last_lsn.load(Ordering::Relaxed);
            out.push(format!(
                "STAT repl_received_lsn {}",
                s.received_lsn.load(Ordering::Relaxed)
            ));
            out.push(format!("STAT repl_applied_lsn {applied}"));
            out.push(format!("STAT repl_primary_last_lsn {primary_last}"));
            out.push(format!(
                "STAT repl_behind {}",
                primary_last.saturating_sub(applied)
            ));
            out.push(format!(
                "STAT repl_connected {}",
                s.connected.load(Ordering::Relaxed) as u32
            ));
            out.push(format!(
                "STAT repl_reconnects {}",
                s.reconnects.load(Ordering::Relaxed)
            ));
            out.push(format!(
                "STAT repl_snapshots {}",
                s.snapshots.load(Ordering::Relaxed)
            ));
        }
        None => {
            if let Some(log) = engine.store().replication_log() {
                let st = log.stats();
                out.push(format!("STAT repl_last_lsn {}", st.last_lsn));
                out.push(format!("STAT repl_floor_lsn {}", st.floor_lsn));
                out.push(format!("STAT repl_retained {}", st.retained));
                out.push(format!(
                    "STAT repl_feeds {}",
                    shared.feeds.load(Ordering::Relaxed)
                ));
            }
        }
    }
    out
}

/// One `LAG key value` line per replication gauge — the lightweight
/// check monitoring and followers poll (cheaper than `STATS`, no store
/// snapshot).
fn render_lag(shared: &Shared) -> Vec<String> {
    let mut out = Vec::new();
    match &shared.config.replica {
        Some(role) => {
            let s = &role.status;
            let applied = s.applied_lsn.load(Ordering::Relaxed);
            let primary_last = s.primary_last_lsn.load(Ordering::Relaxed);
            out.push("LAG role replica".to_string());
            out.push(format!("LAG primary {}", role.primary));
            out.push(format!(
                "LAG received_lsn {}",
                s.received_lsn.load(Ordering::Relaxed)
            ));
            out.push(format!("LAG applied_lsn {applied}"));
            out.push(format!("LAG primary_last_lsn {primary_last}"));
            out.push(format!(
                "LAG behind {}",
                primary_last.saturating_sub(applied)
            ));
            out.push(format!(
                "LAG connected {}",
                s.connected.load(Ordering::Relaxed) as u32
            ));
        }
        None => {
            let engine = shared.engine.read();
            out.push("LAG role primary".to_string());
            out.push(format!("LAG last_lsn {}", engine.store().replicated_lsn()));
            if let Some(log) = engine.store().replication_log() {
                let st = log.stats();
                out.push(format!("LAG floor_lsn {}", st.floor_lsn));
                out.push(format!("LAG retained {}", st.retained));
            }
            out.push(format!(
                "LAG feeds {}",
                shared.feeds.load(Ordering::Relaxed)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_framing_characters() {
        assert_eq!(escape_line("a\tb\nc\\d"), "a\\tb\\nc\\\\d");
        assert_eq!(escape_line("plain"), "plain");
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= c.workers);
        assert!(c.query_timeout > Duration::ZERO);
        assert_eq!(c.core, CoreMode::Event);
    }

    #[test]
    fn parse_line_covers_the_grammar() {
        let config = ServerConfig::default();
        assert!(matches!(
            parse_line(&config, "PING"),
            Parsed::Inline(s) if s == "OK pong"
        ));
        assert!(matches!(parse_line(&config, "QUIT"), Parsed::Quit));
        assert!(matches!(parse_line(&config, "LIMIT 5"), Parsed::Limit(5)));
        assert!(matches!(
            parse_line(&config, "QUERY //a"),
            Parsed::Job(Request::Query { doc: None, .. })
        ));
        assert!(matches!(
            parse_line(&config, "QUERY DOC auction //a"),
            Parsed::Job(Request::Query { doc: Some(d), .. }) if d == "auction"
        ));
        assert!(matches!(
            parse_line(&config, "ANALYZE JSON DOC auction //a"),
            Parsed::Job(Request::Analyze {
                doc: Some(_),
                json: true,
                ..
            })
        ));
        assert!(matches!(
            parse_line(&config, "STATS"),
            Parsed::Control(Request::Stats)
        ));
        assert!(matches!(
            parse_line(&config, "DOCS"),
            Parsed::Control(Request::Docs)
        ));
        assert!(matches!(
            parse_line(&config, "REPLICATE 7"),
            Parsed::Feed(7)
        ));
        assert!(matches!(
            parse_line(&config, "NONSENSE"),
            Parsed::Inline(s) if s.starts_with("ERR proto unknown")
        ));
    }

    #[test]
    fn replica_config_rejects_writes_at_parse() {
        let config = ServerConfig {
            replica: Some(ReplicaRole {
                primary: "1.2.3.4:5".into(),
                status: Arc::new(ReplicaStatus::default()),
            }),
            ..ServerConfig::default()
        };
        for verb in ["LOADXML d <a/>", "INSERT d //a <b/>", "CHECKPOINT"] {
            assert!(matches!(
                parse_line(&config, verb),
                Parsed::Inline(s) if s.starts_with("ERR readonly")
            ));
        }
        assert!(matches!(parse_line(&config, "QUERY //a"), Parsed::Job(_)));
    }
}
