//! # vamana-server
//!
//! A concurrent query service over one shared VAMANA engine: a TCP
//! line protocol served by a worker thread pool, with a compiled-plan
//! cache, bounded-queue admission control, per-query deadlines, and a
//! metrics registry (see `DESIGN.md`, "Serving layer").
//!
//! ## Protocol
//!
//! One request per line, UTF-8; every request produces one or more
//! response lines ending with `OK …` or a single `ERR <kind> <message>`:
//!
//! ```text
//! QUERY <xpath>        rows over all documents   → ROW… then OK
//! EVAL <xpath>         scalar on document 0      → VAL then OK (rows if node-set)
//! EXPLAIN [JSON] <xpath>
//!                      plans + optimizer trace   → PLAN… then OK
//! ANALYZE [JSON] <xpath>
//!                      instrumented run on doc 0 → PLAN… then OK
//! LOADXML <name> <xml> load inline XML           → OK
//! LOAD <name> <path>   load an XML file          → OK
//! INSERT <doc> <target-xpath> <fragment>
//!                      append fragment to first match → OK update …
//! DELETE <doc> <target-xpath>
//!                      delete every match's subtree   → OK update …
//! CHECKPOINT           fold WAL into pages, truncate  → OK checkpoint …
//! LIMIT <n>            per-connection row cap    → OK (0 = unlimited)
//! STATS                metrics snapshot          → STAT… then OK
//! CACHE [LIST]         materialized views        → VIEW… then OK
//! CACHE CLEAR          drop views + cached plans → OK
//! LAG                  replication gauges        → LAG… then OK
//! REPLICATE <from_lsn> become a WAL frame feed   → handshake line, then
//!                      binary frames (see `DESIGN.md`, "Replication")
//! PING                                           → OK pong
//! QUIT                                           → OK bye, closes
//! ```
//!
//! On a server configured as a replica ([`ServerConfig::replica`]),
//! every mutating verb answers `ERR readonly` naming the primary.
//!
//! `INSERT`/`DELETE` take a document (by name or numeric id) and a
//! target XPath; `INSERT` additionally takes an XML fragment, split from
//! the target at the first ` <`. Updates run through the worker pool
//! under the usual deadline, serialized on a single-writer lane, and
//! each bumps the target document's generation — which invalidates
//! exactly that document's cached plans.
//!
//! `EXPLAIN` shows the default and optimized plan with estimate cards
//! and the optimizer's pass-by-pass trace; `ANALYZE` additionally
//! executes the query on document 0 (like `EVAL`) and annotates every
//! operator with actual row counts and q-errors. With `JSON` the whole
//! report is one `PLAN` line holding a JSON object — the same rendering
//! the CLI's `.analyze json` produces. Both run through the worker pool
//! under the usual deadline and `ERR busy` admission control.
//!
//! ## Threading model
//!
//! One accept thread; one (detached) thread per connection parsing
//! requests; a fixed worker pool executing `QUERY`/`EVAL` jobs against
//! the shared engine under its read lock. Loads run on the connection
//! thread under the write lock and clear the plan cache. The queue
//! between connections and workers is bounded: a full queue rejects at
//! admission with `ERR busy` rather than queueing unboundedly, and every
//! job carries a deadline that is checked when dequeued and between
//! result-tuple pulls while executing.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vamana_core::{exec::BATCH_SIZE, DocId, Engine, SharedEngine, UpdateOp, Value};

pub mod cache;
mod feed;
pub mod metrics;
pub mod pool;
pub mod render;
pub mod testkit;

pub use cache::PlanCache;
pub use metrics::Metrics;
pub use render::{render_rows, RenderOptions, Rendered};

use metrics::ActiveGuard;
use pool::WorkerPool;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Jobs admitted but not yet running; beyond this, `ERR busy`.
    pub queue_depth: usize,
    /// Per-query deadline, from admission to last tuple.
    pub query_timeout: Duration,
    /// Compiled plans cached across queries.
    pub plan_cache_size: usize,
    /// Default per-connection row cap (`LIMIT` overrides; 0 = unlimited).
    pub default_limit: usize,
    /// Characters of string-value shown per row.
    pub value_width: usize,
    /// Width of the engine's intra-query scan pool, applied to the
    /// engine at bind time. `0` leaves the engine's own setting (one
    /// scan worker per core by default) untouched.
    pub scan_workers: usize,
    /// Committed WAL frames retained for replication catch-up on durable
    /// stores. A follower whose resume LSN has aged out of this window
    /// is snapshot-shipped instead of streamed.
    pub repl_retain: usize,
    /// How long an idle replication feed waits for new commits before
    /// emitting a heartbeat frame (followers use it for lag and
    /// liveness).
    pub feed_heartbeat: Duration,
    /// `Some` turns this server into a read-only replica: write verbs
    /// return a redirect error naming the primary, and `LAG`/`STATS`
    /// report the sync status the replica runtime keeps here.
    pub replica: Option<ReplicaRole>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            query_timeout: Duration::from_secs(10),
            plan_cache_size: 256,
            default_limit: 20,
            value_width: 200,
            scan_workers: 0,
            repl_retain: vamana_mass::DEFAULT_RETAIN_FRAMES,
            feed_heartbeat: Duration::from_millis(200),
            replica: None,
        }
    }
}

/// Live sync counters a replica runtime shares with its read-only
/// server (reported by `LAG` and `STATS`).
#[derive(Debug, Default)]
pub struct ReplicaStatus {
    /// LSN of the last frame received from the primary.
    pub received_lsn: AtomicU64,
    /// LSN of the last commit applied to the local store.
    pub applied_lsn: AtomicU64,
    /// The primary's last committed LSN as of the latest frame or
    /// heartbeat.
    pub primary_last_lsn: AtomicU64,
    /// Whether the feed connection is currently up.
    pub connected: AtomicBool,
    /// Reconnect attempts since start.
    pub reconnects: AtomicU64,
    /// Snapshot installs since start.
    pub snapshots: AtomicU64,
    /// Total frames received (including heartbeats).
    pub frames: AtomicU64,
}

/// Marks a server as a read-only replica of `primary`.
#[derive(Debug, Clone)]
pub struct ReplicaRole {
    /// Address writes should be redirected to.
    pub primary: String,
    /// Shared sync status, updated by the replica's sync loop.
    pub status: Arc<ReplicaStatus>,
}

/// Errors a job can produce (I/O errors are handled per connection).
#[derive(Debug)]
pub enum ServerError {
    /// Rejected at admission: queue full.
    Busy,
    /// Deadline exceeded, queued or mid-execution.
    Timeout(Duration),
    /// Compile or execution failure.
    Query(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Busy => write!(f, "busy server at capacity, retry later"),
            ServerError::Timeout(t) => write!(f, "timeout query exceeded {}ms", t.as_millis()),
            ServerError::Query(msg) => write!(f, "query {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// State shared by the accept thread, connection threads, and workers.
pub struct Shared {
    engine: Arc<SharedEngine>,
    cache: PlanCache,
    metrics: Metrics,
    config: ServerConfig,
    stopping: AtomicBool,
    /// Single-writer lane: updates and checkpoints serialize here
    /// *before* taking the engine write lock, so at most one worker
    /// blocks readers at a time and the rest queue with their deadlines
    /// still ticking.
    writer_lane: Mutex<()>,
    /// Replication feed connections currently streaming.
    feeds: AtomicU64,
}

impl Shared {
    /// The engine behind the service.
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.engine
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }
}

/// What a `QUERY`, `EVAL`, `EXPLAIN`, `ANALYZE`, `INSERT`, `DELETE` or
/// `CHECKPOINT` asks for.
enum Request {
    Query { xpath: String },
    Eval { xpath: String },
    Explain { xpath: String, json: bool },
    Analyze { xpath: String, json: bool },
    Update { doc: String, op: UpdateOp },
    Checkpoint,
}

/// One unit of work handed to the pool.
pub struct Job {
    request: Request,
    limit: usize,
    deadline: Instant,
    reply: SyncSender<Result<Outcome, ServerError>>,
}

/// A successful job result, ready to serialize.
enum Outcome {
    Rows {
        rendered: Rendered,
        cached: bool,
        elapsed: Duration,
        buffer_hits: u64,
        buffer_misses: u64,
        batch_pins: u64,
        pins_saved: u64,
    },
    Scalar {
        text: String,
        elapsed: Duration,
    },
    /// An `EXPLAIN`/`ANALYZE` report: each line goes out as `PLAN …`.
    Report {
        lines: Vec<String>,
        elapsed: Duration,
    },
    /// An applied `INSERT`/`DELETE`.
    Updated {
        matched: u64,
        inserted: u64,
        deleted: u64,
        lsn: u64,
        generation: u64,
        writer_wait: Duration,
        elapsed: Duration,
    },
    /// A completed `CHECKPOINT`.
    Checkpointed {
        records: u64,
        last_lsn: u64,
        elapsed: Duration,
    },
}

fn query_err(e: impl std::fmt::Display) -> ServerError {
    ServerError::Query(e.to_string())
}

/// Runs one job on a worker thread and replies to its connection.
pub(crate) fn execute_job(shared: &Shared, job: Job) {
    let _active = ActiveGuard::enter(&shared.metrics);
    let now = Instant::now();
    if now >= job.deadline {
        shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
        let _ = job
            .reply
            .send(Err(ServerError::Timeout(shared.config.query_timeout)));
        return;
    }
    let result = match &job.request {
        Request::Query { xpath } => run_query(shared, xpath, job.limit, job.deadline),
        Request::Eval { xpath } => run_eval(shared, xpath, job.limit),
        Request::Explain { xpath, json } => run_explain(shared, xpath, *json),
        Request::Analyze { xpath, json } => run_analyze(shared, xpath, *json),
        Request::Update { doc, op } => run_update(shared, doc, op, job.deadline),
        Request::Checkpoint => run_checkpoint(shared, job.deadline),
    };
    match &result {
        Ok(outcome) => {
            shared.metrics.queries.fetch_add(1, Ordering::Relaxed);
            let (elapsed, rows, hits, misses, pins, saved) = match outcome {
                Outcome::Rows {
                    rendered,
                    elapsed,
                    buffer_hits,
                    buffer_misses,
                    batch_pins,
                    pins_saved,
                    ..
                } => (
                    *elapsed,
                    rendered.total as u64,
                    *buffer_hits,
                    *buffer_misses,
                    *batch_pins,
                    *pins_saved,
                ),
                Outcome::Scalar { elapsed, .. }
                | Outcome::Report { elapsed, .. }
                | Outcome::Updated { elapsed, .. }
                | Outcome::Checkpointed { elapsed, .. } => (*elapsed, 0, 0, 0, 0, 0),
            };
            shared.metrics.latency.record(elapsed);
            shared
                .metrics
                .rows_returned
                .fetch_add(rows, Ordering::Relaxed);
            shared
                .metrics
                .buffer_hits
                .fetch_add(hits, Ordering::Relaxed);
            shared
                .metrics
                .buffer_misses
                .fetch_add(misses, Ordering::Relaxed);
            shared.metrics.batch_pins.fetch_add(pins, Ordering::Relaxed);
            shared
                .metrics
                .pins_saved
                .fetch_add(saved, Ordering::Relaxed);
        }
        Err(ServerError::Timeout(_)) => {
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            shared.metrics.queries.fetch_add(1, Ordering::Relaxed);
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    // A send error means the client hung up; nothing to do.
    let _ = job.reply.send(result);
}

/// Executes `xpath` over every document via the plan cache, enforcing
/// `deadline` between result batches, and renders up to `limit` rows.
fn run_query(
    shared: &Shared,
    xpath: &str,
    limit: usize,
    deadline: Instant,
) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    if engine.store().documents().is_empty() {
        return Err(ServerError::Query(
            "no documents loaded (use LOADXML or LOAD)".into(),
        ));
    }
    let start = Instant::now();
    let before = engine.store().buffer_pool().stats();
    let mut all = Vec::new();
    let mut all_cached = true;
    for i in 0..engine.store().documents().len() {
        let doc = DocId(i as u32);
        // Plans validate against the *per-document* generation: an
        // update to one document invalidates exactly that document's
        // cached plans, and loads/updates elsewhere leave them warm.
        let generation = engine.store().doc_generation(doc);
        let plan = match shared.cache.get(xpath, doc, generation) {
            Some(plan) => plan,
            None => {
                all_cached = false;
                let compiled = engine.compile(xpath).map_err(query_err)?;
                let optimized = if engine.options().optimize {
                    engine.optimize_plan(compiled, doc).map_err(query_err)?.plan
                } else {
                    compiled
                };
                let plan = Arc::new(optimized);
                shared
                    .cache
                    .insert(xpath, doc, generation, Arc::clone(&plan));
                plan
            }
        };
        let mut stream = engine
            .stream_plan((*plan).clone(), doc)
            .map_err(query_err)?;
        // Batches land straight in the result buffer — no per-tuple
        // dispatch between the executor and the render path. The
        // deadline is checked once per batch (≤ BATCH_SIZE tuples).
        let doc_start = all.len();
        while stream.next_batch(&mut all, BATCH_SIZE).map_err(query_err)? > 0 {
            if Instant::now() >= deadline {
                return Err(ServerError::Timeout(shared.config.query_timeout));
            }
        }
        if Instant::now() >= deadline {
            return Err(ServerError::Timeout(shared.config.query_timeout));
        }
        // Feed this document's result to the view cache. A fresh
        // admission supersedes the compiled plan cached above — drop it
        // so the next compilation goes through the view-rewrite pass.
        if engine.observe_result(doc, xpath, &all[doc_start..]) {
            shared.cache.remove(xpath, doc);
        }
    }
    // XPath node-set semantics across documents: document order, no
    // duplicates (streams yield pipeline order within one document).
    all.sort_by(|a, b| a.key.cmp(&b.key));
    all.dedup_by(|a, b| a.key == b.key);
    let rendered = render_rows(
        &engine,
        &all,
        &RenderOptions {
            limit,
            value_width: shared.config.value_width,
        },
    )
    .map_err(query_err)?;
    // Snapshot after rendering: index-answerable queries do their page
    // reads in string-value extraction, not plan execution.
    let after = engine.store().buffer_pool().stats();
    Ok(Outcome::Rows {
        rendered,
        cached: all_cached,
        elapsed: start.elapsed(),
        buffer_hits: after.hits.saturating_sub(before.hits),
        buffer_misses: after.misses.saturating_sub(before.misses),
        batch_pins: after.batch_pins.saturating_sub(before.batch_pins),
        pins_saved: after.pins_saved.saturating_sub(before.pins_saved),
    })
}

/// Evaluates `xpath` as a full XPath expression on document 0 — scalars
/// come back as `VAL`, node-sets as rows.
fn run_eval(shared: &Shared, xpath: &str, limit: usize) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    if engine.store().documents().is_empty() {
        return Err(ServerError::Query(
            "no documents loaded (use LOADXML or LOAD)".into(),
        ));
    }
    let start = Instant::now();
    let before = engine.store().buffer_pool().stats();
    let value = engine.evaluate(DocId(0), xpath).map_err(query_err)?;
    let elapsed = start.elapsed();
    match value {
        Value::Nodes(nodes) => {
            let rendered = render_rows(
                &engine,
                &nodes,
                &RenderOptions {
                    limit,
                    value_width: shared.config.value_width,
                },
            )
            .map_err(query_err)?;
            let after = engine.store().buffer_pool().stats();
            Ok(Outcome::Rows {
                rendered,
                cached: false,
                elapsed,
                buffer_hits: after.hits.saturating_sub(before.hits),
                buffer_misses: after.misses.saturating_sub(before.misses),
                batch_pins: after.batch_pins.saturating_sub(before.batch_pins),
                pins_saved: after.pins_saved.saturating_sub(before.pins_saved),
            })
        }
        Value::Num(n) => Ok(Outcome::Scalar {
            text: n.to_string(),
            elapsed,
        }),
        Value::Str(s) => Ok(Outcome::Scalar { text: s, elapsed }),
        Value::Bool(b) => Ok(Outcome::Scalar {
            text: b.to_string(),
            elapsed,
        }),
    }
}

/// Produces the `EXPLAIN` report for `xpath` on document 0: both plans
/// with estimate cards plus the optimizer's pass log.
fn run_explain(shared: &Shared, xpath: &str, json: bool) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    if engine.store().documents().is_empty() {
        return Err(ServerError::Query(
            "no documents loaded (use LOADXML or LOAD)".into(),
        ));
    }
    let start = Instant::now();
    let ex = engine.explain(DocId(0), xpath).map_err(query_err)?;
    let elapsed = start.elapsed();
    let lines = if json {
        vec![explain_json(xpath, &ex)]
    } else {
        let mut text = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(text, "default plan (Σ tuple volume {}):", ex.default_cost);
        text.push_str(&ex.default_plan);
        let _ = writeln!(
            text,
            "optimized plan (Σ tuple volume {}; rules {:?}; {} iteration(s)):",
            ex.optimized_cost, ex.applied, ex.iterations
        );
        text.push_str(&ex.optimized_plan);
        text.push_str("optimizer trace:\n");
        text.push_str(&ex.opt_trace.render());
        text.lines().map(str::to_string).collect()
    };
    Ok(Outcome::Report { lines, elapsed })
}

/// Runs `xpath` on document 0 with per-operator instrumentation and
/// reports estimated-vs-actual cardinalities (`EXPLAIN ANALYZE`).
fn run_analyze(shared: &Shared, xpath: &str, json: bool) -> Result<Outcome, ServerError> {
    let engine = shared.engine.read();
    if engine.store().documents().is_empty() {
        return Err(ServerError::Query(
            "no documents loaded (use LOADXML or LOAD)".into(),
        ));
    }
    let analysis = engine.analyze_doc(DocId(0), xpath).map_err(query_err)?;
    let elapsed = analysis.profile.elapsed;
    let lines = if json {
        vec![analysis.render_json()]
    } else {
        let mut text = analysis.render();
        text.push_str("optimizer trace:\n");
        text.push_str(&analysis.opt_trace.render());
        text.lines().map(str::to_string).collect()
    };
    Ok(Outcome::Report { lines, elapsed })
}

/// Resolves a protocol document token — a numeric id or a document
/// name — against the store.
fn resolve_doc(engine: &Engine, token: &str) -> Option<DocId> {
    let docs = engine.store().documents();
    if let Ok(i) = token.parse::<u32>() {
        if (i as usize) < docs.len() {
            return Some(DocId(i));
        }
    }
    docs.iter()
        .position(|d| &*d.name == token)
        .map(|i| DocId(i as u32))
}

/// Applies an `INSERT`/`DELETE` on the single-writer lane: serialize
/// against other writers first (deadline still enforced), then take the
/// engine write lock and route the mutation through
/// [`Engine::apply_update`] — and through the WAL on durable stores.
fn run_update(
    shared: &Shared,
    doc: &str,
    op: &UpdateOp,
    deadline: Instant,
) -> Result<Outcome, ServerError> {
    let _lane = shared.writer_lane.lock().unwrap_or_else(|p| p.into_inner());
    if Instant::now() >= deadline {
        return Err(ServerError::Timeout(shared.config.query_timeout));
    }
    let mut engine = shared.engine.write();
    let Some(doc) = resolve_doc(&engine, doc) else {
        return Err(ServerError::Query(format!("no such document {doc}")));
    };
    let start = Instant::now();
    let outcome = engine.apply_update(doc, op).map_err(query_err)?;
    // Sweep the written document's superseded plans out of the cache;
    // without this every (xpath, old-generation) pair would linger until
    // individually probed or LRU-evicted.
    shared.cache.purge_doc(doc, outcome.doc_generation);
    shared.metrics.updates.fetch_add(1, Ordering::Relaxed);
    shared.metrics.writer_wait_us.fetch_add(
        outcome.profile.writer_wait.as_micros() as u64,
        Ordering::Relaxed,
    );
    Ok(Outcome::Updated {
        matched: outcome.matched,
        inserted: outcome.inserted,
        deleted: outcome.deleted,
        lsn: outcome.lsn,
        generation: outcome.doc_generation,
        writer_wait: outcome.profile.writer_wait,
        elapsed: start.elapsed(),
    })
}

/// Folds the WAL into the page store under the single-writer lane.
fn run_checkpoint(shared: &Shared, deadline: Instant) -> Result<Outcome, ServerError> {
    let _lane = shared.writer_lane.lock().unwrap_or_else(|p| p.into_inner());
    if Instant::now() >= deadline {
        return Err(ServerError::Timeout(shared.config.query_timeout));
    }
    let start = Instant::now();
    let stats = shared.engine.write().checkpoint().map_err(query_err)?;
    shared.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
    Ok(Outcome::Checkpointed {
        records: stats.depth,
        last_lsn: stats.last_lsn,
        elapsed: start.elapsed(),
    })
}

/// Hand-rolled JSON for `EXPLAIN JSON` (ANALYZE reuses
/// [`vamana_core::Analysis::render_json`]).
fn explain_json(xpath: &str, ex: &vamana_core::Explain) -> String {
    use std::fmt::Write as _;
    use vamana_core::explain::escape_json;
    let mut s = String::from("{");
    let _ = write!(s, "\"xpath\":\"{}\",", escape_json(xpath));
    let _ = write!(s, "\"default_cost\":{},", ex.default_cost);
    let _ = write!(s, "\"optimized_cost\":{},", ex.optimized_cost);
    let _ = write!(s, "\"iterations\":{},", ex.iterations);
    s.push_str("\"applied\":[");
    for (i, rule) in ex.applied.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", escape_json(rule));
    }
    let _ = write!(
        s,
        "],\"default_plan\":\"{}\",\"optimized_plan\":\"{}\",\"trace\":[",
        escape_json(&ex.default_plan),
        escape_json(&ex.optimized_plan)
    );
    for (i, line) in ex.opt_trace.render().lines().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", escape_json(line));
    }
    s.push_str("]}");
    s
}

/// Protocol values are single-line: escape the characters that would
/// break framing.
fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// The query service: a TCP listener plus the worker pool behind it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    pool: Arc<WorkerPool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:4050`, port 0 for ephemeral) and
    /// spins up the worker pool over `engine`.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        engine: Engine,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::bind_shared(addr, Arc::new(SharedEngine::new(engine)), config)
    }

    /// Like [`Server::bind`], but over an engine the caller keeps a
    /// handle to — the REPL's `.serve` shares its session engine with
    /// the service this way.
    pub fn bind_shared(
        addr: impl std::net::ToSocketAddrs,
        engine: Arc<SharedEngine>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        {
            let mut guard = engine.write();
            if config.scan_workers > 0 {
                guard.options_mut().parallel_workers = config.scan_workers;
            }
            // Semantic result caching is opt-in per process: the
            // VAMANA_VIEWS environment variable enables it on servers
            // whose embedder did not set `EngineOptions::views` itself
            // (the replica e2e suite turns it on for spawned followers
            // this way).
            if matches!(
                std::env::var("VAMANA_VIEWS").ok().as_deref(),
                Some("1") | Some("on") | Some("true")
            ) {
                guard.options_mut().views = true;
            }
            // Whole-query fusion gets the same opt-in: VAMANA_FUSE
            // enables the cost-gated fusion pass on servers whose
            // embedder left `EngineOptions::fuse` at its default.
            if matches!(
                std::env::var("VAMANA_FUSE").ok().as_deref(),
                Some("1") | Some("on") | Some("true")
            ) {
                guard.options_mut().fuse = true;
            }
            // Durable stores get a replication ring at bind time so the
            // `REPLICATE` feed can serve committed frames; checkpoints
            // truncate only the file log, never this ring.
            if guard.store().is_durable() && guard.store().replication_log().is_none() {
                guard
                    .store_mut()
                    .and_then(|s| {
                        s.attach_replication(config.repl_retain)
                            .map_err(vamana_core::EngineError::Storage)
                    })
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
            }
        }
        let shared = Arc::new(Shared {
            engine,
            cache: PlanCache::new(config.plan_cache_size),
            metrics: Metrics::default(),
            config: config.clone(),
            stopping: AtomicBool::new(false),
            writer_lane: Mutex::new(()),
            feeds: AtomicU64::new(0),
        });
        let pool = Arc::new(WorkerPool::new(
            config.workers,
            config.queue_depth,
            Arc::clone(&shared),
        ));
        Ok(Server {
            listener,
            shared,
            pool,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state, for embedding (the REPL inspects metrics).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Serves until [`ServerHandle::stop`] flips the stop flag (or
    /// forever when run directly). Accepted connections get their own
    /// thread; the accept loop itself never does protocol work.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            self.shared
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let pool = Arc::clone(&self.pool);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &shared, &pool);
            });
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a handle
    /// to stop it (used by tests and the REPL's `.serve`).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::Builder::new()
            .name("vamana-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// A running server; dropping it stops the accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (metrics, cache, engine) of the running server.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Stops accepting and joins the accept thread. Existing
    /// connections finish their in-flight request and then fail on the
    /// next read.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Parses and answers requests from one client until QUIT/EOF.
fn serve_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    pool: &Arc<WorkerPool>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut limit = shared.config.default_limit;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        let request = line.trim_end_matches(['\n', '\r']);
        if request.is_empty() {
            continue;
        }
        let (verb, rest) = match request.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (request, ""),
        };
        // A replica is read-only: every mutating verb is redirected to
        // the primary (queries, stats and lag checks proceed normally).
        if let Some(role) = &shared.config.replica {
            if matches!(
                verb,
                "LOADXML" | "LOAD" | "INSERT" | "DELETE" | "CHECKPOINT"
            ) {
                writeln!(
                    writer,
                    "ERR readonly replica; send writes to the primary at {}",
                    role.primary
                )?;
                writer.flush()?;
                continue;
            }
        }
        match verb {
            "PING" => writeln!(writer, "OK pong")?,
            "QUIT" => {
                writeln!(writer, "OK bye")?;
                return Ok(());
            }
            "LIMIT" => match rest.parse::<usize>() {
                Ok(n) => {
                    limit = n;
                    writeln!(writer, "OK limit {n}")?;
                }
                Err(_) => writeln!(writer, "ERR proto LIMIT needs a non-negative integer")?,
            },
            "STATS" => {
                for stat in render_stats(shared) {
                    writeln!(writer, "{stat}")?;
                }
                writeln!(writer, "OK")?;
            }
            // Materialized-view inspection. Allowed on replicas: the
            // view cache is node-local derived state, not document data.
            "CACHE" => match rest {
                "" | "LIST" => {
                    let views = shared.engine.read().views().list();
                    for v in &views {
                        writeln!(
                            writer,
                            "VIEW doc={} rows={} bytes={} generation={} hits={} {}",
                            v.doc,
                            v.rows,
                            v.bytes,
                            v.generation,
                            v.hits,
                            escape_line(&v.xpath)
                        )?;
                    }
                    writeln!(writer, "OK {} view(s)", views.len())?;
                }
                "CLEAR" => {
                    shared.engine.read().views().clear();
                    shared.cache.clear();
                    writeln!(writer, "OK cache cleared")?;
                }
                _ => writeln!(writer, "ERR proto CACHE takes LIST or CLEAR")?,
            },
            "LAG" => {
                for line in render_lag(shared) {
                    writeln!(writer, "{line}")?;
                }
                writeln!(writer, "OK lag")?;
            }
            "REPLICATE" => {
                let Ok(from) = rest.parse::<u64>() else {
                    writeln!(writer, "ERR proto REPLICATE needs a starting LSN")?;
                    writer.flush()?;
                    continue;
                };
                // The connection becomes a one-way frame feed; it never
                // returns to the line protocol.
                return feed::serve_feed(writer, shared, from);
            }
            "LOADXML" | "LOAD" => {
                let response = handle_load(shared, verb, rest);
                writeln!(writer, "{response}")?;
            }
            "INSERT" | "DELETE" | "CHECKPOINT" => {
                let request = match parse_update(verb, rest) {
                    Ok(r) => r,
                    Err(msg) => {
                        writeln!(writer, "ERR proto {msg}")?;
                        writer.flush()?;
                        continue;
                    }
                };
                let (tx, rx) = std::sync::mpsc::sync_channel(1);
                let job = Job {
                    request,
                    limit,
                    deadline: Instant::now() + shared.config.query_timeout,
                    reply: tx,
                };
                if pool.try_submit(job).is_err() {
                    shared
                        .metrics
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "ERR {}", ServerError::Busy)?;
                    continue;
                }
                write_reply(&mut writer, &rx)?;
            }
            "QUERY" | "EVAL" | "EXPLAIN" | "ANALYZE" if rest.is_empty() => {
                writeln!(writer, "ERR proto {verb} needs an XPath expression")?;
            }
            "QUERY" | "EVAL" | "EXPLAIN" | "ANALYZE" => {
                // EXPLAIN/ANALYZE take an optional JSON modifier before
                // the expression: `EXPLAIN JSON //a/b`.
                let (json, xpath) = match rest.strip_prefix("JSON") {
                    Some(r) if r.starts_with(' ') && matches!(verb, "EXPLAIN" | "ANALYZE") => {
                        (true, r.trim())
                    }
                    _ => (false, rest),
                };
                if xpath.is_empty() {
                    writeln!(writer, "ERR proto {verb} needs an XPath expression")?;
                    writer.flush()?;
                    continue;
                }
                let (tx, rx) = std::sync::mpsc::sync_channel(1);
                let request = match verb {
                    "QUERY" => Request::Query {
                        xpath: xpath.to_string(),
                    },
                    "EVAL" => Request::Eval {
                        xpath: xpath.to_string(),
                    },
                    "EXPLAIN" => Request::Explain {
                        xpath: xpath.to_string(),
                        json,
                    },
                    _ => Request::Analyze {
                        xpath: xpath.to_string(),
                        json,
                    },
                };
                let job = Job {
                    request,
                    limit,
                    deadline: Instant::now() + shared.config.query_timeout,
                    reply: tx,
                };
                if pool.try_submit(job).is_err() {
                    shared
                        .metrics
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "ERR {}", ServerError::Busy)?;
                    continue;
                }
                write_reply(&mut writer, &rx)?;
            }
            _ => writeln!(writer, "ERR proto unknown request {verb}")?,
        }
        writer.flush()?;
    }
}

/// Waits for the worker's reply and serializes it.
fn write_reply(
    writer: &mut TcpStream,
    rx: &Receiver<Result<Outcome, ServerError>>,
) -> std::io::Result<()> {
    match rx.recv() {
        Ok(Ok(Outcome::Rows {
            rendered,
            cached,
            elapsed,
            buffer_hits,
            buffer_misses,
            ..
        })) => {
            for row in &rendered.lines {
                writeln!(writer, "ROW {}", escape_line(row))?;
            }
            writeln!(
                writer,
                "OK {} row(s) plan={} {}us hits={} misses={}",
                rendered.total,
                if cached { "cached" } else { "compiled" },
                elapsed.as_micros(),
                buffer_hits,
                buffer_misses
            )
        }
        Ok(Ok(Outcome::Scalar { text, elapsed })) => {
            writeln!(writer, "VAL {}", escape_line(&text))?;
            writeln!(writer, "OK scalar {}us", elapsed.as_micros())
        }
        Ok(Ok(Outcome::Report { lines, elapsed })) => {
            for line in &lines {
                writeln!(writer, "PLAN {}", escape_line(line))?;
            }
            writeln!(
                writer,
                "OK {} line(s) {}us",
                lines.len(),
                elapsed.as_micros()
            )
        }
        Ok(Ok(Outcome::Updated {
            matched,
            inserted,
            deleted,
            lsn,
            generation,
            writer_wait,
            elapsed,
        })) => writeln!(
            writer,
            "OK update matched={matched} inserted={inserted} deleted={deleted} \
             lsn={lsn} generation={generation} writer_wait={}us {}us",
            writer_wait.as_micros(),
            elapsed.as_micros()
        ),
        Ok(Ok(Outcome::Checkpointed {
            records,
            last_lsn,
            elapsed,
        })) => writeln!(
            writer,
            "OK checkpoint records={records} lsn={last_lsn} {}us",
            elapsed.as_micros()
        ),
        Ok(Err(e)) => writeln!(writer, "ERR {e}"),
        // Worker pool shut down before replying.
        Err(_) => writeln!(writer, "ERR busy server shutting down"),
    }
}

/// Parses `INSERT <doc> <target> <fragment>`, `DELETE <doc> <target>`
/// and `CHECKPOINT`. The insert fragment is split from the target XPath
/// at the first ` <` (a fragment is always markup; a target never
/// contains ` <` because comparisons bind tighter than spaces in our
/// grammar's practical use — and `<` in predicates is written without a
/// leading space or the update is rejected as missing its fragment).
fn parse_update(verb: &str, rest: &str) -> Result<Request, String> {
    if verb == "CHECKPOINT" {
        return Ok(Request::Checkpoint);
    }
    let Some((doc, tail)) = rest.split_once(' ').map(|(d, t)| (d, t.trim())) else {
        return Err(format!("{verb} needs a document and a target XPath"));
    };
    if doc.is_empty() || tail.is_empty() {
        return Err(format!("{verb} needs a document and a target XPath"));
    }
    match verb {
        "INSERT" => {
            let Some(at) = tail.find(" <") else {
                return Err("INSERT needs an XML fragment after the target XPath".into());
            };
            let (target, fragment) = tail.split_at(at);
            Ok(Request::Update {
                doc: doc.to_string(),
                op: UpdateOp::Insert {
                    target: target.trim().to_string(),
                    fragment: fragment.trim().to_string(),
                },
            })
        }
        _ => Ok(Request::Update {
            doc: doc.to_string(),
            op: UpdateOp::Delete {
                target: tail.to_string(),
            },
        }),
    }
}

/// Handles `LOAD`/`LOADXML` on the connection thread (write lock).
fn handle_load(shared: &Shared, verb: &str, rest: &str) -> String {
    let Some((name, payload)) = rest.split_once(' ').map(|(n, p)| (n, p.trim())) else {
        return format!("ERR proto {verb} needs a name and a payload");
    };
    let xml = if verb == "LOAD" {
        match std::fs::read_to_string(payload) {
            Ok(xml) => xml,
            Err(e) => return format!("ERR query cannot read {payload}: {e}"),
        }
    } else {
        payload.to_string()
    };
    match shared.engine.load_xml(name, &xml) {
        // No cache clear: plans validate per document, and a load never
        // changes an existing document's generation — other documents'
        // cached plans stay warm.
        Ok(id) => format!(
            "OK loaded document {} generation {}",
            id.0,
            shared.engine.generation()
        ),
        Err(e) => format!("ERR query {e}"),
    }
}

/// One `STAT key value` line per metric, cache and store counter.
fn render_stats(shared: &Shared) -> Vec<String> {
    let mut out = Vec::new();
    shared.metrics.render(&mut out);
    let (hits, misses) = shared.cache.counters();
    out.push(format!("STAT plan_cache_hits {hits}"));
    out.push(format!("STAT plan_cache_misses {misses}"));
    out.push(format!("STAT plan_cache_size {}", shared.cache.len()));
    out.push(format!("STAT workers {}", shared.config.workers));
    out.push(format!("STAT queue_depth {}", shared.config.queue_depth));
    let engine = shared.engine.read();
    let stats = engine.store().stats();
    out.push(format!("STAT documents {}", stats.documents));
    out.push(format!("STAT store_tuples {}", stats.tuples));
    out.push(format!("STAT store_pages {}", stats.pages));
    out.push(format!(
        "STAT store_generation {}",
        engine.store().generation()
    ));
    out.push(format!("STAT pool_buffer_hits {}", stats.buffer.hits));
    out.push(format!("STAT pool_buffer_misses {}", stats.buffer.misses));
    out.push(format!("STAT pool_batch_pins {}", stats.buffer.batch_pins));
    out.push(format!("STAT pool_pins_saved {}", stats.buffer.pins_saved));
    let views = engine.views().stats();
    out.push(format!("STAT view_hits {}", views.hits));
    out.push(format!("STAT view_misses {}", views.misses));
    out.push(format!("STAT view_evictions {}", views.evictions));
    out.push(format!("STAT view_bytes {}", views.bytes));
    out.push(format!("STAT view_views {}", views.views));
    let par = engine.parallel_stats();
    out.push(format!("STAT scan_workers {}", engine.effective_workers()));
    out.push(format!("STAT pool_par_morsels {}", par.morsels));
    out.push(format!("STAT pool_par_batches {}", par.worker_batches));
    out.push(format!("STAT pool_par_merge_stalls {}", par.merge_stalls));
    let (fused_chains, fused_steps) = engine.fused_stats();
    out.push(format!("STAT fused_chains {fused_chains}"));
    out.push(format!("STAT fused_steps {fused_steps}"));
    let wal = engine.store().wal_stats();
    out.push(format!(
        "STAT store_durable {}",
        engine.store().is_durable() as u32
    ));
    out.push(format!("STAT wal_records {}", wal.records));
    out.push(format!("STAT wal_depth {}", wal.depth));
    out.push(format!("STAT wal_fsyncs {}", wal.fsyncs));
    out.push(format!("STAT wal_last_lsn {}", wal.last_lsn));
    out.push(format!("STAT wal_replayed_lsn {}", wal.replayed_lsn));
    out.push(format!(
        "STAT engine_writer_wait_us {}",
        engine.writer_wait_total().as_micros()
    ));
    match &shared.config.replica {
        Some(role) => {
            let s = &role.status;
            let applied = s.applied_lsn.load(Ordering::Relaxed);
            let primary_last = s.primary_last_lsn.load(Ordering::Relaxed);
            out.push(format!(
                "STAT repl_received_lsn {}",
                s.received_lsn.load(Ordering::Relaxed)
            ));
            out.push(format!("STAT repl_applied_lsn {applied}"));
            out.push(format!("STAT repl_primary_last_lsn {primary_last}"));
            out.push(format!(
                "STAT repl_behind {}",
                primary_last.saturating_sub(applied)
            ));
            out.push(format!(
                "STAT repl_connected {}",
                s.connected.load(Ordering::Relaxed) as u32
            ));
            out.push(format!(
                "STAT repl_reconnects {}",
                s.reconnects.load(Ordering::Relaxed)
            ));
            out.push(format!(
                "STAT repl_snapshots {}",
                s.snapshots.load(Ordering::Relaxed)
            ));
        }
        None => {
            if let Some(log) = engine.store().replication_log() {
                let st = log.stats();
                out.push(format!("STAT repl_last_lsn {}", st.last_lsn));
                out.push(format!("STAT repl_floor_lsn {}", st.floor_lsn));
                out.push(format!("STAT repl_retained {}", st.retained));
                out.push(format!(
                    "STAT repl_feeds {}",
                    shared.feeds.load(Ordering::Relaxed)
                ));
            }
        }
    }
    out
}

/// One `LAG key value` line per replication gauge — the lightweight
/// check monitoring and followers poll (cheaper than `STATS`, no store
/// snapshot).
fn render_lag(shared: &Shared) -> Vec<String> {
    let mut out = Vec::new();
    match &shared.config.replica {
        Some(role) => {
            let s = &role.status;
            let applied = s.applied_lsn.load(Ordering::Relaxed);
            let primary_last = s.primary_last_lsn.load(Ordering::Relaxed);
            out.push("LAG role replica".to_string());
            out.push(format!("LAG primary {}", role.primary));
            out.push(format!(
                "LAG received_lsn {}",
                s.received_lsn.load(Ordering::Relaxed)
            ));
            out.push(format!("LAG applied_lsn {applied}"));
            out.push(format!("LAG primary_last_lsn {primary_last}"));
            out.push(format!(
                "LAG behind {}",
                primary_last.saturating_sub(applied)
            ));
            out.push(format!(
                "LAG connected {}",
                s.connected.load(Ordering::Relaxed) as u32
            ));
        }
        None => {
            let engine = shared.engine.read();
            out.push("LAG role primary".to_string());
            out.push(format!("LAG last_lsn {}", engine.store().replicated_lsn()));
            if let Some(log) = engine.store().replication_log() {
                let st = log.stats();
                out.push(format!("LAG floor_lsn {}", st.floor_lsn));
                out.push(format!("LAG retained {}", st.retained));
            }
            out.push(format!(
                "LAG feeds {}",
                shared.feeds.load(Ordering::Relaxed)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_framing_characters() {
        assert_eq!(escape_line("a\tb\nc\\d"), "a\\tb\\nc\\\\d");
        assert_eq!(escape_line("plain"), "plain");
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= c.workers);
        assert!(c.query_timeout > Duration::ZERO);
    }
}
