//! Primary-side replication feed: turns one accepted connection into a
//! one-way stream of committed WAL frames.
//!
//! ## Wire grammar
//!
//! The follower sends `REPLICATE <from_lsn>` on the line protocol; the
//! feed answers one handshake line and then switches to binary frames:
//!
//! ```text
//! OK replicate snapshot=0 lsn=<primary_last>     → frames follow
//! OK replicate snapshot=1 lsn=<snap>             → snapshot first:
//!   SNAPDOC <name> <escaped-compact-xml>           one per document,
//!   SNAPEND <snap>                                 load order, then frames
//! ```
//!
//! Frames are byte-identical to the on-disk WAL framing
//! (`[len:u32][lsn:u64][crc:u32][payload]`, CRC-32 over `lsn‖payload`) so
//! the follower appends them to its own log without re-framing. A frame
//! with an *empty payload* is a heartbeat: its LSN is the primary's last
//! committed LSN, it is never persisted, and it flows whenever the feed
//! has been idle for [`crate::ServerConfig::feed_heartbeat`].
//!
//! The snapshot path triggers when `from_lsn` has aged out of the
//! retention ring. Documents are serialized compactly under the engine
//! read lock (one consistent cut at `snap`), and the deterministic
//! FLEX key assignment of the bulk loader guarantees the follower
//! reproduces the primary's exact key space by loading them in order.

use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use vamana_mass::{encode_frame, ReplicationLog};

use crate::{escape_line, Shared};

/// Frames shipped per batch before flushing.
const FEED_BATCH: usize = 512;

/// Serves one `REPLICATE <from>` connection until the client hangs up,
/// the server stops, or the follower falls below retention mid-stream
/// (it will reconnect and snapshot).
pub(crate) fn serve_feed(
    stream: TcpStream,
    shared: &Arc<Shared>,
    from: u64,
) -> std::io::Result<()> {
    let log = shared.engine.read().store().replication_log();
    let Some(log) = log else {
        let mut w = stream;
        writeln!(w, "ERR repl store is not durable, nothing to replicate")?;
        return w.flush();
    };
    shared.feeds.fetch_add(1, Ordering::Relaxed);
    let result = feed_loop(stream, shared, &log, from);
    shared.feeds.fetch_sub(1, Ordering::Relaxed);
    result
}

fn feed_loop(
    stream: TcpStream,
    shared: &Arc<Shared>,
    log: &ReplicationLog,
    mut from: u64,
) -> std::io::Result<()> {
    let mut writer = BufWriter::new(stream);
    if log.frames_after(from, 1).is_none() {
        // `from` predates retention: ship a consistent snapshot, then
        // stream from the snapshot LSN.
        let engine = shared.engine.read();
        let snap = engine.store().replicated_lsn();
        writeln!(writer, "OK replicate snapshot=1 lsn={snap}")?;
        for doc in engine.store().documents() {
            let xml = vamana_mass::export::export_subtree_xml(engine.store(), &doc.doc_key)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            writeln!(writer, "SNAPDOC {} {}", doc.name, escape_line(&xml))?;
        }
        writeln!(writer, "SNAPEND {snap}")?;
        from = snap;
    } else {
        writeln!(
            writer,
            "OK replicate snapshot=0 lsn={}",
            log.stats().last_lsn
        )?;
    }
    writer.flush()?;
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Some(frames) = log.frames_after(from, FEED_BATCH) else {
            // Retention overtook this follower while the feed was
            // backed up; closing makes it reconnect into the snapshot
            // path above.
            return Ok(());
        };
        if frames.is_empty() {
            if !log.wait_beyond(from, shared.config.feed_heartbeat) {
                let last = log.stats().last_lsn.max(from);
                writer.write_all(&encode_frame(last, &[]))?;
                writer.flush()?;
            }
            continue;
        }
        for (lsn, payload) in frames {
            writer.write_all(&encode_frame(lsn, &payload))?;
            from = lsn;
        }
        writer.flush()?;
    }
}
