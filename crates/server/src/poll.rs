//! Readiness polling over nonblocking sockets — a minimal epoll shim.
//!
//! The build environment has no registry access, so instead of `mio`
//! this module binds the three epoll syscalls directly from the C
//! library the Rust standard library already links on Linux (the same
//! vendored-deps philosophy as `shims/{rand,proptest,criterion}`: the
//! smallest API subset the workspace needs, no external crate).
//!
//! [`Poller`] is level-triggered: a registered descriptor is reported
//! on every [`Poller::wait`] while it stays readable/writable, which
//! lets the event loop do bounded work per wakeup without tracking
//! edge state. [`Waker`] is a nonblocking socketpair whose read end is
//! registered like any connection — worker threads wake the loop by
//! writing one byte, and the loop drains it on service.

use std::io;
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};

/// Interest in readability (`EPOLLIN`).
pub const READABLE: u32 = 0x001;
/// Interest in writability (`EPOLLOUT`).
pub const WRITABLE: u32 = 0x004;
/// Peer hangup (`EPOLLHUP` | `EPOLLERR` | `EPOLLRDHUP`) — always
/// reported, never requested.
pub const HANGUP: u32 = 0x010 | 0x008 | 0x2000;

/// One readiness event: which registered token fired and how.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Bitmask of [`READABLE`] / [`WRITABLE`] / [`HANGUP`].
    pub ready: u32,
}

impl Event {
    /// The descriptor has bytes to read (or a pending accept).
    pub fn readable(&self) -> bool {
        self.ready & (READABLE | HANGUP) != 0
    }

    /// The descriptor can accept more bytes.
    pub fn writable(&self) -> bool {
        self.ready & (WRITABLE | HANGUP) != 0
    }
}

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// there has no padding between the 32-bit mask and the 64-bit data).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// A level-triggered readiness poller over raw descriptors.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let evp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        if unsafe { epoll_ctl(self.epfd, op, fd, evp) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with `interest`
    /// ([`READABLE`] and/or [`WRITABLE`]).
    pub fn register(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest set of an already-registered descriptor.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Removes `fd` from the poll set (dropping the fd also removes it;
    /// this exists for handoff, where the socket lives on).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (−1 = forever) for readiness, filling
    /// `out`. Spurious empty returns (EINTR, timeout) yield `Ok(())`
    /// with `out` empty.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
        // SAFETY: `buf` is a valid writable array of `buf.len()` events.
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &buf[..n as usize] {
            // A packed struct's fields must be copied out before use.
            let (events, data) = (ev.events, ev.data);
            out.push(Event {
                token: data,
                ready: events,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own the descriptor.
        unsafe { close(self.epfd) };
    }
}

/// Wakes a [`Poller`] from another thread: a nonblocking loopback
/// socket pair whose read end is registered in the poll set.
pub struct Waker {
    /// Read side, registered by the event loop.
    reader: TcpStream,
    writer: TcpStream,
    /// Collapses bursts of wakes into one pending byte.
    pending: AtomicBool,
}

/// The reserved token wakers are registered under.
pub const WAKER_TOKEN: u64 = 1;

impl Waker {
    /// Builds the pair. Uses a loopback TCP pair rather than a Unix
    /// socketpair so the code stays within `std::net` (the rest of the
    /// server is TCP anyway and the pair never leaves the process).
    pub fn new() -> io::Result<Waker> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let writer = TcpStream::connect(listener.local_addr()?)?;
        let (reader, _) = listener.accept()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        writer.set_nodelay(true)?;
        Ok(Waker {
            reader,
            writer,
            pending: AtomicBool::new(false),
        })
    }

    /// The descriptor the event loop registers ([`WAKER_TOKEN`]).
    pub fn fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// Wakes the poller. Cheap when a wake is already pending.
    pub fn wake(&self) {
        if self.pending.swap(true, Ordering::AcqRel) {
            return;
        }
        use std::io::Write;
        let _ = (&self.writer).write(&[1u8]);
    }

    /// Drains pending wake bytes; called by the loop on [`WAKER_TOKEN`]
    /// readiness.
    pub fn drain(&self) {
        self.pending.store(false, Ordering::Release);
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.reader).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn poller_reports_readability() {
        let poller = Poller::new().unwrap();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), READABLE, 7).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty(), "nothing written yet: {events:?}");

        a.write_all(b"hello").unwrap();
        a.flush().unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        let mut buf = [0u8; 8];
        let n = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), READABLE, WAKER_TOKEN).unwrap();
        waker.wake();
        waker.wake(); // coalesced
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == WAKER_TOKEN));
        waker.drain();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty(), "drained waker still ready");
    }
}
