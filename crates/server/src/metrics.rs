//! Server metrics registry: lock-free counters and a log-bucketed
//! latency histogram, dumped by the `STATS` protocol command.
//!
//! Everything is atomics so the query path never takes a lock to record
//! an observation; quantiles are computed on demand from the histogram
//! (upper-bound of the bucket containing the target rank, so reported
//! percentiles are conservative to within one power of two).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency buckets: bucket `i` holds observations in
/// `[2^i, 2^(i+1))` microseconds, which spans 1 µs to ~35 minutes.
const BUCKETS: usize = 32;

/// Log₂-bucketed latency histogram over microseconds.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile in microseconds (`q` in `[0, 1]`), or 0 with no
    /// observations. Returns the upper bound of the target bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// All counters the server exposes. Grouped here so handler code takes
/// one `&Metrics` and the STATS command renders from one place.
#[derive(Default)]
pub struct Metrics {
    /// Queries that ran to completion (success or query error).
    pub queries: AtomicU64,
    /// Queries that failed with a compile/execution error.
    pub errors: AtomicU64,
    /// Jobs rejected at admission because the queue was full.
    pub busy_rejections: AtomicU64,
    /// Jobs that exceeded their deadline (queued or mid-execution).
    pub timeouts: AtomicU64,
    /// Total result rows produced (before per-connection limits).
    pub rows_returned: AtomicU64,
    /// Buffer-pool hits observed during queries (see
    /// [`vamana_core::QueryProfile`] for the attribution caveat).
    pub buffer_hits: AtomicU64,
    /// Buffer-pool misses observed during queries.
    pub buffer_misses: AtomicU64,
    /// Pages pinned once by batched scans during queries (see
    /// `BufferStats::batch_pins`).
    pub batch_pins: AtomicU64,
    /// Per-record pool entries batched scans avoided during queries —
    /// `pins_saved / batch_pins` is the observed amortization factor.
    pub pins_saved: AtomicU64,
    /// Applied `INSERT`/`DELETE` updates.
    pub updates: AtomicU64,
    /// Completed `CHECKPOINT`s.
    pub checkpoints: AtomicU64,
    /// Cumulative microseconds update workers spent parked at the
    /// engine's epoch gate waiting for in-flight readers to drain.
    pub writer_wait_us: AtomicU64,
    /// Workers currently executing a job (gauge).
    pub active_workers: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Completed-query latency.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Renders one `STAT key value` line per counter (cache and store
    /// figures are appended by the caller, which owns those).
    pub fn render(&self, out: &mut Vec<String>) {
        let c = |n: &AtomicU64| n.load(Ordering::Relaxed);
        out.push(format!("STAT queries_total {}", c(&self.queries)));
        out.push(format!("STAT errors_total {}", c(&self.errors)));
        out.push(format!("STAT busy_rejections {}", c(&self.busy_rejections)));
        out.push(format!("STAT timeouts {}", c(&self.timeouts)));
        out.push(format!("STAT rows_returned {}", c(&self.rows_returned)));
        out.push(format!("STAT buffer_hits {}", c(&self.buffer_hits)));
        out.push(format!("STAT buffer_misses {}", c(&self.buffer_misses)));
        out.push(format!("STAT batch_pins {}", c(&self.batch_pins)));
        out.push(format!("STAT pins_saved {}", c(&self.pins_saved)));
        out.push(format!("STAT updates_total {}", c(&self.updates)));
        out.push(format!("STAT checkpoints_total {}", c(&self.checkpoints)));
        out.push(format!("STAT writer_wait_us {}", c(&self.writer_wait_us)));
        out.push(format!("STAT active_workers {}", c(&self.active_workers)));
        out.push(format!("STAT connections_total {}", c(&self.connections)));
        out.push(format!(
            "STAT latency_p50_us {}",
            self.latency.quantile_us(0.50)
        ));
        out.push(format!(
            "STAT latency_p95_us {}",
            self.latency.quantile_us(0.95)
        ));
        out.push(format!(
            "STAT latency_p99_us {}",
            self.latency.quantile_us(0.99)
        ));
    }
}

/// RAII guard for the active-worker gauge.
pub struct ActiveGuard<'a>(&'a Metrics);

impl<'a> ActiveGuard<'a> {
    /// Increments the gauge until dropped.
    pub fn enter(metrics: &'a Metrics) -> Self {
        metrics.active_workers.fetch_add(1, Ordering::Relaxed);
        ActiveGuard(metrics)
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_buckets() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for _ in 0..90 {
            h.record(Duration::from_micros(10)); // bucket [8, 16)
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10)); // bucket [8192, 16384)
        }
        assert_eq!(h.quantile_us(0.50), 16);
        assert_eq!(h.quantile_us(0.95), 16384);
        assert!(h.quantile_us(0.99) >= 16384);
    }

    #[test]
    fn active_gauge_balances() {
        let m = Metrics::default();
        {
            let _a = ActiveGuard::enter(&m);
            let _b = ActiveGuard::enter(&m);
            assert_eq!(m.active_workers.load(Ordering::Relaxed), 2);
        }
        assert_eq!(m.active_workers.load(Ordering::Relaxed), 0);
    }
}
