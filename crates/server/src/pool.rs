//! Worker pool with bounded-queue admission control.
//!
//! Connection threads parse requests and *submit* them; a fixed set of
//! worker threads executes them against the shared engine. The queue
//! between the two is bounded: when it is full, submission fails
//! immediately and the client gets a `busy` response instead of the
//! server accumulating unbounded work — load shedding at admission, the
//! only place it is cheap.

use crate::{execute_job, Job, Shared};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Queue {
    jobs: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

impl Queue {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.jobs.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admission control: enqueues `job` unless the queue is full or the
    /// pool is shutting down, in which case the job is handed back.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut state = self.lock();
        if !state.open || state.jobs.len() >= self.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the pool closes and the
    /// queue drains.
    fn pop(&self) -> Option<Job> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.lock().open = false;
        self.ready.notify_all();
    }
}

/// Fixed worker threads over a bounded job queue.
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads executing jobs against `shared`.
    pub fn new(workers: usize, queue_depth: usize, shared: Arc<Shared>) -> Self {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            capacity: queue_depth.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vamana-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            execute_job(&shared, job);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { queue, workers }
    }

    /// Submits a job, or returns it when the server is at capacity.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        self.queue.try_push(job)
    }

    /// Closes the queue and joins the workers (queued jobs still run;
    /// their clients get replies before the pool exits).
    pub fn shutdown(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}
