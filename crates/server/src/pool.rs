//! Worker pool with bounded-queue admission control.
//!
//! Connection handlers (a thread per connection on the threaded core,
//! the event loop on the nonblocking core) parse requests and *submit*
//! them; a fixed set of worker threads executes them. The queue between
//! the two is bounded: when it is full, submission fails immediately
//! and the client gets a `busy` response instead of the server
//! accumulating unbounded work — load shedding at admission, the only
//! place it is cheap.
//!
//! The pool is generic over the job type so `vamana-server` (engine
//! jobs) and `vamana-router` (backend fan-out jobs) share one
//! implementation. Control-plane work (`STATS`, `LAG`, health probes)
//! goes through [`WorkerPool::submit`], which bypasses the capacity
//! check — monitoring must stay answerable exactly when the server is
//! saturated enough to reject queries.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Queue<J> {
    jobs: Mutex<QueueState<J>>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState<J> {
    jobs: VecDeque<J>,
    open: bool,
}

impl<J> Queue<J> {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<J>> {
        self.jobs.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admission control: enqueues `job` unless the queue is full or the
    /// pool is shutting down, in which case the job is handed back.
    fn try_push(&self, job: J, enforce_capacity: bool) -> Result<(), J> {
        let mut state = self.lock();
        if !state.open || (enforce_capacity && state.jobs.len() >= self.capacity) {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the pool closes and the
    /// queue drains.
    fn pop(&self) -> Option<J> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.lock().open = false;
        self.ready.notify_all();
    }
}

/// Fixed worker threads over a bounded job queue.
pub struct WorkerPool<J: Send + 'static> {
    queue: Arc<Queue<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads (named `<name>-N`) executing jobs with
    /// `run`.
    pub fn new<F>(workers: usize, queue_depth: usize, name: &str, run: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            capacity: queue_depth.max(1),
        });
        let run = Arc::new(run);
        let workers = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let run = Arc::clone(&run);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            run(job);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { queue, workers }
    }

    /// Submits a job, or returns it when the server is at capacity.
    pub fn try_submit(&self, job: J) -> Result<(), J> {
        self.queue.try_push(job, true)
    }

    /// Submits a control-plane job, bypassing the capacity check; fails
    /// only when the pool is shutting down.
    pub fn submit(&self, job: J) -> Result<(), J> {
        self.queue.try_push(job, false)
    }

    /// Closes the queue and joins the workers (queued jobs still run;
    /// their clients get replies before the pool exits).
    pub fn shutdown(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.shutdown();
    }
}
