//! Shared raw-TCP test client for protocol-level tests.
//!
//! The server's own e2e suites and the replication e2e tests all need
//! the same minimal client: one request line out, response lines in
//! until the `OK`/`ERR` terminator. It lives in the library (not a
//! `tests/` helper) so downstream crates — `vamana-replica`,
//! `vamana-bench` — reuse it instead of keeping copies.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::ServerHandle;

/// A minimal protocol client: send one request line, read lines until
/// the `OK`/`ERR` terminator.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server spawned in-process.
    pub fn connect(handle: &ServerHandle) -> Client {
        Client::connect_addr(handle.addr())
    }

    /// Connects to any address (e.g. a follower process bound elsewhere).
    pub fn connect_addr(addr: impl ToSocketAddrs) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// Like [`Client::connect_addr`] but retries until the peer accepts
    /// (a follower process that is still binding) or `deadline` passes.
    pub fn connect_retry(addr: impl ToSocketAddrs + Copy, deadline: Duration) -> Client {
        let until = Instant::now() + deadline;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    return Client {
                        reader: BufReader::new(stream.try_clone().expect("clone")),
                        writer: stream,
                    }
                }
                Err(e) if Instant::now() < until => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("connect: {e}"),
            }
        }
    }

    /// Sends `request` and returns every response line, terminator last.
    pub fn round_trip(&mut self, request: &str) -> Vec<String> {
        writeln!(self.writer, "{request}").expect("send");
        self.writer.flush().expect("flush");
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("recv");
            assert!(n > 0, "server closed mid-response to {request:?}");
            let line = line.trim_end().to_string();
            let done = line.starts_with("OK") || line.starts_with("ERR");
            lines.push(line);
            if done {
                return lines;
            }
        }
    }
}

/// Value of `<prefix> <key> <value>` in a response (panics when absent
/// or non-numeric) — shared parser behind [`stat_value`] and
/// [`lag_value`].
fn kv_value(lines: &[String], prefix: &str, key: &str) -> u64 {
    let want = format!("{prefix} {key} ");
    lines
        .iter()
        .find_map(|l| l.strip_prefix(&want))
        .unwrap_or_else(|| panic!("no {prefix} {key} in {lines:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {prefix} {key}"))
}

/// Numeric value of `STAT <key> <value>` in a `STATS` response.
pub fn stat_value(stats: &[String], key: &str) -> u64 {
    kv_value(stats, "STAT", key)
}

/// Numeric value of `LAG <key> <value>` in a `LAG` response.
pub fn lag_value(lines: &[String], key: &str) -> u64 {
    kv_value(lines, "LAG", key)
}

/// Number of `VIEW …` rows in a `CACHE` response.
pub fn view_count(lines: &[String]) -> usize {
    lines.iter().filter(|l| l.starts_with("VIEW ")).count()
}
