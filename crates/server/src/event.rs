//! The nonblocking server core: one event-loop thread multiplexing
//! every client connection over [`crate::poll::Poller`].
//!
//! The thread-per-connection core (PR 1) burns one OS thread per
//! socket, busy or idle — at hundreds of clients the scheduler, stacks,
//! and context switches become the ceiling, not the engine. This core
//! keeps exactly one thread for *all* connection I/O:
//!
//! - The listener and every connection socket are nonblocking and
//!   registered with a level-triggered poller; an idle connection costs
//!   one epoll entry and a few KB of buffers, no thread.
//! - Requests are parsed **pipelined**: everything the client has sent
//!   is read and buffered in one readiness cycle, and responses are
//!   written back-to-back without waiting for the client to read the
//!   previous one. Per-connection *execution* order is preserved (the
//!   next request dispatches when the previous one completes), so the
//!   protocol semantics are identical to the threaded core — like Redis
//!   pipelining, the win is removing round-trip gaps, not reordering.
//! - Heavy work never runs on the loop. A [`LineService`] either
//!   answers a line inline (cheap protocol verbs) or dispatches it to a
//!   worker pool and later delivers bytes through [`Completions`],
//!   which wakes the loop via the poller's waker.
//! - A connection that switches protocols (the replication feed) is
//!   **handed off**: deregistered, flipped back to blocking, and given
//!   its own thread — long-lived streaming feeds are few and poll-shaped
//!   badly.
//!
//! The core is service-agnostic: `vamana-server` and `vamana-router`
//! both run on it with different [`LineService`] implementations.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};

use crate::poll::{Poller, Waker, READABLE, WAKER_TOKEN, WRITABLE};

/// Identifies one live connection within a core (monotonic, never
/// reused while the core runs).
pub type ConnId = u64;

/// What the service wants done with one request line.
pub enum Dispatch {
    /// Write these bytes (one or more complete protocol lines) now and
    /// keep parsing.
    Reply(Vec<u8>),
    /// The service dispatched the line to a worker which will call
    /// [`Completions::complete`] with the response; the connection's
    /// next line waits for that completion.
    Pending,
    /// Write these bytes, then close the connection once they flush.
    ReplyClose(Vec<u8>),
    /// Detach the socket from the loop and hand it (blocking again) to
    /// this closure on a fresh thread — for verbs that abandon the line
    /// protocol, like `REPLICATE`.
    Handoff(Box<dyn FnOnce(TcpStream) + Send + 'static>),
}

/// A protocol implementation the event core drives. One instance
/// serves every connection; per-connection state is keyed by [`ConnId`].
pub trait LineService: Send + Sync + 'static {
    /// Handles one request line (`\n`-terminated on the wire, trimmed
    /// here). `seq` is the line's per-connection sequence number, to be
    /// echoed through [`Completions::complete`] for pending replies.
    fn handle(&self, conn: ConnId, seq: u64, line: &str) -> Dispatch;

    /// A new connection was accepted.
    fn on_open(&self, _conn: ConnId) {}

    /// The connection closed (EOF, error, or QUIT); drop any state.
    fn on_close(&self, _conn: ConnId) {}
}

/// One completed pending reply, queued for the loop to deliver.
struct Completion {
    conn: ConnId,
    seq: u64,
    bytes: Vec<u8>,
}

struct CompletionInner {
    queue: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// Worker-side handle delivering responses for [`Dispatch::Pending`]
/// lines back into the event loop. Cheap to clone; wakes the loop.
#[derive(Clone)]
pub struct Completions(Arc<CompletionInner>);

impl Completions {
    /// Builds the queue and its waker.
    pub fn new() -> io::Result<Completions> {
        Ok(Completions(Arc::new(CompletionInner {
            queue: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })))
    }

    /// Delivers the response bytes for `(conn, seq)` and wakes the loop.
    /// Safe to call after the connection died — the bytes are dropped.
    pub fn complete(&self, conn: ConnId, seq: u64, bytes: Vec<u8>) {
        self.0
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Completion { conn, seq, bytes });
        self.0.waker.wake();
    }

    /// Wakes the loop without delivering anything (used for shutdown).
    pub fn wake(&self) {
        self.0.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        self.0.waker.drain();
        std::mem::take(&mut self.0.queue.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// Soft cap on buffered-but-unparsed request bytes per connection while
/// a request is in flight; beyond it the loop stops reading from that
/// socket until the request completes (backpressure, not an error).
const RBUF_SOFT_CAP: usize = 1 << 20;

/// Hard cap on a single request line; a client exceeding it is
/// protocol-broken and gets closed. Generous because `LOADXML` carries
/// whole documents inline.
const MAX_LINE: usize = 256 << 20;

const LISTENER_TOKEN: u64 = 0;
const FIRST_CONN_TOKEN: u64 = 2;

struct Conn {
    stream: TcpStream,
    /// Read buffer; `rpos` marks how far lines have been parsed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Write buffer; `wpos` marks how much has reached the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    next_seq: u64,
    /// Sequence number of the dispatched-but-incomplete request, if any.
    in_flight: Option<u64>,
    /// Registered interest bits (to skip redundant `modify` calls).
    interest: u32,
    close_after_flush: bool,
    handoff: Option<Box<dyn FnOnce(TcpStream) + Send + 'static>>,
}

impl Conn {
    fn wants(&self) -> u32 {
        let mut want = 0;
        let reading_ok = !self.close_after_flush
            && self.handoff.is_none()
            && !(self.in_flight.is_some() && self.rbuf.len() - self.rpos > RBUF_SOFT_CAP);
        if reading_ok {
            want |= READABLE;
        }
        if self.wpos < self.wbuf.len() {
            want |= WRITABLE;
        }
        want
    }
}

/// Runs the event loop over `listener` until `stop()` returns true
/// (checked on every wakeup; wake it via [`Completions::wake`] or a
/// throwaway connection). Consumes the thread it is called on.
pub fn run_event_loop<S: LineService>(
    listener: TcpListener,
    service: Arc<S>,
    completions: Completions,
    stop: impl Fn() -> bool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), READABLE, LISTENER_TOKEN)?;
    poller.register(completions.0.waker.fd(), READABLE, WAKER_TOKEN)?;

    let mut conns: HashMap<ConnId, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = Vec::new();
    loop {
        poller.wait(&mut events, -1)?;
        if stop() {
            return Ok(());
        }
        for ev in events.clone() {
            match ev.token {
                LISTENER_TOKEN => loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let token = next_token;
                            next_token += 1;
                            if poller
                                .register(stream.as_raw_fd(), READABLE, token)
                                .is_err()
                            {
                                continue;
                            }
                            conns.insert(
                                token,
                                Conn {
                                    stream,
                                    rbuf: Vec::new(),
                                    rpos: 0,
                                    wbuf: Vec::new(),
                                    wpos: 0,
                                    next_seq: 0,
                                    in_flight: None,
                                    interest: READABLE,
                                    close_after_flush: false,
                                    handoff: None,
                                },
                            );
                            service.on_open(token);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                },
                WAKER_TOKEN => {} // completions drained below
                token => {
                    let alive = match conns.get_mut(&token) {
                        Some(conn) => {
                            let mut ok = true;
                            if ev.readable() {
                                ok = read_and_parse(conn, token, &service);
                            }
                            if ok && ev.writable() {
                                ok = flush(conn);
                            }
                            ok && !done_flushing(conn)
                        }
                        None => continue,
                    };
                    finish_conn(&poller, &mut conns, token, alive, &service);
                }
            }
        }
        // Deliver worker completions (the waker may or may not have been
        // among this batch's events — drain unconditionally, it's cheap).
        for c in completions.drain() {
            let alive = match conns.get_mut(&c.conn) {
                Some(conn) => {
                    // Stale completions (a previous connection under a
                    // reused token is impossible — tokens are never
                    // reused — but a client may have pipelined a QUIT
                    // that raced; sequence numbers make it exact).
                    if conn.in_flight == Some(c.seq) {
                        conn.in_flight = None;
                        conn.wbuf.extend_from_slice(&c.bytes);
                        // The next buffered request can now dispatch.
                        parse_lines(conn, c.conn, &service) && flush(conn) && !done_flushing(conn)
                    } else {
                        true
                    }
                }
                None => continue,
            };
            finish_conn(&poller, &mut conns, c.conn, alive, &service);
        }
        // Refresh interest sets for surviving connections.
        let mut dead = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            let want = conn.wants();
            if want != conn.interest {
                if poller.modify(conn.stream.as_raw_fd(), want, token).is_err() {
                    dead.push(token);
                } else {
                    conn.interest = want;
                }
            }
        }
        for token in dead {
            finish_conn(&poller, &mut conns, token, false, &service);
        }
    }
}

/// Closes `token` if `alive` is false, or executes a ready handoff.
/// Centralizes the "connection leaves the loop" paths.
fn finish_conn<S: LineService>(
    poller: &Poller,
    conns: &mut HashMap<ConnId, Conn>,
    token: ConnId,
    alive: bool,
    service: &Arc<S>,
) {
    if !alive {
        if conns.remove(&token).is_some() {
            service.on_close(token);
        }
        return;
    }
    let ready_handoff = conns
        .get(&token)
        .is_some_and(|c| c.handoff.is_some() && c.in_flight.is_none() && c.wpos >= c.wbuf.len());
    if ready_handoff {
        let mut conn = conns.remove(&token).unwrap();
        let _ = poller.deregister(conn.stream.as_raw_fd());
        let handoff = conn.handoff.take().unwrap();
        if conn.stream.set_nonblocking(false).is_ok() {
            let stream = conn.stream;
            let _ = std::thread::Builder::new()
                .name("vamana-handoff".into())
                .spawn(move || handoff(stream));
        }
        service.on_close(token);
    }
}

/// True when the connection asked to close and everything has flushed.
fn done_flushing(conn: &Conn) -> bool {
    conn.close_after_flush && conn.in_flight.is_none() && conn.wpos >= conn.wbuf.len()
}

/// Reads whatever the socket has, then parses. False = drop connection.
fn read_and_parse<S: LineService>(conn: &mut Conn, token: ConnId, service: &Arc<S>) -> bool {
    let mut buf = [0u8; 16384];
    loop {
        // Honor backpressure mid-read: stop pulling bytes once the
        // unparsed backlog passes the cap with a request in flight.
        if conn.in_flight.is_some() && conn.rbuf.len() - conn.rpos > RBUF_SOFT_CAP {
            break;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                // EOF. Anything already dispatched is answered into a
                // dead socket; just drop the connection.
                return false;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.rbuf.len() - conn.rpos > MAX_LINE {
        return false;
    }
    parse_lines(conn, token, service) && flush(conn)
}

/// Dispatches complete lines until one goes pending, the connection
/// begins closing/handoff, or the buffer runs out. False = drop.
fn parse_lines<S: LineService>(conn: &mut Conn, token: ConnId, service: &Arc<S>) -> bool {
    while conn.in_flight.is_none() && conn.handoff.is_none() && !conn.close_after_flush {
        let Some(nl) = conn.rbuf[conn.rpos..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let end = conn.rpos + nl;
        let line = &conn.rbuf[conn.rpos..end];
        let line = std::str::from_utf8(line.strip_suffix(b"\r").unwrap_or(line));
        conn.rpos = end + 1;
        let Ok(line) = line else {
            conn.wbuf
                .extend_from_slice(b"ERR proto request is not valid UTF-8\n");
            conn.close_after_flush = true;
            break;
        };
        if line.is_empty() {
            continue;
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        match service.handle(token, seq, line) {
            Dispatch::Reply(bytes) => conn.wbuf.extend_from_slice(&bytes),
            Dispatch::Pending => conn.in_flight = Some(seq),
            Dispatch::ReplyClose(bytes) => {
                conn.wbuf.extend_from_slice(&bytes);
                conn.close_after_flush = true;
            }
            Dispatch::Handoff(f) => conn.handoff = Some(f),
        }
    }
    // Reclaim parsed bytes so long-lived connections don't grow forever.
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
    true
}

/// Pushes buffered output to the socket. False = drop connection.
fn flush(conn: &mut Conn) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.wpos >= conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > RBUF_SOFT_CAP {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Echo service: `ECHO x` inline, `SLOW x` via a worker thread,
    /// `BYE` closes.
    struct Echo {
        completions: Completions,
        closed: AtomicU64,
    }

    impl LineService for Echo {
        fn handle(&self, conn: ConnId, seq: u64, line: &str) -> Dispatch {
            if let Some(rest) = line.strip_prefix("ECHO ") {
                return Dispatch::Reply(format!("OK {rest}\n").into_bytes());
            }
            if let Some(rest) = line.strip_prefix("SLOW ") {
                let completions = self.completions.clone();
                let rest = rest.to_string();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    completions.complete(conn, seq, format!("OK slow {rest}\n").into_bytes());
                });
                return Dispatch::Pending;
            }
            if line == "BYE" {
                return Dispatch::ReplyClose(b"OK bye\n".to_vec());
            }
            Dispatch::Reply(b"ERR proto\n".to_vec())
        }

        fn on_close(&self, _conn: ConnId) {
            self.closed.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn start_echo() -> (std::net::SocketAddr, Arc<std::sync::atomic::AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let completions = Completions::new().unwrap();
        let service = Arc::new(Echo {
            completions: completions.clone(),
            closed: AtomicU64::new(0),
        });
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || {
            run_event_loop(listener, service, completions, move || {
                stop2.load(Ordering::SeqCst)
            })
        });
        (addr, stop)
    }

    fn stop_loop(addr: std::net::SocketAddr, stop: &std::sync::atomic::AtomicBool) {
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn inline_pending_and_close_round_trip_in_order() {
        let (addr, stop) = start_echo();
        let mut s = TcpStream::connect(addr).unwrap();
        // Pipelined burst: inline, worker, inline, close — replies must
        // come back in request order.
        s.write_all(b"ECHO a\nSLOW b\nECHO c\nBYE\n").unwrap();
        let mut all = String::new();
        s.read_to_string(&mut all).unwrap();
        assert_eq!(all, "OK a\nOK slow b\nOK c\nOK bye\n");
        stop_loop(addr, &stop);
    }

    #[test]
    fn many_idle_connections_and_partial_lines() {
        let (addr, stop) = start_echo();
        // A pile of idle connections costs the loop nothing; the active
        // one still gets served, even with a request split across
        // writes.
        let idle: Vec<TcpStream> = (0..50).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"ECHO he").unwrap();
        s.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        s.write_all(b"llo\n").unwrap();
        let mut buf = [0u8; 64];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"OK hello\n");
        drop(idle);
        stop_loop(addr, &stop);
    }
}
