//! Result-row rendering shared by the REPL and the server.
//!
//! Both front ends show the same thing for a node-set: one line per node,
//! `<name> string-value`, truncated to a configurable width, capped at a
//! configurable row limit. Keeping this in one place means `.limit` in
//! the shell and `LIMIT` in the wire protocol go through identical code.

use vamana_core::{Engine, NodeEntry, Result};

/// Rendering knobs.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Maximum rows rendered (`0` = unlimited).
    pub limit: usize,
    /// Maximum characters of string-value shown per row.
    pub value_width: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            limit: 20,
            value_width: 60,
        }
    }
}

/// A rendered node-set: up to `limit` formatted rows plus the total
/// cardinality (callers print "… N more" from the difference).
#[derive(Debug, Clone)]
pub struct Rendered {
    /// `<name> value` lines, one per shown row.
    pub lines: Vec<String>,
    /// Total result cardinality (≥ `lines.len()`).
    pub total: usize,
}

impl Rendered {
    /// Rows beyond the limit that were not rendered.
    pub fn truncated(&self) -> usize {
        self.total - self.lines.len()
    }
}

/// Renders `nodes` (name + truncated string-value per row) under `opts`.
pub fn render_rows(engine: &Engine, nodes: &[NodeEntry], opts: &RenderOptions) -> Result<Rendered> {
    let shown = if opts.limit == 0 {
        nodes.len()
    } else {
        nodes.len().min(opts.limit)
    };
    let names = engine.names_of(&nodes[..shown])?;
    let values = engine.string_values(&nodes[..shown])?;
    let mut lines = Vec::with_capacity(shown);
    for (name, value) in names.iter().zip(values.iter()) {
        let truncated: String = value.chars().take(opts.value_width).collect();
        let ellipsis = if value.chars().count() > opts.value_width {
            "…"
        } else {
            ""
        };
        lines.push(format!("<{name}> {truncated}{ellipsis}"));
    }
    Ok(Rendered {
        lines,
        total: nodes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_core::{Engine, MassStore};

    fn engine() -> Engine {
        let mut store = MassStore::open_memory();
        store
            .load_xml(
                "d",
                "<r><p><n>Ann</n></p><p><n>Bob</n></p><p><n>Cyd</n></p></r>",
            )
            .unwrap();
        Engine::new(store)
    }

    #[test]
    fn renders_name_and_value_up_to_limit() {
        let e = engine();
        let nodes = e.query("//n").unwrap();
        let r = render_rows(
            &e,
            &nodes,
            &RenderOptions {
                limit: 2,
                value_width: 60,
            },
        )
        .unwrap();
        assert_eq!(r.lines, vec!["<n> Ann", "<n> Bob"]);
        assert_eq!(r.total, 3);
        assert_eq!(r.truncated(), 1);
    }

    #[test]
    fn zero_limit_means_unlimited_and_width_truncates() {
        let e = engine();
        let nodes = e.query("//n").unwrap();
        let r = render_rows(
            &e,
            &nodes,
            &RenderOptions {
                limit: 0,
                value_width: 2,
            },
        )
        .unwrap();
        assert_eq!(r.lines.len(), 3);
        assert_eq!(r.lines[0], "<n> An…");
        assert_eq!(r.truncated(), 0);
    }
}
