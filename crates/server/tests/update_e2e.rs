//! End-to-end tests for the server write path: `INSERT`/`DELETE`/
//! `CHECKPOINT` over real sockets, per-document plan-cache
//! invalidation, WAL counters in `STATS`, and the durable round trip —
//! update, kill the server, reopen the file-backed store, query again.

use std::time::Duration;

use vamana_core::Engine;
use vamana_mass::{FsyncPolicy, MassStore};
use vamana_server::testkit::{stat_value, Client};
use vamana_server::{Server, ServerConfig, ServerHandle};

fn spawn_memory_server() -> ServerHandle {
    let mut store = MassStore::open_memory();
    store
        .load_xml(
            "auction",
            "<site><people><person id='p0'><name>Ada</name></person></people></site>",
        )
        .expect("load");
    Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn")
}

#[test]
fn insert_and_delete_round_trip_with_counters() {
    let handle = spawn_memory_server();
    let mut client = Client::connect(&handle);

    let reply =
        client.round_trip("INSERT auction //people <person id='p1'><name>Grace</name></person>");
    assert!(reply[0].starts_with("OK update matched=1"), "{reply:?}");
    assert!(reply[0].contains("deleted=0"), "{reply:?}");
    assert!(reply[0].contains("generation=1"), "{reply:?}");

    let rows = client.round_trip("QUERY //person");
    assert!(rows.last().unwrap().starts_with("OK 2 row(s)"), "{rows:?}");

    // Documents resolve by numeric id too.
    let reply = client.round_trip("DELETE 0 //person[name='Ada']");
    assert!(reply[0].starts_with("OK update matched=1"), "{reply:?}");
    assert!(!reply[0].contains("deleted=0"), "{reply:?}");

    let rows = client.round_trip("QUERY //person");
    assert!(rows.last().unwrap().starts_with("OK 1 row(s)"), "{rows:?}");
    assert!(
        rows.iter().any(|l| l.contains("Grace")),
        "survivor must be Grace: {rows:?}"
    );

    let stats = client.round_trip("STATS");
    assert_eq!(stat_value(&stats, "updates_total"), 2);
    assert_eq!(stat_value(&stats, "store_durable"), 0);

    // Protocol errors for malformed updates.
    let err = client.round_trip("INSERT auction //people");
    assert!(err[0].starts_with("ERR proto"), "{err:?}");
    let err = client.round_trip("DELETE nosuchdoc //person");
    assert!(err[0].starts_with("ERR query no such document"), "{err:?}");
    handle.stop();
}

#[test]
fn update_invalidates_only_the_target_documents_cached_plans() {
    let handle = spawn_memory_server();
    let mut client = Client::connect(&handle);
    client.round_trip("LOADXML second <r><person><name>Lin</name></person></r>");

    // Warm the cache (one plan per document), then verify a repeat hits.
    client.round_trip("QUERY //person");
    let reply = client.round_trip("QUERY //person");
    assert!(reply.last().unwrap().contains("plan=cached"), "{reply:?}");
    let stats = client.round_trip("STATS");
    let hits_before = stat_value(&stats, "plan_cache_hits");
    let misses_before = stat_value(&stats, "plan_cache_misses");

    // Update document 1: its plan is stale, document 0's stays warm.
    let reply = client.round_trip("INSERT second /r <person><name>May</name></person>");
    assert!(reply[0].starts_with("OK update"), "{reply:?}");
    let reply = client.round_trip("QUERY //person");
    assert!(
        reply.last().unwrap().contains("plan=compiled"),
        "stale plan for the updated document must recompile: {reply:?}"
    );
    assert!(
        reply.last().unwrap().starts_with("OK 3 row(s)"),
        "{reply:?}"
    );

    let stats = client.round_trip("STATS");
    assert_eq!(
        stat_value(&stats, "plan_cache_hits"),
        hits_before + 1,
        "document 0's plan must still validate: {stats:?}"
    );
    assert_eq!(
        stat_value(&stats, "plan_cache_misses"),
        misses_before + 1,
        "exactly the updated document misses: {stats:?}"
    );
    handle.stop();
}

#[test]
fn durable_update_survives_server_kill_and_reopen() {
    let dir = std::env::temp_dir().join(format!("vamana-srv-upd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("service.mass");
    let _ = std::fs::remove_file(&path);

    {
        let mut store = MassStore::create_durable(&path, 512, FsyncPolicy::Always).unwrap();
        store
            .load_xml(
                "auction",
                "<site><people><person><name>Ada</name></person></people></site>",
            )
            .unwrap();
        let handle = Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
            .expect("bind")
            .spawn()
            .expect("spawn");
        let mut client = Client::connect(&handle);
        let reply =
            client.round_trip("INSERT auction //people <person><name>Grace</name></person>");
        assert!(reply[0].starts_with("OK update"), "{reply:?}");
        let reply = client.round_trip("QUERY //person");
        assert!(
            reply.last().unwrap().starts_with("OK 2 row(s)"),
            "{reply:?}"
        );
        let stats = client.round_trip("STATS");
        assert_eq!(stat_value(&stats, "store_durable"), 1);
        assert!(stat_value(&stats, "wal_records") > 0, "{stats:?}");
        assert!(stat_value(&stats, "wal_last_lsn") > 0, "{stats:?}");
        // Kill the server without checkpointing: pages may be stale on
        // disk, the WAL is not.
        handle.stop();
    }

    {
        // Recovery replays the committed update; the engine serves it.
        let store = MassStore::open_durable(&path, 512, FsyncPolicy::Always).unwrap();
        assert!(
            store.wal_stats().replayed_records > 0,
            "must replay the insert"
        );
        let handle = Server::bind("127.0.0.1:0", Engine::new(store), ServerConfig::default())
            .expect("bind")
            .spawn()
            .expect("spawn");
        let mut client = Client::connect(&handle);
        let reply = client.round_trip("QUERY //person");
        assert!(
            reply.last().unwrap().starts_with("OK 2 row(s)"),
            "{reply:?}"
        );
        assert!(reply.iter().any(|l| l.contains("Grace")), "{reply:?}");
        let stats = client.round_trip("STATS");
        assert!(stat_value(&stats, "wal_replayed_lsn") > 0, "{stats:?}");

        // CHECKPOINT folds the log; a reopen then replays nothing.
        let reply = client.round_trip("CHECKPOINT");
        assert!(reply[0].starts_with("OK checkpoint records=0"), "{reply:?}");
        let stats = client.round_trip("STATS");
        assert_eq!(stat_value(&stats, "wal_depth"), 0);
        assert_eq!(stat_value(&stats, "checkpoints_total"), 1);
        handle.stop();
    }

    {
        let store = MassStore::open_durable(&path, 512, FsyncPolicy::Always).unwrap();
        assert_eq!(
            store.wal_stats().replayed_records,
            0,
            "post-checkpoint reopen must replay nothing"
        );
        let engine = Engine::new(store);
        assert_eq!(engine.query("//person").unwrap().len(), 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queries_run_while_a_writer_holds_the_lane() {
    let handle = spawn_memory_server();
    // One client streams updates while others query; nobody panics,
    // every reply is well-formed, and the final state reflects all
    // updates exactly once.
    let mut seed = Client::connect(&handle);
    for i in 0..4 {
        let reply = seed.round_trip(&format!(
            "INSERT auction //people <person><name>w{i}</name></person>"
        ));
        assert!(reply[0].starts_with("OK update"), "{reply:?}");
    }
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let mut client = Client::connect(&handle);
                for _ in 0..20 {
                    let reply = client.round_trip("QUERY //person");
                    let ok = reply.last().unwrap();
                    assert!(ok.starts_with("OK"), "{reply:?}");
                }
            });
        }
        scope.spawn(|| {
            let mut client = Client::connect(&handle);
            for i in 4..12 {
                let reply = client.round_trip(&format!(
                    "INSERT auction //people <person><name>w{i}</name></person>"
                ));
                assert!(reply[0].starts_with("OK update matched=1"), "{reply:?}");
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });
    let reply = seed.round_trip("QUERY //person");
    assert!(
        reply.last().unwrap().starts_with("OK 13 row(s)"),
        "{reply:?}"
    );
    let stats = seed.round_trip("STATS");
    assert_eq!(stat_value(&stats, "updates_total"), 12);
    assert_eq!(stat_value(&stats, "errors_total"), 0);
    handle.stop();
}
