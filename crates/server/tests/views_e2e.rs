//! End-to-end semantic-cache tests: a real TCP server with views
//! enabled, repeated queries admitted into the view cache, byte-equal
//! responses cached vs uncached, `STATS` view counters, the `CACHE`
//! verb, and invalidation through the write path.

use vamana_core::{Engine, EngineOptions};
use vamana_mass::MassStore;
use vamana_server::testkit::{stat_value, view_count, Client};
use vamana_server::{Server, ServerConfig, ServerHandle};
use vamana_xmark::{generate_string, XmarkConfig};

fn views_engine() -> Engine {
    let xml = generate_string(&XmarkConfig::with_scale(0.003));
    let mut store = MassStore::open_memory();
    store.load_xml("auction", &xml).expect("load xmark");
    let mut engine = Engine::new(store);
    *engine.options_mut() = EngineOptions {
        views: true,
        view_admit_after: 2,
        ..EngineOptions::default()
    };
    engine
}

fn spawn_views_server() -> ServerHandle {
    Server::bind("127.0.0.1:0", views_engine(), ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn rows(response: &[String]) -> Vec<&String> {
    response.iter().filter(|l| l.starts_with("ROW ")).collect()
}

#[test]
fn repeated_queries_are_answered_from_a_view() {
    let handle = spawn_views_server();
    let mut client = Client::connect(&handle);
    client.round_trip("LIMIT 0");

    let cold = client.round_trip("QUERY //person/name");
    let warm = client.round_trip("QUERY //person/name"); // admission point
    let stats = client.round_trip("STATS");
    assert!(stat_value(&stats, "view_views") >= 1, "{stats:?}");
    assert!(stat_value(&stats, "view_bytes") > 0, "{stats:?}");

    let hot = client.round_trip("QUERY //person/name");
    let stats = client.round_trip("STATS");
    assert!(stat_value(&stats, "view_hits") >= 1, "{stats:?}");

    // Cached answers must be byte-identical to the uncached ones.
    assert_eq!(rows(&cold), rows(&warm));
    assert_eq!(rows(&cold), rows(&hot));

    // The CACHE verb lists the materialized view.
    let listing = client.round_trip("CACHE");
    assert!(view_count(&listing) >= 1, "{listing:?}");
    assert!(
        listing.iter().any(|l| l.contains("//person/name")),
        "{listing:?}"
    );

    handle.stop();
}

#[test]
fn writes_invalidate_views_and_later_queries_see_new_data() {
    let handle = spawn_views_server();
    let mut client = Client::connect(&handle);
    client.round_trip("LIMIT 0");

    let before = client.round_trip("QUERY //person/name");
    client.round_trip("QUERY //person/name");
    let stats = client.round_trip("STATS");
    assert!(stat_value(&stats, "view_views") >= 1, "{stats:?}");

    let update =
        client.round_trip("INSERT auction /site/people <person id='pX'><name>Zed</name></person>");
    assert!(update[0].starts_with("OK update"), "{update:?}");

    let stats = client.round_trip("STATS");
    assert_eq!(stat_value(&stats, "view_views"), 0, "{stats:?}");
    assert!(stat_value(&stats, "view_evictions") >= 1, "{stats:?}");

    let after = client.round_trip("QUERY //person/name");
    assert_eq!(rows(&after).len(), rows(&before).len() + 1, "{after:?}");
    assert!(
        after.iter().any(|l| l.contains("Zed")),
        "inserted person missing: {after:?}"
    );

    handle.stop();
}

#[test]
fn cache_clear_drops_views() {
    let handle = spawn_views_server();
    let mut client = Client::connect(&handle);
    client.round_trip("QUERY //province");
    client.round_trip("QUERY //province");
    let stats = client.round_trip("STATS");
    assert!(stat_value(&stats, "view_views") >= 1, "{stats:?}");

    assert_eq!(client.round_trip("CACHE CLEAR"), vec!["OK cache cleared"]);
    let listing = client.round_trip("CACHE LIST");
    assert_eq!(view_count(&listing), 0, "{listing:?}");
    let stats = client.round_trip("STATS");
    assert_eq!(stat_value(&stats, "view_views"), 0, "{stats:?}");

    let err = client.round_trip("CACHE FROB");
    assert!(err[0].starts_with("ERR proto"), "{err:?}");

    handle.stop();
}

#[test]
fn analyze_marks_view_answered_queries() {
    let handle = spawn_views_server();
    let mut client = Client::connect(&handle);
    client.round_trip("QUERY //person/name");
    client.round_trip("QUERY //person/name");

    let report = client.round_trip("ANALYZE //person/name");
    assert!(
        report
            .iter()
            .any(|l| l.contains("answered from view: //person/name")),
        "{report:?}"
    );
    assert!(report.iter().any(|l| l.contains("ViewScan")), "{report:?}");

    let json = client.round_trip("ANALYZE JSON //person/name");
    assert!(
        json[0].contains("\"view\":\"//person/name\""),
        "{:?}",
        &json[0][..json[0].len().min(300)]
    );

    handle.stop();
}
