//! End-to-end tests: a real TCP server, real sockets, concurrent
//! clients, and the acceptance criteria from the serving-layer issue —
//! ≥ 8 concurrent connections with results identical to single-threaded
//! execution, a plan cache that hits on repetition and invalidates on
//! load, and deadline enforcement.

use std::sync::Arc;
use std::time::Duration;

use vamana_core::Engine;
use vamana_mass::MassStore;
use vamana_server::testkit::{stat_value, Client};
use vamana_server::{Server, ServerConfig, ServerHandle};
use vamana_xmark::{generate_string, XmarkConfig};

fn xmark_engine() -> Engine {
    let xml = generate_string(&XmarkConfig::with_scale(0.003));
    let mut store = MassStore::open_memory();
    store.load_xml("auction", &xml).expect("load xmark");
    Engine::new(store)
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", xmark_engine(), config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

#[test]
fn ping_limit_and_unknown_verbs() {
    let handle = spawn_server(ServerConfig::default());
    let mut client = Client::connect(&handle);
    assert_eq!(client.round_trip("PING"), vec!["OK pong"]);
    assert_eq!(client.round_trip("LIMIT 3"), vec!["OK limit 3"]);
    let err = client.round_trip("LIMIT many");
    assert!(err[0].starts_with("ERR proto"), "{err:?}");
    let err = client.round_trip("FROBNICATE");
    assert!(err[0].starts_with("ERR proto unknown"), "{err:?}");
    let err = client.round_trip("QUERY");
    assert!(err[0].starts_with("ERR proto"), "{err:?}");
    assert_eq!(client.round_trip("QUIT"), vec!["OK bye"]);
    handle.stop();
}

#[test]
fn query_rows_match_direct_engine_and_limit_applies() {
    let handle = spawn_server(ServerConfig::default());
    // Reference: the same document queried directly, rendered by the
    // same shared rendering path the server uses.
    let engine = xmark_engine();
    let nodes = engine.query("//province").expect("direct query");
    let rendered = vamana_server::render_rows(
        &engine,
        &nodes,
        &vamana_server::RenderOptions {
            limit: 0,
            value_width: 200,
        },
    )
    .expect("render");

    let mut client = Client::connect(&handle);
    client.round_trip("LIMIT 0");
    let response = client.round_trip("QUERY //province");
    let (ok, rows) = response.split_last().expect("nonempty");
    assert!(
        ok.starts_with(&format!("OK {} row(s)", nodes.len())),
        "{ok}"
    );
    let expected: Vec<String> = rendered.lines.iter().map(|l| format!("ROW {l}")).collect();
    assert_eq!(rows, &expected[..]);

    // LIMIT caps rendered rows but reports full cardinality.
    client.round_trip("LIMIT 2");
    let response = client.round_trip("QUERY //province");
    assert_eq!(response.len() - 1, nodes.len().min(2));
    assert!(response
        .last()
        .unwrap()
        .starts_with(&format!("OK {} row(s)", nodes.len())));
    handle.stop();
}

#[test]
fn eval_returns_scalars() {
    let handle = spawn_server(ServerConfig::default());
    let engine = xmark_engine();
    let people = engine.query("//person").expect("count people").len();
    let mut client = Client::connect(&handle);
    let response = client.round_trip("EVAL count(//person)");
    assert_eq!(response[0], format!("VAL {people}"));
    assert!(response[1].starts_with("OK scalar"), "{response:?}");
    handle.stop();
}

#[test]
fn eight_concurrent_clients_get_single_threaded_results() {
    let handle = spawn_server(ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    });
    const QUERIES: [&str; 4] = [
        "QUERY //person/name",
        "QUERY //open_auction",
        "QUERY //province",
        "QUERY /site/regions",
    ];
    // Reference answers fetched over one connection before any
    // concurrency: by acceptance criterion, concurrent execution must
    // produce exactly these (document-order, deduplicated) responses.
    let mut reference = Client::connect(&handle);
    reference.round_trip("LIMIT 0");
    let expected: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| {
            let mut lines = reference.round_trip(q);
            // The OK line carries plan/cache/latency details that vary
            // per run; compare rows plus the stable OK prefix.
            let ok = lines.pop().unwrap();
            lines.push(ok.split(" plan=").next().unwrap().to_string());
            lines
        })
        .collect();

    let handle = Arc::new(handle);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let handle = Arc::clone(&handle);
            let expected = expected.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&handle);
                client.round_trip("LIMIT 0");
                for round in 0..4 {
                    let pick = (t + round) % QUERIES.len();
                    let mut got = client.round_trip(QUERIES[pick]);
                    let ok = got.pop().unwrap();
                    assert!(!ok.starts_with("ERR"), "{ok}");
                    got.push(ok.split(" plan=").next().unwrap().to_string());
                    assert_eq!(got, expected[pick], "thread {t} round {round}");
                }
            });
        }
    });

    let mut client = Client::connect(&handle);
    let stats = client.round_trip("STATS");
    assert!(
        stat_value(&stats, "plan_cache_hits") > 0,
        "repeated queries must hit the plan cache: {stats:?}"
    );
    assert_eq!(stat_value(&stats, "errors_total"), 0);
    assert!(stat_value(&stats, "queries_total") >= 8 * 4);
    assert!(stat_value(&stats, "latency_p99_us") >= stat_value(&stats, "latency_p50_us"));
    Arc::into_inner(handle).unwrap().stop();
}

#[test]
fn load_invalidates_plan_cache_and_new_document_is_queryable() {
    let handle = spawn_server(ServerConfig::default());
    let mut client = Client::connect(&handle);

    // First run compiles, second hits the cache.
    let first = client.round_trip("QUERY //province");
    assert!(first.last().unwrap().contains("plan=compiled"), "{first:?}");
    let second = client.round_trip("QUERY //province");
    assert!(second.last().unwrap().contains("plan=cached"), "{second:?}");

    let stats = client.round_trip("STATS");
    let generation_before = stat_value(&stats, "store_generation");
    assert!(stat_value(&stats, "plan_cache_size") > 0);

    // Loading a document bumps the store generation but leaves the
    // existing document's cached plans warm: invalidation is per
    // document, not store-wide.
    let loaded = client.round_trip("LOADXML tiny <r><province>Eden</province></r>");
    assert!(loaded[0].starts_with("OK loaded document 1"), "{loaded:?}");
    let stats = client.round_trip("STATS");
    assert!(stat_value(&stats, "store_generation") > generation_before);
    assert!(
        stat_value(&stats, "plan_cache_size") > 0,
        "a load must not clear other documents' plans: {stats:?}"
    );

    // The next query compiles a plan only for the new document and sees
    // its rows (any per-document miss reports `plan=compiled`).
    let third = client.round_trip("QUERY //province");
    assert!(third.last().unwrap().contains("plan=compiled"), "{third:?}");
    assert!(
        third.iter().any(|l| l.contains("Eden")),
        "new document's provinces must appear: {third:?}"
    );
    handle.stop();
}

#[test]
fn zero_timeout_reports_deadline_exceeded() {
    let handle = spawn_server(ServerConfig {
        query_timeout: Duration::ZERO,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&handle);
    let response = client.round_trip("QUERY //person");
    assert!(response[0].starts_with("ERR timeout"), "{response:?}");
    let stats = client.round_trip("STATS");
    assert!(stat_value(&stats, "timeouts") >= 1);
    handle.stop();
}

#[test]
fn query_errors_are_reported_not_fatal() {
    let handle = spawn_server(ServerConfig::default());
    let mut client = Client::connect(&handle);
    let response = client.round_trip("QUERY //person[");
    assert!(response[0].starts_with("ERR query"), "{response:?}");
    // The connection survives an error.
    assert_eq!(client.round_trip("PING"), vec!["OK pong"]);
    handle.stop();
}

#[test]
fn scan_worker_config_and_parallel_stats_are_reported() {
    let handle = spawn_server(ServerConfig {
        scan_workers: 3,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&handle);
    let stats = client.round_trip("STATS");
    assert_eq!(stat_value(&stats, "scan_workers"), 3);
    // Counters are present from the first STATS on (zero until a query
    // clears the parallel threshold and fans out).
    for key in [
        "pool_par_morsels",
        "pool_par_batches",
        "pool_par_merge_stalls",
    ] {
        stat_value(&stats, key);
    }
    handle.stop();
}

#[test]
fn explain_and_analyze_report_plans_over_the_wire() {
    let handle = spawn_server(ServerConfig::default());
    let mut client = Client::connect(&handle);

    let response = client.round_trip("EXPLAIN //person/name");
    let (ok, lines) = response.split_last().expect("nonempty");
    assert!(ok.starts_with("OK") && ok.contains("line(s)"), "{ok}");
    assert!(lines.iter().all(|l| l.starts_with("PLAN ")), "{lines:?}");
    let text = lines.join("\n");
    assert!(text.contains("default plan"), "{text}");
    assert!(text.contains("optimized plan"), "{text}");
    assert!(text.contains("pass: clean-up"), "{text}");

    let response = client.round_trip("ANALYZE //person/name");
    let (ok, lines) = response.split_last().expect("nonempty");
    assert!(ok.starts_with("OK"), "{ok}");
    let text = lines.join("\n");
    assert!(text.contains("est="), "{text}");
    assert!(text.contains("act="), "{text}");
    assert!(text.contains("misestimations"), "{text}");

    // JSON form: one PLAN line carrying a JSON object.
    let response = client.round_trip("ANALYZE JSON //person/name");
    assert_eq!(response.len(), 2, "{response:?}");
    assert!(response[0].starts_with("PLAN {"), "{response:?}");
    assert!(response[0].contains("\"operators\""), "{response:?}");
    let response = client.round_trip("EXPLAIN JSON //person/name");
    assert!(response[0].starts_with("PLAN {"), "{response:?}");
    assert!(response[0].contains("\"optimized_plan\""), "{response:?}");

    // Errors mirror QUERY's behavior and keep the connection alive.
    let err = client.round_trip("EXPLAIN");
    assert!(err[0].starts_with("ERR proto"), "{err:?}");
    let err = client.round_trip("ANALYZE //person[");
    assert!(err[0].starts_with("ERR query"), "{err:?}");
    assert_eq!(client.round_trip("PING"), vec!["OK pong"]);
    handle.stop();
}

#[test]
fn fused_queries_report_counters_and_plans_over_the_wire() {
    let mut engine = xmark_engine();
    engine.options_mut().fuse = true;
    let handle = Server::bind("127.0.0.1:0", engine, ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(&handle);
    client.round_trip("LIMIT 0");

    // A scan-bound chain the cost model accepts runs fused and bumps
    // the counters; rows must match an unfused engine exactly.
    let fused_rows: Vec<String> = client
        .round_trip("QUERY //person//*")
        .into_iter()
        .filter(|l| l.starts_with("ROW "))
        .collect();
    let plain = xmark_engine();
    assert_eq!(
        fused_rows.len(),
        plain.query("//person//*").expect("direct query").len(),
        "fused row count diverges from the unfused engine"
    );
    let stats = client.round_trip("STATS");
    let chains = stat_value(&stats, "fused_chains");
    let steps = stat_value(&stats, "fused_steps");
    assert!(chains >= 1, "{stats:?}");
    assert!(steps >= 2, "{stats:?}");

    // ANALYZE renders the fused operator and the fusion summary line.
    let response = client.round_trip("ANALYZE //person//*");
    let text = response.join("\n");
    assert!(text.contains("FusedScan"), "{text}");
    assert!(text.contains("fused: 1 chain"), "{text}");

    // A candidate the model declines executes as a plain step pipeline
    // and leaves the execution counters untouched.
    client.round_trip("QUERY //person/address");
    let stats = client.round_trip("STATS");
    assert_eq!(stat_value(&stats, "fused_chains"), chains, "{stats:?}");
    assert_eq!(stat_value(&stats, "fused_steps"), steps, "{stats:?}");
    handle.stop();
}

#[test]
fn doc_scoped_verbs_and_docs_listing() {
    let handle = spawn_server(ServerConfig::default());
    let mut client = Client::connect(&handle);
    client.round_trip("LIMIT 0");
    client.round_trip("LOADXML extra <r><province>Eden</province></r>");

    // DOCS lists both documents in load order with generations.
    let docs = client.round_trip("DOCS");
    assert!(docs[0].starts_with("DOC 0 auction generation="), "{docs:?}");
    assert!(docs[1].starts_with("DOC 1 extra generation="), "{docs:?}");
    assert!(
        docs.last().unwrap().starts_with("OK 2 document(s)"),
        "{docs:?}"
    );

    // A DOC-scoped QUERY sees only its document; the unscoped one sees
    // both. Name and ordinal resolve to the same document.
    let all = client.round_trip("QUERY //province");
    let scoped = client.round_trip("QUERY DOC extra //province");
    assert!(scoped.iter().any(|l| l.contains("Eden")), "{scoped:?}");
    assert!(scoped.len() < all.len(), "scoped must be a strict subset");
    let stable = |lines: Vec<String>| -> Vec<String> {
        lines
            .into_iter()
            .map(|l| l.split(" plan=").next().unwrap().to_string())
            .collect()
    };
    assert_eq!(
        stable(client.round_trip("QUERY DOC 1 //province")),
        stable(scoped.clone()),
        "ordinal and name scoping must agree"
    );

    // EVAL/EXPLAIN/ANALYZE accept the same scope.
    let count = client.round_trip("EVAL DOC extra count(//province)");
    assert_eq!(count[0], "VAL 1", "{count:?}");
    let plan = client.round_trip("EXPLAIN JSON DOC extra //province");
    assert!(plan[0].starts_with("PLAN {"), "{plan:?}");
    let analyzed = client.round_trip("ANALYZE DOC extra //province");
    assert!(
        analyzed.iter().any(|l| l.starts_with("PLAN ")),
        "{analyzed:?}"
    );

    // Unknown documents are a query error, not a protocol error.
    for q in [
        "QUERY DOC nosuch //province",
        "EVAL DOC 9 count(//province)",
    ] {
        let err = client.round_trip(q);
        assert!(err[0].starts_with("ERR query no such document"), "{err:?}");
    }
    handle.stop();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    use std::io::{BufRead, BufReader, Write};
    let handle = spawn_server(ServerConfig::default());
    // Raw socket: write a burst of requests in one syscall, then read
    // every response. The event core parses them pipelined; replies
    // must come back complete and in request order.
    let stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(b"PING\nEVAL count(//province)\nPING\nLIMIT 3\nEVAL count(//province)\nQUIT\n")
        .expect("write burst");
    writer.flush().expect("flush");
    let mut lines = Vec::new();
    for line in BufReader::new(stream).lines() {
        lines.push(line.expect("read"));
    }
    let expected_count = lines[1].clone();
    assert_eq!(lines[0], "OK pong");
    assert!(lines[1].starts_with("VAL "), "{lines:?}");
    assert!(lines[2].starts_with("OK scalar"), "{lines:?}");
    assert_eq!(lines[3], "OK pong");
    assert_eq!(lines[4], "OK limit 3");
    assert_eq!(lines[5], expected_count, "same query, same answer");
    assert!(lines[6].starts_with("OK scalar"), "{lines:?}");
    assert_eq!(lines[7], "OK bye");
    assert_eq!(lines.len(), 8, "{lines:?}");
}

#[test]
fn threaded_core_still_serves_the_full_protocol() {
    let handle = spawn_server(ServerConfig {
        core: vamana_server::CoreMode::Threaded,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&handle);
    assert_eq!(client.round_trip("PING"), vec!["OK pong"]);
    let rows = client.round_trip("QUERY //province");
    assert!(rows.last().unwrap().starts_with("OK "), "{rows:?}");
    let docs = client.round_trip("DOCS");
    assert!(
        docs.last().unwrap().starts_with("OK 1 document(s)"),
        "{docs:?}"
    );
    let stats = client.round_trip("STATS");
    assert!(stat_value(&stats, "queries_total") >= 1, "{stats:?}");
    assert_eq!(client.round_trip("QUIT"), vec!["OK bye"]);
    handle.stop();
}

#[test]
fn many_idle_connections_do_not_occupy_threads() {
    let handle = spawn_server(ServerConfig::default());
    // Park a crowd of idle connections on the event core...
    let idle: Vec<_> = (0..128)
        .map(|_| std::net::TcpStream::connect(handle.addr()).expect("connect"))
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    // ...and the process thread count stays far below one-per-socket
    // (loop + workers + test harness, not 128 connection threads).
    let threads = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse::<usize>().ok())
        })
        .expect("read thread count");
    assert!(
        threads < 64,
        "{threads} threads for 128 idle connections — thread-per-connection?"
    );
    // The connections are all live: each answers a request.
    for stream in &idle {
        use std::io::{BufRead, BufReader, Write};
        let mut w = stream.try_clone().expect("clone");
        w.write_all(b"PING\n").expect("write");
        let mut line = String::new();
        BufReader::new(stream.try_clone().expect("clone"))
            .read_line(&mut line)
            .expect("read");
        assert_eq!(line.trim_end(), "OK pong");
    }
    handle.stop();
}
