//! The `vamana` interactive shell.
//!
//! ```sh
//! cargo run --release -p vamana-cli --bin vamana-shell
//! vamana> .generate 2
//! vamana> //province[text()='Vermont']/ancestor::person/name
//! ```
//!
//! Files given on the command line are loaded before the prompt appears;
//! with `-c <command>` the shell runs one command and exits.

use std::io::{BufRead, Write};
use vamana_cli::Session;

fn main() {
    let mut session = Session::new();
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `-c` one-shot mode.
    if let Some(pos) = args.iter().position(|a| a == "-c") {
        for file in &args[..pos] {
            run_line(&mut session, &format!(".load {file}"));
        }
        let cmd = args[pos + 1..].join(" ");
        run_line(&mut session, &cmd);
        return;
    }

    for file in &args {
        run_line(&mut session, &format!(".load {file}"));
    }

    println!("VAMANA — cost-driven XPath engine (type .help for commands)");
    let stdin = std::io::stdin();
    loop {
        print!("vamana> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match session.execute(&line) {
                Some(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
                None => break,
            },
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}

fn run_line(session: &mut Session, line: &str) {
    if let Some(out) = session.execute(line) {
        if !out.is_empty() {
            println!("{out}");
        }
    }
}
