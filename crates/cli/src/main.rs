//! The `vamana` interactive shell and query server.
//!
//! ```sh
//! cargo run --release -p vamana-cli --bin vamana-shell
//! vamana> .generate 2
//! vamana> //province[text()='Vermont']/ancestor::person/name
//! ```
//!
//! Files given on the command line are loaded before the prompt appears;
//! with `-c <command>` the shell runs one command and exits. `serve`
//! runs the TCP query service in the foreground instead of a prompt:
//!
//! ```sh
//! vamana-shell serve 4050 auction.xml      # serve a loaded file
//! vamana-shell serve 4050 --generate 2     # serve generated XMark data
//! ```

use std::io::{BufRead, Write};
use vamana_cli::Session;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("serve") {
        serve(&args[1..]);
        return;
    }

    let mut session = Session::new();

    // `-c` one-shot mode.
    if let Some(pos) = args.iter().position(|a| a == "-c") {
        for file in &args[..pos] {
            run_line(&mut session, &format!(".load {file}"));
        }
        let cmd = args[pos + 1..].join(" ");
        run_line(&mut session, &cmd);
        return;
    }

    for file in &args {
        run_line(&mut session, &format!(".load {file}"));
    }

    println!("VAMANA — cost-driven XPath engine (type .help for commands)");
    let stdin = std::io::stdin();
    loop {
        print!("vamana> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match session.execute(&line) {
                Some(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
                None => break,
            },
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}

/// `vamana-shell serve <port> [file... | --generate <mb>]`: loads the
/// given data, then blocks serving the query protocol on `port`.
fn serve(args: &[String]) {
    let Some(port) = args.first().and_then(|p| p.parse::<u16>().ok()) else {
        eprintln!("usage: vamana-shell serve <port> [file... | --generate <mb>]");
        std::process::exit(2);
    };
    let mut session = Session::new();
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        let command = if arg == "--generate" {
            let mb = rest.next().map(String::as_str).unwrap_or("1");
            format!(".generate {mb}")
        } else {
            format!(".load {arg}")
        };
        match session.execute(&command) {
            Some(out) if out.starts_with("error") => {
                eprintln!("{out}");
                std::process::exit(1);
            }
            Some(out) => println!("{out}"),
            None => return,
        }
    }
    match session.execute(&format!(".serve {port}")) {
        Some(out) if out.starts_with("error") => {
            eprintln!("{out}");
            std::process::exit(1);
        }
        Some(out) => println!("{out}"),
        None => return,
    }
    // The accept loop runs on the .serve background thread; keep the
    // process alive until killed.
    loop {
        std::thread::park();
    }
}

fn run_line(session: &mut Session, line: &str) {
    if let Some(out) = session.execute(line) {
        if !out.is_empty() {
            println!("{out}");
        }
    }
}
