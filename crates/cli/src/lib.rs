//! Command interpreter behind the `vamana` interactive shell.
//!
//! The REPL logic lives in the library (pure: command string in,
//! rendered output out) so it is unit-testable; `main.rs` only wires
//! stdin/stdout.
//!
//! ```text
//! vamana> .load auction.xml            -- load an XML file into MASS
//! vamana> .generate 5                  -- generate ~5 MB of XMark data
//! vamana> //person[name='Yung Flach']  -- any XPath runs directly
//! vamana> .explain //person/address    -- default vs optimized plan
//! vamana> .count //person              -- index-only count
//! vamana> .stats                       -- storage statistics
//! vamana> .save store.mass | .open store.mass
//! ```

use std::fmt::Write as _;
use vamana_core::{DocId, Engine, MassStore, Value};

/// Maximum result rows printed per query.
const MAX_ROWS: usize = 20;

/// The interactive session state.
pub struct Session {
    engine: Engine,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session over an empty in-memory store.
    pub fn new() -> Self {
        Session {
            engine: Engine::new(MassStore::open_memory()),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Executes one line of input and returns the text to print.
    /// Returns `None` when the session should exit.
    pub fn execute(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return Some(String::new());
        }
        if line == ".quit" || line == ".exit" {
            return None;
        }
        Some(match self.dispatch(line) {
            Ok(out) => out,
            Err(e) => format!("error: {e}"),
        })
    }

    fn dispatch(&mut self, line: &str) -> Result<String, Box<dyn std::error::Error>> {
        if let Some(rest) = line.strip_prefix('.') {
            let (cmd, arg) = match rest.split_once(char::is_whitespace) {
                Some((c, a)) => (c, a.trim()),
                None => (rest, ""),
            };
            return match cmd {
                "help" => Ok(HELP.to_string()),
                "load" => self.cmd_load(arg),
                "generate" => self.cmd_generate(arg),
                "explain" => self.cmd_explain(arg),
                "count" => self.cmd_count(arg),
                "stats" => Ok(self.cmd_stats()),
                "docs" => Ok(self.cmd_docs()),
                "optimizer" => self.cmd_optimizer(arg),
                "xquery" => self.cmd_xquery(arg),
                "save" => self.cmd_save(arg),
                "open" => self.cmd_open(arg),
                other => Err(format!("unknown command .{other}; try .help").into()),
            };
        }
        self.cmd_query(line)
    }

    fn require_docs(&self) -> Result<(), Box<dyn std::error::Error>> {
        if self.engine.store().documents().is_empty() {
            return Err("no documents loaded — use .load <file> or .generate <mb>".into());
        }
        Ok(())
    }

    fn cmd_load(&mut self, path: &str) -> Result<String, Box<dyn std::error::Error>> {
        if path.is_empty() {
            return Err(".load needs a file path".into());
        }
        let xml = std::fs::read_to_string(path)?;
        let t = std::time::Instant::now();
        let id = self.engine.load_xml(path, &xml)?;
        let stats = self.engine.store().stats();
        Ok(format!(
            "loaded {path} as document {} in {:.2?} ({} tuples on {} pages)",
            id.0,
            t.elapsed(),
            stats.tuples,
            stats.pages
        ))
    }

    fn cmd_generate(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        let mb: f64 = if arg.is_empty() { 1.0 } else { arg.parse()? };
        let t = std::time::Instant::now();
        let xml = vamana_xmark::generate_string(&vamana_xmark::scale::config_for_megabytes(mb));
        let id = self.engine.load_xml("xmark-generated", &xml)?;
        Ok(format!(
            "generated {:.1} MB of XMark data as document {} in {:.2?}",
            xml.len() as f64 / 1_048_576.0,
            id.0,
            t.elapsed()
        ))
    }

    fn cmd_query(&mut self, xpath: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        let t = std::time::Instant::now();
        let value = self.engine.evaluate(DocId(0), xpath)?;
        let elapsed = t.elapsed();
        let mut out = String::new();
        match value {
            Value::Nodes(nodes) => {
                let names = self.engine.names_of(&nodes)?;
                let values = self
                    .engine
                    .string_values(&nodes[..nodes.len().min(MAX_ROWS)])?;
                for (name, value) in names.iter().zip(values.iter()) {
                    let shown: String = value.chars().take(60).collect();
                    let ellipsis = if value.chars().count() > 60 {
                        "…"
                    } else {
                        ""
                    };
                    let _ = writeln!(out, "  <{name}> {shown}{ellipsis}");
                }
                if nodes.len() > MAX_ROWS {
                    let _ = writeln!(out, "  … {} more", nodes.len() - MAX_ROWS);
                }
                let _ = write!(out, "{} node(s) in {elapsed:.2?}", nodes.len());
            }
            Value::Num(n) => {
                let _ = write!(out, "{n} ({elapsed:.2?})");
            }
            Value::Str(s) => {
                let _ = write!(out, "\"{s}\" ({elapsed:.2?})");
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b} ({elapsed:.2?})");
            }
        }
        Ok(out)
    }

    fn cmd_explain(&mut self, xpath: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        if xpath.is_empty() {
            return Err(".explain needs an XPath expression".into());
        }
        let ex = self.engine.explain(DocId(0), xpath)?;
        let mut out = String::new();
        let _ = writeln!(out, "default plan (Σ tuple volume {}):", ex.default_cost);
        out.push_str(&ex.default_plan);
        let _ = writeln!(
            out,
            "optimized plan (Σ tuple volume {}; rules {:?}; {} iteration(s)):",
            ex.optimized_cost, ex.applied, ex.iterations
        );
        out.push_str(&ex.optimized_plan);
        Ok(out)
    }

    fn cmd_count(&mut self, xpath: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        if xpath.is_empty() {
            return Err(".count needs an XPath expression".into());
        }
        let t = std::time::Instant::now();
        let v = self.engine.evaluate(DocId(0), &format!("count({xpath})"))?;
        match v {
            Value::Num(n) => Ok(format!("{n} ({:.2?})", t.elapsed())),
            other => Err(format!("unexpected result {other:?}").into()),
        }
    }

    fn cmd_xquery(&mut self, query: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        if query.is_empty() {
            return Err(".xquery needs a FLWOR expression".into());
        }
        let t = std::time::Instant::now();
        let xq = vamana_xquery::XQueryEngine::new(&self.engine);
        let out = xq.eval_to_xml(query)?;
        Ok(format!("{out}\n({:.2?})", t.elapsed()))
    }

    fn cmd_stats(&self) -> String {
        let s = self.engine.store().stats();
        format!(
            "documents: {}\ntuples:    {}\npages:     {} ({:.1} tuples/page)\nnames:     {}\nvalues:    {}\nbuffer:    {} hits / {} misses / {} evictions ({:.1}% hit ratio)",
            s.documents,
            s.tuples,
            s.pages,
            s.tuples_per_page(),
            s.distinct_names,
            s.distinct_values,
            s.buffer.hits,
            s.buffer.misses,
            s.buffer.evictions,
            s.buffer.hit_ratio() * 100.0
        )
    }

    fn cmd_docs(&self) -> String {
        if self.engine.store().documents().is_empty() {
            return "no documents loaded".to_string();
        }
        let mut out = String::new();
        for (i, d) in self.engine.store().documents().iter().enumerate() {
            let _ = writeln!(out, "  [{i}] {} (root key {})", d.name, d.doc_key);
        }
        out.pop();
        out
    }

    fn cmd_optimizer(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        match arg {
            "on" => {
                self.engine.options_mut().optimize = true;
                Ok("optimizer on (VQP-OPT)".to_string())
            }
            "off" => {
                self.engine.options_mut().optimize = false;
                Ok("optimizer off (VQP: default plans)".to_string())
            }
            "" => Ok(format!(
                "optimizer is {}",
                if self.engine.options().optimize {
                    "on"
                } else {
                    "off"
                }
            )),
            other => Err(format!("usage: .optimizer [on|off], got `{other}`").into()),
        }
    }

    fn cmd_save(&mut self, path: &str) -> Result<String, Box<dyn std::error::Error>> {
        if path.is_empty() {
            return Err(".save needs a file path".into());
        }
        self.require_docs()?;
        // Rebuild the store into a file-backed pager by re-serializing
        // the documents (the in-memory pager has no file to checkpoint).
        let mut file_store = MassStore::create_file(path, 1024)?;
        for i in 0..self.engine.store().documents().len() {
            let info = &self.engine.store().documents()[i];
            let xml = self.reserialize(DocId(i as u32))?;
            file_store.load_xml(&info.name.clone(), &xml)?;
        }
        file_store.checkpoint()?;
        let tuples = file_store.stats().tuples;
        self.engine = Engine::new(file_store);
        Ok(format!(
            "saved to {path} ({tuples} tuples); session now runs on the file-backed store"
        ))
    }

    fn cmd_open(&mut self, path: &str) -> Result<String, Box<dyn std::error::Error>> {
        if path.is_empty() {
            return Err(".open needs a file path".into());
        }
        let store = MassStore::open_file(path, 1024)?;
        let stats = store.stats();
        self.engine = Engine::new(store);
        Ok(format!(
            "opened {path}: {} documents, {} tuples on {} pages",
            stats.documents, stats.tuples, stats.pages
        ))
    }

    /// Round-trips a stored document back to XML text, used by `.save`
    /// to copy between pagers.
    fn reserialize(&self, doc: DocId) -> Result<String, Box<dyn std::error::Error>> {
        let store = self.engine.store();
        let info = store.document(doc).ok_or("no such document")?;
        Ok(vamana_mass::export::export_subtree_xml(
            store,
            &info.doc_key,
        )?)
    }
}

/// `.help` text.
pub const HELP: &str = "\
commands:
  <xpath>             evaluate an XPath expression on document 0
  .load <file>        load an XML file into the store
  .generate [mb]      generate ~mb megabytes of XMark auction data
  .explain <xpath>    show default vs optimized plan with live costs
  .count <xpath>      count results (index-only when possible)
  .xquery <flwor>     run an XQuery-lite FLWOR expression
  .optimizer [on|off] toggle the cost-driven optimizer
  .stats              storage and buffer-pool statistics
  .docs               list loaded documents
  .save <file>        persist the store to disk (switches to it)
  .open <file>        open a persisted store
  .help               this text
  .quit               exit";

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded() -> Session {
        let mut s = Session::new();
        let dir = std::env::temp_dir().join(format!("vamana-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("t.xml");
        std::fs::write(
            &f,
            "<site><person id='p0'><name>Yung Flach</name></person></site>",
        )
        .unwrap();
        let out = s.execute(&format!(".load {}", f.display())).unwrap();
        assert!(out.contains("loaded"), "{out}");
        s
    }

    #[test]
    fn query_returns_rows_and_timing() {
        let mut s = loaded();
        let out = s.execute("//name").unwrap();
        assert!(out.contains("Yung Flach"), "{out}");
        assert!(out.contains("1 node(s)"), "{out}");
    }

    #[test]
    fn scalar_expressions_print_values() {
        let mut s = loaded();
        let out = s.execute("count(//person)").unwrap();
        assert!(out.starts_with('1'), "{out}");
        let out = s.execute("concat('a', 'b')").unwrap();
        assert!(out.contains("\"ab\""), "{out}");
    }

    #[test]
    fn explain_shows_plans() {
        let mut s = loaded();
        let out = s.execute(".explain //person/name").unwrap();
        assert!(out.contains("default plan"), "{out}");
        assert!(out.contains("optimized plan"), "{out}");
        assert!(out.contains('φ'), "{out}");
    }

    #[test]
    fn stats_and_docs_render() {
        let mut s = loaded();
        let out = s.execute(".stats").unwrap();
        assert!(out.contains("tuples"), "{out}");
        let out = s.execute(".docs").unwrap();
        assert!(out.contains("[0]"), "{out}");
    }

    #[test]
    fn optimizer_toggle() {
        let mut s = loaded();
        assert!(s.execute(".optimizer off").unwrap().contains("off"));
        assert!(s.execute(".optimizer").unwrap().contains("off"));
        assert!(s.execute(".optimizer on").unwrap().contains("on"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new();
        let out = s.execute("//person").unwrap();
        assert!(out.contains("no documents"), "{out}");
        let out = s.execute(".bogus").unwrap();
        assert!(out.contains("unknown command"), "{out}");
        let mut s = loaded();
        let out = s.execute("//person[").unwrap();
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn quit_ends_session() {
        let mut s = Session::new();
        assert!(s.execute(".quit").is_none());
        assert!(s.execute(".exit").is_none());
    }

    #[test]
    fn save_and_open_round_trip() {
        let mut s = loaded();
        let dir = std::env::temp_dir().join(format!("vamana-cli-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("session.mass");
        let out = s.execute(&format!(".save {}", f.display())).unwrap();
        assert!(out.contains("saved"), "{out}");

        let mut s2 = Session::new();
        let out = s2.execute(&format!(".open {}", f.display())).unwrap();
        assert!(out.contains("opened"), "{out}");
        let out = s2.execute("//name").unwrap();
        assert!(out.contains("Yung Flach"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xquery_command_runs_flwor() {
        let mut s = loaded();
        let out = s
            .execute(".xquery for $p in //person return <r>{ $p/name/text() }</r>")
            .unwrap();
        assert!(out.contains("<r>Yung Flach</r>"), "{out}");
        let out = s.execute(".xquery nonsense $$$").unwrap();
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn generate_loads_xmark() {
        let mut s = Session::new();
        let out = s.execute(".generate 0.2").unwrap();
        assert!(out.contains("generated"), "{out}");
        let out = s.execute(".count //person").unwrap();
        let n: f64 = out.split_whitespace().next().unwrap().parse().unwrap();
        assert!(n > 10.0, "{out}");
    }
}
