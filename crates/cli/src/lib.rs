//! Command interpreter behind the `vamana` interactive shell.
//!
//! The REPL logic lives in the library (pure: command string in,
//! rendered output out) so it is unit-testable; `main.rs` only wires
//! stdin/stdout.
//!
//! ```text
//! vamana> .load auction.xml            -- load an XML file into MASS
//! vamana> .generate 5                  -- generate ~5 MB of XMark data
//! vamana> //person[name='Yung Flach']  -- any XPath runs directly
//! vamana> .explain //person/address    -- default vs optimized plan
//! vamana> .count //person              -- index-only count
//! vamana> .limit 50                    -- rows shown per query (0 = all)
//! vamana> .serve 4050                  -- share this session over TCP
//! vamana> .stats                       -- storage statistics
//! vamana> .save store.mass | .open store.mass
//! ```
//!
//! The session's engine lives behind a [`SharedEngine`] so `.serve` can
//! hand the *same* store to a background [`vamana_server::Server`]:
//! documents loaded at the prompt are immediately queryable over the
//! wire (the server's plan cache self-invalidates via the store
//! generation), and vice versa.

use std::fmt::Write as _;
use std::sync::Arc;
use vamana_core::{DocId, Engine, MassStore, SharedEngine, UpdateOp, Value};
use vamana_mass::{pager::FilePager, FsyncPolicy, StoreFormat};
use vamana_server::{render_rows, RenderOptions, Server, ServerConfig, ServerHandle};

/// Result rows printed per query unless `.limit` changes it.
const DEFAULT_MAX_ROWS: usize = 20;

/// Characters of string-value shown per row.
const VALUE_WIDTH: usize = 60;

/// The interactive session state.
pub struct Session {
    engine: Arc<SharedEngine>,
    /// Maximum rows rendered per query (`0` = unlimited).
    limit: usize,
    /// A `.serve` instance sharing this session's engine, if running.
    server: Option<ServerHandle>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session over an empty in-memory store.
    pub fn new() -> Self {
        // `VAMANA_FORMAT=v2` starts the session on the compressed tier.
        let mut store = MassStore::open_memory();
        store
            .set_format(StoreFormat::from_env())
            .expect("empty store accepts any format");
        Session {
            engine: Arc::new(SharedEngine::new(Engine::new(store))),
            limit: DEFAULT_MAX_ROWS,
            server: None,
        }
    }

    /// The shared engine behind the session (and any `.serve` instance).
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.engine
    }

    /// The address of the running `.serve` instance, if any.
    pub fn serving_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|h| h.addr())
    }

    /// Executes one line of input and returns the text to print.
    /// Returns `None` when the session should exit.
    pub fn execute(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return Some(String::new());
        }
        if line == ".quit" || line == ".exit" {
            return None;
        }
        Some(match self.dispatch(line) {
            Ok(out) => out,
            Err(e) => format!("error: {e}"),
        })
    }

    fn dispatch(&mut self, line: &str) -> Result<String, Box<dyn std::error::Error>> {
        if let Some(rest) = line.strip_prefix('.') {
            let (cmd, arg) = match rest.split_once(char::is_whitespace) {
                Some((c, a)) => (c, a.trim()),
                None => (rest, ""),
            };
            return match cmd {
                "help" => Ok(HELP.to_string()),
                "load" => self.cmd_load(arg),
                "generate" => self.cmd_generate(arg),
                "explain" => self.cmd_explain(arg),
                "analyze" => self.cmd_analyze(arg),
                "count" => self.cmd_count(arg),
                "limit" => self.cmd_limit(arg),
                "serve" => self.cmd_serve(arg),
                "stats" => Ok(self.cmd_stats()),
                "docs" => Ok(self.cmd_docs()),
                "optimizer" => self.cmd_optimizer(arg),
                "views" => self.cmd_views(arg),
                "fuse" => self.cmd_fuse(arg),
                "xquery" => self.cmd_xquery(arg),
                "insert" => self.cmd_insert(arg),
                "delete" => self.cmd_delete(arg),
                "checkpoint" => self.cmd_checkpoint(),
                "wal" => Ok(self.cmd_wal()),
                "replica" => self.cmd_replica(arg),
                "topology" => self.cmd_topology(arg),
                "router" => self.cmd_router(arg),
                "save" => self.cmd_save(arg),
                "open" => self.cmd_open(arg),
                other => Err(format!("unknown command .{other}; try .help").into()),
            };
        }
        self.cmd_query(line)
    }

    fn require_docs(&self) -> Result<(), Box<dyn std::error::Error>> {
        if self.engine.read().store().documents().is_empty() {
            return Err("no documents loaded — use .load <file> or .generate <mb>".into());
        }
        Ok(())
    }

    fn cmd_load(&mut self, path: &str) -> Result<String, Box<dyn std::error::Error>> {
        if path.is_empty() {
            return Err(".load needs a file path".into());
        }
        let xml = std::fs::read_to_string(path)?;
        let t = std::time::Instant::now();
        let id = self.engine.load_xml(path, &xml)?;
        let engine = self.engine.read();
        let stats = engine.store().stats();
        Ok(format!(
            "loaded {path} as document {} in {:.2?} ({} tuples on {} pages)",
            id.0,
            t.elapsed(),
            stats.tuples,
            stats.pages
        ))
    }

    fn cmd_generate(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        let (size, file) = match arg.split_once(char::is_whitespace) {
            Some((mb, path)) => (mb, Some(path.trim())),
            None => (arg, None),
        };
        let mb: f64 = if size.is_empty() { 1.0 } else { size.parse()? };
        let config = vamana_xmark::scale::config_for_megabytes(mb);
        let t = std::time::Instant::now();
        if let Some(path) = file {
            // Stream straight to disk: O(1) memory at any scale.
            let out = std::io::BufWriter::new(std::fs::File::create(path)?);
            let bytes = vamana_xmark::generate_to(&config, out)?;
            return Ok(format!(
                "generated {:.1} MB of XMark data to {path} in {:.2?}",
                bytes as f64 / 1_048_576.0,
                t.elapsed()
            ));
        }
        // Stream into a buffer (no DOM arena), then bulk-load it.
        let mut xml = Vec::new();
        vamana_xmark::generate_to(&config, &mut xml)?;
        let xml = String::from_utf8(xml).expect("generator emits UTF-8");
        let id = self.engine.load_xml("xmark-generated", &xml)?;
        Ok(format!(
            "generated {:.1} MB of XMark data as document {} in {:.2?}",
            xml.len() as f64 / 1_048_576.0,
            id.0,
            t.elapsed()
        ))
    }

    fn cmd_query(&mut self, xpath: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        let engine = self.engine.read();
        let t = std::time::Instant::now();
        let value = engine.evaluate(DocId(0), xpath)?;
        let elapsed = t.elapsed();
        let mut out = String::new();
        match value {
            Value::Nodes(nodes) => {
                let rendered = render_rows(
                    &engine,
                    &nodes,
                    &RenderOptions {
                        limit: self.limit,
                        value_width: VALUE_WIDTH,
                    },
                )?;
                for line in &rendered.lines {
                    let _ = writeln!(out, "  {line}");
                }
                if rendered.truncated() > 0 {
                    let _ = writeln!(out, "  … {} more", rendered.truncated());
                }
                let _ = write!(out, "{} node(s) in {elapsed:.2?}", rendered.total);
            }
            Value::Num(n) => {
                let _ = write!(out, "{n} ({elapsed:.2?})");
            }
            Value::Str(s) => {
                let _ = write!(out, "\"{s}\" ({elapsed:.2?})");
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b} ({elapsed:.2?})");
            }
        }
        Ok(out)
    }

    fn cmd_limit(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        if arg.is_empty() {
            return Ok(match self.limit {
                0 => "limit is 0 (unlimited)".to_string(),
                n => format!("limit is {n} row(s)"),
            });
        }
        let n: usize = arg
            .parse()
            .map_err(|_| format!(".limit needs a non-negative integer, got `{arg}`"))?;
        self.limit = n;
        Ok(match n {
            0 => "limit set to 0 (unlimited)".to_string(),
            n => format!("limit set to {n} row(s)"),
        })
    }

    fn cmd_serve(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        match arg {
            "stop" => match self.server.take() {
                Some(handle) => {
                    let addr = handle.addr();
                    handle.stop();
                    Ok(format!("stopped serving on {addr}"))
                }
                None => Err("not serving; start with .serve <port>".into()),
            },
            "" => Ok(match &self.server {
                Some(handle) => format!("serving on {}", handle.addr()),
                None => "not serving; start with .serve <port>".to_string(),
            }),
            port => {
                if let Some(handle) = &self.server {
                    return Err(format!("already serving on {}", handle.addr()).into());
                }
                let port: u16 = port
                    .parse()
                    .map_err(|_| format!(".serve needs a port number, got `{port}`"))?;
                let server = Server::bind_shared(
                    ("127.0.0.1", port),
                    Arc::clone(&self.engine),
                    ServerConfig::default(),
                )?;
                let handle = server.spawn()?;
                let addr = handle.addr();
                self.server = Some(handle);
                Ok(format!(
                    "serving this session's store on {addr} (stop with .serve stop)"
                ))
            }
        }
    }

    fn cmd_explain(&mut self, xpath: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        if xpath.is_empty() {
            return Err(".explain needs an XPath expression".into());
        }
        let ex = self.engine.read().explain(DocId(0), xpath)?;
        let mut out = String::new();
        let _ = writeln!(out, "default plan (Σ tuple volume {}):", ex.default_cost);
        out.push_str(&ex.default_plan);
        let _ = writeln!(
            out,
            "optimized plan (Σ tuple volume {}; rules {:?}; {} iteration(s)):",
            ex.optimized_cost, ex.applied, ex.iterations
        );
        out.push_str(&ex.optimized_plan);
        out.push_str("optimizer trace:\n");
        out.push_str(&ex.opt_trace.render());
        Ok(out)
    }

    fn cmd_analyze(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        let (json, xpath) = match arg.strip_prefix("json") {
            Some(rest) if rest.starts_with(char::is_whitespace) => (true, rest.trim()),
            _ => (false, arg),
        };
        if xpath.is_empty() {
            return Err(".analyze needs an XPath expression".into());
        }
        let analysis = self.engine.read().analyze_doc(DocId(0), xpath)?;
        if json {
            return Ok(analysis.render_json());
        }
        let mut out = analysis.render();
        out.push_str("optimizer trace:\n");
        out.push_str(&analysis.opt_trace.render());
        let p = &analysis.profile;
        let _ = write!(
            out,
            "profile: {:.2?}, {} hit(s) / {} miss(es), {} batch pin(s), {} morsel(s)",
            p.elapsed, p.buffer_hits, p.buffer_misses, p.batch_pins, p.morsels
        );
        Ok(out)
    }

    fn cmd_count(&mut self, xpath: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        if xpath.is_empty() {
            return Err(".count needs an XPath expression".into());
        }
        let t = std::time::Instant::now();
        let v = self
            .engine
            .read()
            .evaluate(DocId(0), &format!("count({xpath})"))?;
        match v {
            Value::Num(n) => Ok(format!("{n} ({:.2?})", t.elapsed())),
            other => Err(format!("unexpected result {other:?}").into()),
        }
    }

    fn cmd_xquery(&mut self, query: &str) -> Result<String, Box<dyn std::error::Error>> {
        self.require_docs()?;
        if query.is_empty() {
            return Err(".xquery needs a FLWOR expression".into());
        }
        let t = std::time::Instant::now();
        let engine = self.engine.read();
        let xq = vamana_xquery::XQueryEngine::new(&engine);
        let out = xq.eval_to_xml(query)?;
        Ok(format!("{out}\n({:.2?})", t.elapsed()))
    }

    fn cmd_stats(&self) -> String {
        let engine = self.engine.read();
        let s = engine.store().stats();
        let p = engine.parallel_stats();
        let (fused_chains, fused_steps) = engine.fused_stats();
        format!(
            "documents: {}\ntuples:    {}\npages:     {} ({:.1} tuples/page)\nnames:     {}\nvalues:    {}\nstorage:   format {} / {} compressed + {} uncompressed pages / {} dict entries\n           {} bytes on disk ({:.2}x compression, {:.1} bytes/tuple)\ndecodes:   {} v1 / {} v2 / {} format fallbacks\nbuffer:    {} hits / {} misses / {} evictions ({:.1}% hit ratio)\nbatched:   {} batch pins / {} pins saved\nparallel:  {} workers / {} morsels / {} batches / {} merge stalls\nfused:     {} chain(s) / {} steps collapsed",
            s.documents,
            s.tuples,
            s.pages,
            s.tuples_per_page(),
            s.distinct_names,
            s.distinct_values,
            s.format.as_str(),
            s.compressed_pages,
            s.uncompressed_pages,
            s.dict_entries,
            s.disk_bytes(),
            s.compression_ratio(),
            s.bytes_per_tuple(),
            s.buffer.decodes_v1,
            s.buffer.decodes_v2,
            s.buffer.format_fallbacks,
            s.buffer.hits,
            s.buffer.misses,
            s.buffer.evictions,
            s.buffer.hit_ratio() * 100.0,
            s.buffer.batch_pins,
            s.buffer.pins_saved,
            p.workers,
            p.morsels,
            p.worker_batches,
            p.merge_stalls,
            fused_chains,
            fused_steps
        )
    }

    fn cmd_docs(&self) -> String {
        let engine = self.engine.read();
        if engine.store().documents().is_empty() {
            return "no documents loaded".to_string();
        }
        let mut out = String::new();
        for (i, d) in engine.store().documents().iter().enumerate() {
            let _ = writeln!(out, "  [{i}] {} (root key {})", d.name, d.doc_key);
        }
        out.pop();
        out
    }

    fn cmd_optimizer(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        match arg {
            "on" => {
                self.engine.write().options_mut().optimize = true;
                Ok("optimizer on (VQP-OPT)".to_string())
            }
            "off" => {
                self.engine.write().options_mut().optimize = false;
                Ok("optimizer off (VQP: default plans)".to_string())
            }
            "" => Ok(format!(
                "optimizer is {}",
                if self.engine.read().options().optimize {
                    "on"
                } else {
                    "off"
                }
            )),
            other => Err(format!("usage: .optimizer [on|off], got `{other}`").into()),
        }
    }

    fn cmd_views(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        match arg {
            "on" => {
                self.engine.write().options_mut().views = true;
                Ok("views on (semantic result caching)".to_string())
            }
            "off" => {
                self.engine.write().options_mut().views = false;
                Ok("views off".to_string())
            }
            "clear" => {
                self.engine.read().views().clear();
                Ok("view cache cleared".to_string())
            }
            "" => {
                let engine = self.engine.read();
                let enabled = engine.options().views;
                let stats = engine.views().stats();
                let mut out = format!(
                    "views {} — {} materialized, {} bytes, hits {}, misses {}, evictions {}",
                    if enabled { "on" } else { "off" },
                    stats.views,
                    stats.bytes,
                    stats.hits,
                    stats.misses,
                    stats.evictions
                );
                for v in engine.views().list() {
                    out.push_str(&format!(
                        "\n  doc {} gen {} rows {} bytes {} hits {}  {}",
                        v.doc, v.generation, v.rows, v.bytes, v.hits, v.xpath
                    ));
                }
                Ok(out)
            }
            other => Err(format!("usage: .views [on|off|clear], got `{other}`").into()),
        }
    }

    fn cmd_fuse(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        match arg {
            "on" => {
                self.engine.write().options_mut().fuse = true;
                Ok("fuse on (whole-query step-chain fusion)".to_string())
            }
            "off" => {
                self.engine.write().options_mut().fuse = false;
                Ok("fuse off".to_string())
            }
            "" => {
                let engine = self.engine.read();
                let enabled = engine.options().fuse;
                let (chains, steps) = engine.fused_stats();
                Ok(format!(
                    "fuse {} — {} chain(s) executed, {} steps collapsed",
                    if enabled { "on" } else { "off" },
                    chains,
                    steps
                ))
            }
            other => Err(format!("usage: .fuse [on|off], got `{other}`").into()),
        }
    }

    /// Resolves a document argument — numeric id or document name.
    fn resolve_doc(&self, token: &str) -> Result<DocId, Box<dyn std::error::Error>> {
        let engine = self.engine.read();
        let docs = engine.store().documents();
        if let Ok(i) = token.parse::<u32>() {
            if (i as usize) < docs.len() {
                return Ok(DocId(i));
            }
        }
        docs.iter()
            .position(|d| &*d.name == token)
            .map(|i| DocId(i as u32))
            .ok_or_else(|| format!("no such document `{token}` (see .docs)").into())
    }

    fn cmd_insert(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        let Some((doc, tail)) = arg
            .split_once(char::is_whitespace)
            .map(|(d, t)| (d, t.trim()))
        else {
            return Err(".insert needs: <doc> <target-xpath> <fragment>".into());
        };
        let Some(at) = tail.find(" <") else {
            return Err(".insert needs an XML fragment after the target XPath".into());
        };
        let (target, fragment) = tail.split_at(at);
        let doc = self.resolve_doc(doc)?;
        let op = UpdateOp::Insert {
            target: target.trim().to_string(),
            fragment: fragment.trim().to_string(),
        };
        let outcome = self.engine.write().apply_update(doc, &op)?;
        Ok(format!(
            "inserted {} tuple(s) at the first of {} match(es) (lsn {}, doc generation {}) in {:.2?}",
            outcome.inserted,
            outcome.matched,
            outcome.lsn,
            outcome.doc_generation,
            outcome.profile.elapsed
        ))
    }

    fn cmd_delete(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        let Some((doc, target)) = arg
            .split_once(char::is_whitespace)
            .map(|(d, t)| (d, t.trim()))
        else {
            return Err(".delete needs: <doc> <target-xpath>".into());
        };
        if target.is_empty() {
            return Err(".delete needs: <doc> <target-xpath>".into());
        }
        let doc = self.resolve_doc(doc)?;
        let op = UpdateOp::Delete {
            target: target.to_string(),
        };
        let outcome = self.engine.write().apply_update(doc, &op)?;
        Ok(format!(
            "deleted {} tuple(s) across {} match(es) (lsn {}, doc generation {}) in {:.2?}",
            outcome.deleted,
            outcome.matched,
            outcome.lsn,
            outcome.doc_generation,
            outcome.profile.elapsed
        ))
    }

    fn cmd_checkpoint(&mut self) -> Result<String, Box<dyn std::error::Error>> {
        let t = std::time::Instant::now();
        let stats = self.engine.write().checkpoint()?;
        Ok(format!(
            "checkpointed in {:.2?}: WAL depth {} record(s), last lsn {}",
            t.elapsed(),
            stats.depth,
            stats.last_lsn
        ))
    }

    fn cmd_wal(&self) -> String {
        let engine = self.engine.read();
        let store = engine.store();
        if !store.is_durable() {
            return "in-memory store: no write-ahead log (use .save <file>)".to_string();
        }
        let wal = store.wal_stats();
        let policy = match store.fsync_policy() {
            Some(FsyncPolicy::Always) => "always".to_string(),
            Some(FsyncPolicy::EveryN(n)) => format!("every {n} commit(s)"),
            Some(FsyncPolicy::Never) => "never".to_string(),
            None => "unknown".to_string(),
        };
        format!(
            "wal depth:  {} record(s) since the last checkpoint\nstart lsn:  {}\nlast lsn:   {}\ncommits:    {} (this session)\nfsync:      {} ({} issued)\nreplayed:   {} record(s) to lsn {} at open",
            wal.depth,
            wal.start_lsn,
            wal.last_lsn,
            wal.commits,
            policy,
            wal.fsyncs,
            wal.replayed_records,
            wal.replayed_lsn
        )
    }

    /// Asks a server (primary or replica) for its `LAG` report.
    fn cmd_replica(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        if arg.is_empty() {
            return Err(".replica needs a <host:port> to ask for LAG".into());
        }
        let mut out = String::new();
        for line in wire_request(arg, "LAG")? {
            if line.starts_with("OK") {
                break;
            }
            let _ = writeln!(out, "  {}", line.strip_prefix("LAG ").unwrap_or(&line));
        }
        out.pop();
        Ok(out)
    }

    /// Asks a `vamana-router` for its `TOPOLOGY` report: shard
    /// primaries, replicas (lag and freshness as the router sees them),
    /// and the document registry with each document's owning shard.
    fn cmd_topology(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        if arg.is_empty() {
            return Err(".topology needs a router <host:port>".into());
        }
        let mut out = String::new();
        for line in wire_request(arg, "TOPOLOGY")? {
            if line.starts_with("OK") {
                let _ = write!(out, "{line}");
            } else {
                let _ = writeln!(out, "  {line}");
            }
        }
        Ok(out)
    }

    /// Sends one raw protocol line to any wire endpoint (server or
    /// router) and prints the reply verbatim — the ops escape hatch for
    /// verbs without a dedicated dot-command (`STATS`, `CHECKPOINT`,
    /// `CACHE LIST`, …).
    fn cmd_router(&mut self, arg: &str) -> Result<String, Box<dyn std::error::Error>> {
        let Some((addr, request)) = arg.split_once(char::is_whitespace) else {
            return Err(
                ".router needs: <host:port> <request line> (e.g. .router 127.0.0.1:4040 STATS)"
                    .into(),
            );
        };
        Ok(wire_request(addr, request.trim())?.join("\n"))
    }

    fn cmd_save(&mut self, path: &str) -> Result<String, Box<dyn std::error::Error>> {
        if path.is_empty() {
            return Err(".save needs a file path".into());
        }
        self.require_docs()?;
        // Rebuild the store into a durable file-backed pager (pages +
        // WAL) by re-serializing the documents (the in-memory pager has
        // no file to checkpoint).
        let mut file_store = MassStore::create_durable(path, 1024, FsyncPolicy::Always)?;
        // Keep the session's page format across the rebuild.
        file_store.set_format(self.engine.read().store().format())?;
        {
            let engine = self.engine.read();
            for i in 0..engine.store().documents().len() {
                let info = &engine.store().documents()[i];
                let xml = reserialize(&engine, DocId(i as u32))?;
                file_store.load_xml(&info.name.clone(), &xml)?;
            }
        }
        file_store.checkpoint()?;
        let tuples = file_store.stats().tuples;
        *self.engine.write() = Engine::new(file_store);
        Ok(format!(
            "saved to {path} ({tuples} tuples); session now runs on the durable file-backed store"
        ))
    }

    fn cmd_open(&mut self, path: &str) -> Result<String, Box<dyn std::error::Error>> {
        if path.is_empty() {
            return Err(".open needs a file path".into());
        }
        // A sibling `.wal` file marks a durable store: open it through
        // recovery (replays the committed WAL tail) instead of plain.
        let durable = FilePager::wal_path(std::path::Path::new(path)).exists();
        let store = if durable {
            MassStore::open_durable(path, 1024, FsyncPolicy::Always)?
        } else {
            MassStore::open_file(path, 1024)?
        };
        let stats = store.stats();
        let wal = store.wal_stats();
        *self.engine.write() = Engine::new(store);
        let mut out = format!(
            "opened {path}: {} documents, {} tuples on {} pages",
            stats.documents, stats.tuples, stats.pages
        );
        if durable {
            let _ = write!(
                out,
                " (durable; replayed {} WAL record(s) to lsn {})",
                wal.replayed_records, wal.replayed_lsn
            );
        }
        Ok(out)
    }
}

/// One request/reply round trip against a VAMANA wire endpoint (server
/// or router): returns every reply line up to and including the
/// terminating `OK …`, or `Err` carrying an `ERR …` reply.
fn wire_request(addr: &str, request: &str) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{request}")?;
    writer.flush()?;
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err("server closed the connection mid-response".into());
        }
        let line = line.trim_end().to_string();
        if line.starts_with("ERR") {
            return Err(line.into());
        }
        let done = line.starts_with("OK");
        lines.push(line);
        if done {
            return Ok(lines);
        }
    }
}

/// Round-trips a stored document back to XML text, used by `.save` to
/// copy between pagers.
fn reserialize(engine: &Engine, doc: DocId) -> Result<String, Box<dyn std::error::Error>> {
    let store = engine.store();
    let info = store.document(doc).ok_or("no such document")?;
    Ok(vamana_mass::export::export_subtree_xml(
        store,
        &info.doc_key,
    )?)
}

/// `.help` text.
pub const HELP: &str = "\
commands:
  <xpath>             evaluate an XPath expression on document 0
  .load <file>        load an XML file into the store
  .generate [mb] [file]  generate ~mb MB of XMark data (stream to file if given)
  .explain <xpath>    show default vs optimized plan with live costs
                      and the optimizer's pass-by-pass trace
  .analyze [json] <xpath>
                      run the query with per-operator instrumentation:
                      est vs act rows, q-errors, misestimation summary
  .count <xpath>      count results (index-only when possible)
  .limit [n]          rows shown per query (0 = unlimited)
  .serve <port|stop>  share this session's store over TCP
  .xquery <flwor>     run an XQuery-lite FLWOR expression
  .optimizer [on|off] toggle the cost-driven optimizer
  .views [on|off|clear]
                      semantic result caching: materialize hot query
                      results and answer contained queries from them
  .fuse [on|off]      whole-query fusion: collapse step chains into
                      single page-pinned scans when the model agrees
  .stats              storage and buffer-pool statistics
  .docs               list loaded documents
  .insert <doc> <xpath> <fragment>
                      append an XML fragment to the first match
  .delete <doc> <xpath>
                      delete every match's subtree
  .checkpoint         fold the WAL into the page store and truncate it
  .wal                write-ahead log depth, LSN range, and fsync policy
  .replica <host:port>
                      ask a server for its replication LAG report
  .topology <host:port>
                      ask a vamana-router for its shard/replica/document
                      topology (health, lag bounds, placement)
  .router <host:port> <request>
                      send one raw protocol line to a server or router
                      and print the reply (e.g. .router :4040 STATS)
  .save <file>        persist the store to disk with a WAL (switches to it)
  .open <file>        open a persisted store (recovers from its WAL)
  .help               this text
  .quit               exit";

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn loaded() -> Session {
        let mut s = Session::new();
        let dir = std::env::temp_dir().join(format!("vamana-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("t.xml");
        std::fs::write(
            &f,
            "<site><person id='p0'><name>Yung Flach</name></person></site>",
        )
        .unwrap();
        let out = s.execute(&format!(".load {}", f.display())).unwrap();
        assert!(out.contains("loaded"), "{out}");
        s
    }

    #[test]
    fn query_returns_rows_and_timing() {
        let mut s = loaded();
        let out = s.execute("//name").unwrap();
        assert!(out.contains("Yung Flach"), "{out}");
        assert!(out.contains("1 node(s)"), "{out}");
    }

    #[test]
    fn scalar_expressions_print_values() {
        let mut s = loaded();
        let out = s.execute("count(//person)").unwrap();
        assert!(out.starts_with('1'), "{out}");
        let out = s.execute("concat('a', 'b')").unwrap();
        assert!(out.contains("\"ab\""), "{out}");
    }

    #[test]
    fn limit_caps_rows_and_is_adjustable() {
        let mut s = Session::new();
        s.engine()
            .load_xml("d", "<r><a>1</a><a>2</a><a>3</a></r>")
            .unwrap();
        assert!(s.execute(".limit").unwrap().contains("20"));
        assert!(s.execute(".limit 2").unwrap().contains("2 row(s)"));
        let out = s.execute("//a").unwrap();
        assert!(out.contains("… 1 more"), "{out}");
        assert!(out.contains("3 node(s)"), "{out}");
        assert!(s.execute(".limit 0").unwrap().contains("unlimited"));
        let out = s.execute("//a").unwrap();
        assert!(!out.contains("more"), "{out}");
        let out = s.execute(".limit nope").unwrap();
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn serve_shares_the_session_store() {
        let mut s = loaded();
        // Port 0: the kernel picks a free port, reported by serving_addr.
        let out = s.execute(".serve 0").unwrap();
        assert!(out.contains("serving"), "{out}");
        let addr = s.serving_addr().expect("serving");

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "QUERY //name").unwrap();
        let mut rows = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            let done = line.starts_with("OK") || line.starts_with("ERR");
            rows.push(line);
            if done {
                break;
            }
        }
        assert!(rows[0].contains("Yung Flach"), "{rows:?}");
        assert!(rows.last().unwrap().starts_with("OK 1 row(s)"), "{rows:?}");

        assert!(s.execute(".serve").unwrap().contains("serving on"));
        let out = s.execute(".serve 0").unwrap();
        assert!(out.contains("already serving"), "{out}");
        assert!(s.execute(".serve stop").unwrap().contains("stopped"));
        assert!(s.execute(".serve").unwrap().contains("not serving"));
    }

    #[test]
    fn explain_shows_plans() {
        let mut s = loaded();
        let out = s.execute(".explain //person/name").unwrap();
        assert!(out.contains("default plan"), "{out}");
        assert!(out.contains("optimized plan"), "{out}");
        assert!(out.contains('φ'), "{out}");
        assert!(out.contains("optimizer trace:"), "{out}");
        assert!(out.contains("pass: clean-up"), "{out}");
        assert!(out.contains("pass: cost gathering"), "{out}");
    }

    #[test]
    fn analyze_shows_actuals_and_trace() {
        let mut s = loaded();
        let out = s.execute(".analyze //person/name").unwrap();
        assert!(out.contains("est="), "{out}");
        assert!(out.contains("act="), "{out}");
        assert!(out.contains("misestimations"), "{out}");
        assert!(out.contains("optimizer trace:"), "{out}");
        assert!(out.contains("profile:"), "{out}");
        let out = s.execute(".analyze json //person/name").unwrap();
        assert!(out.starts_with('{'), "{out}");
        assert!(out.contains("\"operators\""), "{out}");
        assert!(out.contains("\"trace\""), "{out}");
        let out = s.execute(".analyze").unwrap();
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn stats_and_docs_render() {
        let mut s = loaded();
        let out = s.execute(".stats").unwrap();
        assert!(out.contains("tuples"), "{out}");
        assert!(out.contains("batch pins"), "{out}");
        assert!(out.contains("merge stalls"), "{out}");
        let out = s.execute(".docs").unwrap();
        assert!(out.contains("[0]"), "{out}");
    }

    #[test]
    fn optimizer_toggle() {
        let mut s = loaded();
        assert!(s.execute(".optimizer off").unwrap().contains("off"));
        assert!(s.execute(".optimizer").unwrap().contains("off"));
        assert!(s.execute(".optimizer on").unwrap().contains("on"));
    }

    #[test]
    fn views_toggle_materialize_and_clear() {
        let mut s = loaded();
        assert!(s.execute(".views").unwrap().contains("views off"));
        assert!(s.execute(".views on").unwrap().contains("views on"));
        // Second sighting crosses the default admission threshold.
        s.execute("//name").unwrap();
        s.execute("//name").unwrap();
        let out = s.execute(".views").unwrap();
        assert!(out.contains("1 materialized"), "{out}");
        assert!(out.contains("//name"), "{out}");
        assert!(s.execute(".views clear").unwrap().contains("cleared"));
        assert!(s.execute(".views").unwrap().contains("0 materialized"));
        assert!(s.execute(".views frob").unwrap().contains("error"));
        assert!(s.execute(".views off").unwrap().contains("views off"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new();
        let out = s.execute("//person").unwrap();
        assert!(out.contains("no documents"), "{out}");
        let out = s.execute(".bogus").unwrap();
        assert!(out.contains("unknown command"), "{out}");
        let mut s = loaded();
        let out = s.execute("//person[").unwrap();
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn quit_ends_session() {
        let mut s = Session::new();
        assert!(s.execute(".quit").is_none());
        assert!(s.execute(".exit").is_none());
    }

    #[test]
    fn save_and_open_round_trip() {
        let mut s = loaded();
        let dir = std::env::temp_dir().join(format!("vamana-cli-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("session.mass");
        let out = s.execute(&format!(".save {}", f.display())).unwrap();
        assert!(out.contains("saved"), "{out}");

        let mut s2 = Session::new();
        let out = s2.execute(&format!(".open {}", f.display())).unwrap();
        assert!(out.contains("opened"), "{out}");
        let out = s2.execute("//name").unwrap();
        assert!(out.contains("Yung Flach"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_delete_and_checkpoint_commands() {
        let mut s = loaded();
        let out = s
            .execute(".insert 0 /site <person id='p1'><name>Grace</name></person>")
            .unwrap();
        assert!(out.contains("match(es)"), "{out}");
        assert!(out.contains("doc generation 1"), "{out}");
        let out = s.execute(".count //person").unwrap();
        assert!(out.starts_with('2'), "{out}");

        let out = s.execute(".delete 0 //person[name='Grace']").unwrap();
        assert!(out.contains("deleted"), "{out}");
        let out = s.execute(".count //person").unwrap();
        assert!(out.starts_with('1'), "{out}");

        // In-memory stores checkpoint trivially (no WAL).
        let out = s.execute(".checkpoint").unwrap();
        assert!(out.contains("WAL depth 0"), "{out}");

        let out = s.execute(".insert 0").unwrap();
        assert!(out.contains("error"), "{out}");
        let out = s.execute(".delete nosuchdoc //a").unwrap();
        assert!(out.contains("no such document"), "{out}");
    }

    #[test]
    fn saved_store_recovers_updates_from_the_wal() {
        let mut s = loaded();
        let dir = std::env::temp_dir().join(format!("vamana-cli-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("durable.mass");
        let out = s.execute(&format!(".save {}", f.display())).unwrap();
        assert!(out.contains("saved"), "{out}");

        // Update through the durable session; do NOT checkpoint — the
        // WAL alone must carry the insert across the reopen.
        let out = s
            .execute(".insert 0 /site <person id='p9'><name>Walled</name></person>")
            .unwrap();
        assert!(out.contains("lsn"), "{out}");
        drop(s);

        let mut s2 = Session::new();
        let out = s2.execute(&format!(".open {}", f.display())).unwrap();
        assert!(out.contains("durable"), "{out}");
        assert!(out.contains("replayed"), "{out}");
        let out = s2.execute("//person[name='Walled']").unwrap();
        assert!(out.contains("1 node(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_command_reports_depth_and_policy() {
        let mut s = Session::new();
        let out = s.execute(".wal").unwrap();
        assert!(out.contains("in-memory store"), "{out}");

        let mut s = loaded();
        let dir = std::env::temp_dir().join(format!("vamana-cli-walcmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("walcmd.mass");
        s.execute(&format!(".save {}", f.display())).unwrap();
        let out = s
            .execute(".insert 0 /site <person id='p2'><name>Lag</name></person>")
            .unwrap();
        assert!(out.contains("lsn"), "{out}");
        let out = s.execute(".wal").unwrap();
        assert!(out.contains("wal depth"), "{out}");
        assert!(out.contains("fsync:      always"), "{out}");
        assert!(!out.contains("wal depth:  0 "), "pending records: {out}");
        let out = s.execute(".checkpoint").unwrap();
        assert!(out.contains("WAL depth 0"), "{out}");
        let out = s.execute(".wal").unwrap();
        assert!(out.contains("wal depth:  0 "), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_command_fetches_lag_from_a_server() {
        let mut s = loaded();
        s.execute(".serve 0").unwrap();
        let addr = s.serving_addr().expect("serving");
        let out = s.execute(&format!(".replica {addr}")).unwrap();
        assert!(out.contains("role primary"), "{out}");
        assert!(out.contains("feeds"), "{out}");
        s.execute(".serve stop").unwrap();
        let out = s.execute(".replica").unwrap();
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn xquery_command_runs_flwor() {
        let mut s = loaded();
        let out = s
            .execute(".xquery for $p in //person return <r>{ $p/name/text() }</r>")
            .unwrap();
        assert!(out.contains("<r>Yung Flach</r>"), "{out}");
        let out = s.execute(".xquery nonsense $$$").unwrap();
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn generate_loads_xmark() {
        let mut s = Session::new();
        let out = s.execute(".generate 0.2").unwrap();
        assert!(out.contains("generated"), "{out}");
        let out = s.execute(".count //person").unwrap();
        let n: f64 = out.split_whitespace().next().unwrap().parse().unwrap();
        assert!(n > 10.0, "{out}");
    }

    #[test]
    fn router_and_topology_commands_speak_the_wire() {
        let mut s = loaded();
        s.execute(".serve 0").unwrap();
        let addr = s.serving_addr().expect("serving").to_string();

        // .router sends any raw verb; a plain server answers STATS.
        let out = s.execute(&format!(".router {addr} STATS")).unwrap();
        assert!(out.contains("STAT queries_total"), "{out}");
        assert!(out.lines().last().unwrap().starts_with("OK"), "{out}");

        // .topology needs a router behind the address; a plain server
        // rejects the verb, and the error reply surfaces as the error.
        let out = s.execute(&format!(".topology {addr}")).unwrap();
        assert!(out.starts_with("error: ERR"), "{out}");

        // Argument validation.
        let out = s.execute(".router onlyoneword").unwrap();
        assert!(out.contains("error"), "{out}");
        let out = s.execute(".topology").unwrap();
        assert!(out.contains("error"), "{out}");
        s.execute(".serve stop").unwrap();
    }
}
