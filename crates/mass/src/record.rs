//! Node records: what MASS stores for each XML node, and their on-page
//! byte encoding.

use crate::error::{MassError, Result};
use crate::names::NameId;
use vamana_flex::FlexKey;

/// The kind of a stored node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RecordKind {
    /// A per-document virtual root (the XPath document node).
    Document = 0,
    /// Element node.
    Element = 1,
    /// Attribute node.
    Attribute = 2,
    /// Text node.
    Text = 3,
    /// Comment node.
    Comment = 4,
    /// Processing instruction.
    Pi = 5,
}

impl RecordKind {
    fn from_u8(b: u8) -> Result<Self> {
        Ok(match b {
            0 => RecordKind::Document,
            1 => RecordKind::Element,
            2 => RecordKind::Attribute,
            3 => RecordKind::Text,
            4 => RecordKind::Comment,
            5 => RecordKind::Pi,
            other => return Err(MassError::CorruptRecord(format!("bad kind byte {other}"))),
        })
    }
}

/// Where a record's textual value lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueRef {
    /// No value (elements, documents).
    None,
    /// Short value stored inline in the record.
    Inline(Box<str>),
    /// Long value stored in the overflow blob heap: (offset, byte length).
    Overflow {
        /// Byte offset of the blob in the overflow heap.
        offset: u64,
        /// Byte length of the blob.
        len: u32,
    },
    /// Hot value interned in the store's [`crate::compress::ValueDict`].
    Dict(u32),
}

/// One stored node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    /// Structural key; also the clustering key.
    pub key: FlexKey,
    /// Node kind.
    pub kind: RecordKind,
    /// Interned name for elements/attributes/PI targets.
    pub name: Option<NameId>,
    /// Text/attribute/comment/PI value.
    pub value: ValueRef,
}

impl NodeRecord {
    /// Creates an element record.
    pub fn element(key: FlexKey, name: NameId) -> Self {
        NodeRecord {
            key,
            kind: RecordKind::Element,
            name: Some(name),
            value: ValueRef::None,
        }
    }

    /// Creates a text record with an inline value.
    pub fn text(key: FlexKey, value: &str) -> Self {
        NodeRecord {
            key,
            kind: RecordKind::Text,
            name: None,
            value: ValueRef::Inline(value.into()),
        }
    }

    /// Creates an attribute record with an inline value.
    pub fn attribute(key: FlexKey, name: NameId, value: &str) -> Self {
        NodeRecord {
            key,
            kind: RecordKind::Attribute,
            name: Some(name),
            value: ValueRef::Inline(value.into()),
        }
    }

    /// Serialized size in bytes (used by the page packer).
    pub fn encoded_len(&self) -> usize {
        let val = match &self.value {
            ValueRef::None => 0,
            ValueRef::Inline(s) => s.len(),
            ValueRef::Overflow { .. } => 12,
            ValueRef::Dict(_) => 4,
        };
        // key_len(2) + key + kind(1) + name(4) + value_tag(1) + value_len(4) + value
        2 + self.key.as_flat().len() + 1 + 4 + 1 + 4 + val
    }

    /// Appends the record's encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let flat = self.key.as_flat();
        out.extend_from_slice(&(flat.len() as u16).to_le_bytes());
        out.extend_from_slice(flat);
        out.push(self.kind as u8);
        out.extend_from_slice(
            &self
                .name
                .map(|n| n.0)
                .unwrap_or(NameId::NONE_RAW)
                .to_le_bytes(),
        );
        match &self.value {
            ValueRef::None => {
                out.push(0);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
            ValueRef::Inline(s) => {
                out.push(1);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ValueRef::Overflow { offset, len } => {
                out.push(2);
                out.extend_from_slice(&12u32.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            ValueRef::Dict(id) => {
                out.push(3);
                out.extend_from_slice(&4u32.to_le_bytes());
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }

    /// Decodes one record from `buf`, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(NodeRecord, usize)> {
        let need = |n: usize, at: usize| -> Result<()> {
            if buf.len() < at + n {
                Err(MassError::CorruptRecord("record truncated".into()))
            } else {
                Ok(())
            }
        };
        need(2, 0)?;
        let key_len = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        need(key_len, 2)?;
        if !FlexKey::is_valid_flat(&buf[2..2 + key_len]) {
            return Err(MassError::CorruptRecord("malformed flat key".into()));
        }
        let key = FlexKey::from_flat(buf[2..2 + key_len].to_vec());
        let mut at = 2 + key_len;
        need(1 + 4 + 1 + 4, at)?;
        let kind = RecordKind::from_u8(buf[at])?;
        at += 1;
        let raw_name = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
        let name = (raw_name != NameId::NONE_RAW).then_some(NameId(raw_name));
        at += 4;
        let tag = buf[at];
        at += 1;
        let vlen = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4;
        need(vlen, at)?;
        let value = match tag {
            0 => ValueRef::None,
            1 => ValueRef::Inline(
                std::str::from_utf8(&buf[at..at + vlen])
                    .map_err(|_| MassError::CorruptRecord("non-UTF8 value".into()))?
                    .into(),
            ),
            2 => {
                if vlen != 12 {
                    return Err(MassError::CorruptRecord("bad overflow ref".into()));
                }
                ValueRef::Overflow {
                    offset: u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes")),
                    len: u32::from_le_bytes(buf[at + 8..at + 12].try_into().expect("4 bytes")),
                }
            }
            3 => {
                if vlen != 4 {
                    return Err(MassError::CorruptRecord("bad dict ref".into()));
                }
                ValueRef::Dict(u32::from_le_bytes(
                    buf[at..at + 4].try_into().expect("4 bytes"),
                ))
            }
            other => return Err(MassError::CorruptRecord(format!("bad value tag {other}"))),
        };
        at += vlen;
        Ok((
            NodeRecord {
                key,
                kind,
                name,
                value,
            },
            at,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_flex::seq_label;

    fn key(path: &[u64]) -> FlexKey {
        let mut k = FlexKey::root();
        for &i in path {
            k = k.child(&seq_label(i));
        }
        k
    }

    #[test]
    fn element_round_trip() {
        let rec = NodeRecord::element(key(&[0, 3]), NameId(7));
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(buf.len(), rec.encoded_len());
        let (back, used) = NodeRecord::decode(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn text_round_trip() {
        let rec = NodeRecord::text(key(&[0, 3, 1]), "Yung Flach");
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let (back, _) = NodeRecord::decode(&buf).unwrap();
        assert_eq!(back.value, ValueRef::Inline("Yung Flach".into()));
        assert_eq!(back.kind, RecordKind::Text);
        assert_eq!(back.name, None);
    }

    #[test]
    fn attribute_round_trip() {
        let rec = NodeRecord::attribute(key(&[1]), NameId(0), "person144");
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let (back, _) = NodeRecord::decode(&buf).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn overflow_round_trip() {
        let rec = NodeRecord {
            key: key(&[2]),
            kind: RecordKind::Text,
            name: None,
            value: ValueRef::Overflow {
                offset: 123456789,
                len: 42,
            },
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(buf.len(), rec.encoded_len());
        let (back, _) = NodeRecord::decode(&buf).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn consecutive_records_decode_in_sequence() {
        let recs = vec![
            NodeRecord::element(key(&[0]), NameId(0)),
            NodeRecord::text(key(&[0, 0]), "hello"),
            NodeRecord::attribute(key(&[0, 1]), NameId(1), "v"),
        ];
        let mut buf = Vec::new();
        for r in &recs {
            r.encode(&mut buf);
        }
        let mut at = 0;
        for r in &recs {
            let (back, used) = NodeRecord::decode(&buf[at..]).unwrap();
            assert_eq!(&back, r);
            at += used;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn truncated_record_is_an_error() {
        let rec = NodeRecord::text(key(&[0]), "some value here");
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        for cut in [0, 1, 3, buf.len() - 1] {
            assert!(NodeRecord::decode(&buf[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_kind_byte_is_an_error() {
        let rec = NodeRecord::element(key(&[0]), NameId(0));
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let kind_pos = 2 + rec.key.as_flat().len();
        buf[kind_pos] = 99;
        assert!(NodeRecord::decode(&buf).is_err());
    }
}
