//! Forward cursor over the clustered index.
//!
//! A [`MassCursor`] iterates records in document order within a
//! [`KeyRange`], crossing page boundaries through the buffer pool. Its
//! [`MassCursor::seek`] method is the primitive behind MASS's
//! sibling-jump evaluation: a child/sibling scan leaps over whole
//! subtrees by seeking their `subtree_upper` bound instead of reading
//! through them.

use crate::error::Result;
use crate::page::Page;
use crate::record::NodeRecord;
use crate::store::MassStore;
use std::sync::Arc;
use vamana_flex::KeyRange;

/// Document-order record cursor bounded by a key range.
pub struct MassCursor<'a> {
    store: &'a MassStore,
    hi: Option<Vec<u8>>,
    /// Position in the store's sparse index.
    page_pos: usize,
    rec_pos: usize,
    page: Option<Arc<Page>>,
    /// Set by `seek`; resolved to `rec_pos` when the page is loaded.
    pending_seek: Option<Vec<u8>>,
    done: bool,
}

impl<'a> MassCursor<'a> {
    /// A cursor positioned at the first record inside `range`.
    pub fn new(store: &'a MassStore, range: KeyRange) -> Self {
        let mut c = MassCursor {
            store,
            hi: range.hi.clone(),
            page_pos: 0,
            rec_pos: 0,
            page: None,
            pending_seek: None,
            done: false,
        };
        c.seek(&range.lo);
        c
    }

    /// Repositions the cursor at the first record with key `>= flat`
    /// (which may be before or after the current position). The upper
    /// bound is unchanged.
    pub fn seek(&mut self, flat: &[u8]) {
        self.page = None;
        self.done = false;
        if self.store.index.is_empty() {
            self.done = true;
            return;
        }
        let pos = self
            .store
            .index
            .partition_point(|(first, _)| first.as_slice() <= flat);
        self.page_pos = pos.saturating_sub(1);
        self.pending_seek = Some(flat.to_vec());
    }

    /// Loads pages until the cursor rests on an in-range record.
    /// Returns `false` when the range is exhausted.
    fn position(&mut self) -> Result<bool> {
        loop {
            if self.done {
                return Ok(false);
            }
            if self.page.is_none() {
                if self.page_pos >= self.store.index.len() {
                    self.done = true;
                    return Ok(false);
                }
                let page = self.store.pool.get(self.store.index[self.page_pos].1)?;
                self.rec_pos = match self.pending_seek.take() {
                    Some(target) => match page.find(&target) {
                        Ok(i) | Err(i) => i,
                    },
                    None => 0,
                };
                self.page = Some(page);
            }
            let page = self.page.as_ref().expect("just loaded");
            if self.rec_pos >= page.len() {
                self.page = None;
                self.page_pos += 1;
                continue;
            }
            if let Some(hi) = &self.hi {
                if page.records()[self.rec_pos].key.as_flat() >= hi.as_slice() {
                    self.done = true;
                    return Ok(false);
                }
            }
            return Ok(true);
        }
    }

    /// Pulls the next record, or `None` when the range is exhausted.
    #[allow(clippy::should_implement_trait)] // fallible, so not Iterator
    pub fn next(&mut self) -> Result<Option<NodeRecord>> {
        if !self.position()? {
            return Ok(None);
        }
        let rec = self.page.as_ref().expect("positioned").records()[self.rec_pos].clone();
        self.rec_pos += 1;
        Ok(Some(rec))
    }

    /// Like [`MassCursor::next`], but returns a lightweight
    /// [`crate::axes::NodeEntry`] without cloning the record's value —
    /// the hot path for axis scans, which never look at values.
    pub fn next_entry(&mut self) -> Result<Option<crate::axes::NodeEntry>> {
        if !self.position()? {
            return Ok(None);
        }
        let rec = &self.page.as_ref().expect("positioned").records()[self.rec_pos];
        let entry = crate::axes::NodeEntry {
            key: rec.key.clone(),
            kind: rec.kind,
            name: rec.name,
        };
        self.rec_pos += 1;
        Ok(Some(entry))
    }

    /// Pulls up to `max` records as [`crate::axes::NodeEntry`]s into
    /// `out`, pinning each page once and decoding every qualifying record
    /// on it in one pass. Returns the number of entries appended; a short
    /// (or zero) count means the range is exhausted.
    ///
    /// This is the batched hot path: the per-record work shrinks to a key
    /// clone and a push, while page lookup, shard locking, and the upper
    /// bound comparison are amortized across the whole page (the bound is
    /// resolved once per page by binary search instead of once per
    /// record).
    pub fn next_batch(
        &mut self,
        out: &mut Vec<crate::axes::NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        self.batch_scan(out, max, |_| true)
    }

    /// Like [`MassCursor::next_batch`], but with a caller-supplied
    /// stateful predicate deciding which records materialize an entry.
    ///
    /// This is the entry point for whole-query fused scans in
    /// `vamana-core`: the closure threads a path-matching automaton over
    /// the records of every pinned page, so an entire step chain is
    /// evaluated under one page pin per page instead of one scan per
    /// location step.
    pub fn next_batch_where(
        &mut self,
        keep: impl FnMut(&NodeRecord) -> bool,
        out: &mut Vec<crate::axes::NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        self.batch_scan(out, max, keep)
    }

    /// Like [`MassCursor::next_batch`], but applies the axis-level record
    /// checks inline before materializing an entry — the backing of
    /// [`crate::axes::AxisStream::next_batch`] for clustered scans.
    pub(crate) fn next_batch_filtered(
        &mut self,
        filter: &crate::axes::NodeFilter,
        skip_attrs: bool,
        not_ancestor_of: Option<&vamana_flex::FlexKey>,
        out: &mut Vec<crate::axes::NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        self.batch_scan(out, max, |rec| {
            if skip_attrs && rec.kind == crate::record::RecordKind::Attribute {
                return false;
            }
            if let Some(ctx) = not_ancestor_of {
                if rec.key.is_ancestor_of(ctx) {
                    return false;
                }
            }
            filter.matches_parts(rec.kind, rec.name)
        })
    }

    /// Batched sibling-jump scan: like [`MassCursor::next_batch_filtered`]
    /// but after visiting a record it skips the record's whole subtree
    /// (the MASS sibling jump), so only nodes at the scan level are
    /// visited — the batched backing of the `JumpScan` axis mode.
    ///
    /// The win over repeated scalar jumps is that a jump whose target
    /// lands on the *same* page is resolved by binary search over the
    /// already-pinned records; only jumps that leave the page pay for a
    /// buffer-pool lookup. Sibling runs cluster on few pages, so most
    /// jumps stay in-page.
    pub(crate) fn next_batch_jump(
        &mut self,
        filter: &crate::axes::NodeFilter,
        skip_attrs: bool,
        out: &mut Vec<crate::axes::NodeEntry>,
        max: usize,
    ) -> Result<usize> {
        let start = out.len();
        while out.len() - start < max {
            if !self.position()? {
                break;
            }
            let page_id = self.store.index[self.page_pos].1;
            let page = self.page.clone().expect("positioned");
            let records = page.records();
            let end = match &self.hi {
                Some(hi) => {
                    self.rec_pos
                        + records[self.rec_pos..]
                            .partition_point(|r| r.key.as_flat() < hi.as_slice())
                }
                None => records.len(),
            };
            let mut i = self.rec_pos;
            let mut visited = 0u64;
            let mut sought = false;
            while i < end && out.len() - start < max {
                let rec = &records[i];
                visited += 1;
                if (!skip_attrs || rec.kind != crate::record::RecordKind::Attribute)
                    && filter.matches_parts(rec.kind, rec.name)
                {
                    out.push(crate::axes::NodeEntry {
                        key: rec.key.clone(),
                        kind: rec.kind,
                        name: rec.name,
                    });
                }
                // Jump past this record's subtree to its next sibling.
                // A descendant's flat key extends its ancestor's, so the
                // subtree is exactly the run of records whose keys start
                // with this one — partitioned without materializing the
                // `subtree_upper` bound.
                let flat = rec.key.as_flat();
                if flat.is_empty() {
                    i += 1;
                } else {
                    let target = i
                        + 1
                        + records[i + 1..end]
                            .partition_point(|r| r.key.as_flat().starts_with(flat));
                    if target >= end && end == records.len() {
                        // The subtree may continue past this page: fall
                        // back to a full seek (upper bound is preserved
                        // by `seek`), allocating the bound only here.
                        let upper = rec.key.subtree_upper().expect("non-root");
                        self.rec_pos = i + 1;
                        self.seek(&upper);
                        sought = true;
                        break;
                    }
                    i = target;
                }
            }
            if visited > 0 {
                self.store.pool.note_batch(page_id, visited);
            }
            if sought {
                continue;
            }
            self.rec_pos = i;
            if i >= end {
                if end < records.len() {
                    // The upper bound falls inside this page.
                    self.done = true;
                    break;
                }
                self.page = None;
                self.page_pos += 1;
            }
        }
        Ok(out.len() - start)
    }

    /// Shared batched scan: walks whole pinned pages, appending entries
    /// for records that pass `keep`, until `max` entries were produced or
    /// the range is exhausted.
    fn batch_scan(
        &mut self,
        out: &mut Vec<crate::axes::NodeEntry>,
        max: usize,
        mut keep: impl FnMut(&NodeRecord) -> bool,
    ) -> Result<usize> {
        let start = out.len();
        while out.len() - start < max {
            if !self.position()? {
                break;
            }
            let page_id = self.store.index[self.page_pos].1;
            let page = self.page.clone().expect("positioned");
            let records = page.records();
            // Resolve the upper bound once for the whole page instead of
            // comparing keys record by record.
            let end = match &self.hi {
                Some(hi) => {
                    self.rec_pos
                        + records[self.rec_pos..]
                            .partition_point(|r| r.key.as_flat() < hi.as_slice())
                }
                None => records.len(),
            };
            let mut i = self.rec_pos;
            while i < end && out.len() - start < max {
                let rec = &records[i];
                i += 1;
                if keep(rec) {
                    out.push(crate::axes::NodeEntry {
                        key: rec.key.clone(),
                        kind: rec.kind,
                        name: rec.name,
                    });
                }
            }
            let scanned = (i - self.rec_pos) as u64;
            self.rec_pos = i;
            if scanned > 0 {
                self.store.pool.note_batch(page_id, scanned);
            }
            if i >= end {
                if end < records.len() {
                    // The upper bound falls inside this page.
                    self.done = true;
                    break;
                }
                // Page fully consumed: unpin and move on.
                self.page = None;
                self.page_pos += 1;
            }
        }
        Ok(out.len() - start)
    }

    /// Key of the record `next` would return, without consuming it.
    pub fn peek_key(&mut self) -> Result<Option<Vec<u8>>> {
        if !self.position()? {
            return Ok(None);
        }
        Ok(Some(
            self.page.as_ref().expect("positioned").records()[self.rec_pos]
                .key
                .as_flat()
                .to_vec(),
        ))
    }
}

// Cursor behavior is tested together with the loader in
// `crate::loader::tests` (a cursor needs a populated store).
