//! Forward cursor over the clustered index.
//!
//! A [`MassCursor`] iterates records in document order within a
//! [`KeyRange`], crossing page boundaries through the buffer pool. Its
//! [`MassCursor::seek`] method is the primitive behind MASS's
//! sibling-jump evaluation: a child/sibling scan leaps over whole
//! subtrees by seeking their `subtree_upper` bound instead of reading
//! through them.

use crate::error::Result;
use crate::page::Page;
use crate::record::NodeRecord;
use crate::store::MassStore;
use std::sync::Arc;
use vamana_flex::KeyRange;

/// Document-order record cursor bounded by a key range.
pub struct MassCursor<'a> {
    store: &'a MassStore,
    hi: Option<Vec<u8>>,
    /// Position in the store's sparse index.
    page_pos: usize,
    rec_pos: usize,
    page: Option<Arc<Page>>,
    /// Set by `seek`; resolved to `rec_pos` when the page is loaded.
    pending_seek: Option<Vec<u8>>,
    done: bool,
}

impl<'a> MassCursor<'a> {
    /// A cursor positioned at the first record inside `range`.
    pub fn new(store: &'a MassStore, range: KeyRange) -> Self {
        let mut c = MassCursor {
            store,
            hi: range.hi.clone(),
            page_pos: 0,
            rec_pos: 0,
            page: None,
            pending_seek: None,
            done: false,
        };
        c.seek(&range.lo);
        c
    }

    /// Repositions the cursor at the first record with key `>= flat`
    /// (which may be before or after the current position). The upper
    /// bound is unchanged.
    pub fn seek(&mut self, flat: &[u8]) {
        self.page = None;
        self.done = false;
        if self.store.index.is_empty() {
            self.done = true;
            return;
        }
        let pos = self
            .store
            .index
            .partition_point(|(first, _)| first.as_slice() <= flat);
        self.page_pos = pos.saturating_sub(1);
        self.pending_seek = Some(flat.to_vec());
    }

    /// Loads pages until the cursor rests on an in-range record.
    /// Returns `false` when the range is exhausted.
    fn position(&mut self) -> Result<bool> {
        loop {
            if self.done {
                return Ok(false);
            }
            if self.page.is_none() {
                if self.page_pos >= self.store.index.len() {
                    self.done = true;
                    return Ok(false);
                }
                let page = self.store.pool.get(self.store.index[self.page_pos].1)?;
                self.rec_pos = match self.pending_seek.take() {
                    Some(target) => match page.find(&target) {
                        Ok(i) | Err(i) => i,
                    },
                    None => 0,
                };
                self.page = Some(page);
            }
            let page = self.page.as_ref().expect("just loaded");
            if self.rec_pos >= page.len() {
                self.page = None;
                self.page_pos += 1;
                continue;
            }
            if let Some(hi) = &self.hi {
                if page.records()[self.rec_pos].key.as_flat() >= hi.as_slice() {
                    self.done = true;
                    return Ok(false);
                }
            }
            return Ok(true);
        }
    }

    /// Pulls the next record, or `None` when the range is exhausted.
    #[allow(clippy::should_implement_trait)] // fallible, so not Iterator
    pub fn next(&mut self) -> Result<Option<NodeRecord>> {
        if !self.position()? {
            return Ok(None);
        }
        let rec = self.page.as_ref().expect("positioned").records()[self.rec_pos].clone();
        self.rec_pos += 1;
        Ok(Some(rec))
    }

    /// Like [`MassCursor::next`], but returns a lightweight
    /// [`crate::axes::NodeEntry`] without cloning the record's value —
    /// the hot path for axis scans, which never look at values.
    pub fn next_entry(&mut self) -> Result<Option<crate::axes::NodeEntry>> {
        if !self.position()? {
            return Ok(None);
        }
        let rec = &self.page.as_ref().expect("positioned").records()[self.rec_pos];
        let entry = crate::axes::NodeEntry {
            key: rec.key.clone(),
            kind: rec.kind,
            name: rec.name,
        };
        self.rec_pos += 1;
        Ok(Some(entry))
    }

    /// Key of the record `next` would return, without consuming it.
    pub fn peek_key(&mut self) -> Result<Option<Vec<u8>>> {
        if !self.position()? {
            return Ok(None);
        }
        Ok(Some(
            self.page.as_ref().expect("positioned").records()[self.rec_pos]
                .key
                .as_flat()
                .to_vec(),
        ))
    }
}

// Cursor behavior is tested together with the loader in
// `crate::loader::tests` (a cursor needs a populated store).
