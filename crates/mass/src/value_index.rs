//! The value index.
//!
//! MASS indexes the full string value of every text node and attribute,
//! plus a numeric projection for values that parse as numbers. This gives
//! VAMANA two things the paper leans on:
//!
//! * `TC(value)` — the exact occurrence count of a literal, in one lookup
//!   (drives Case 5 of the OUT estimation and the `value::` rewrite), and
//! * value-based location steps: `value::'Yung Flach'` enumerates the
//!   keys of matching text/attribute nodes directly, without touching the
//!   clustered data pages.

use crate::name_index::SortedKeys;
use std::collections::BTreeMap;
use std::ops::Bound;
use vamana_flex::KeyRange;

/// Total-ordered f64 wrapper (IEEE total order) used as a BTreeMap key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Comparison operator for numeric range scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Exact-value and numeric indexes over text/attribute values.
#[derive(Debug, Default, Clone)]
pub struct ValueIndex {
    exact: BTreeMap<Box<str>, SortedKeys>,
    numeric: BTreeMap<OrdF64, SortedKeys>,
}

impl ValueIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes `value` at `flat` (bulk load: keys arrive in document
    /// order per distinct value).
    pub fn insert_ordered(&mut self, value: &str, flat: Vec<u8>) {
        self.exact
            .entry(value.into())
            .or_default()
            .push_ordered(flat.clone());
        if let Ok(n) = value.trim().parse::<f64>() {
            self.numeric
                .entry(OrdF64(n))
                .or_default()
                .push_ordered(flat);
        }
    }

    /// Indexes `value` at `flat` at an arbitrary position (update path).
    pub fn insert(&mut self, value: &str, flat: Vec<u8>) {
        self.exact
            .entry(value.into())
            .or_default()
            .insert(flat.clone());
        if let Ok(n) = value.trim().parse::<f64>() {
            self.numeric.entry(OrdF64(n)).or_default().insert(flat);
        }
    }

    /// Removes the entry for `value` at `flat`.
    pub fn remove(&mut self, value: &str, flat: &[u8]) {
        if let Some(list) = self.exact.get_mut(value) {
            list.remove(flat);
            if list.is_empty() {
                self.exact.remove(value);
            }
        }
        if let Ok(n) = value.trim().parse::<f64>() {
            if let Some(list) = self.numeric.get_mut(&OrdF64(n)) {
                list.remove(flat);
                if list.is_empty() {
                    self.numeric.remove(&OrdF64(n));
                }
            }
        }
    }

    /// `TC(value)`: exact occurrence count of a literal, database-wide.
    pub fn text_count(&self, value: &str) -> u64 {
        self.exact.get(value).map(|l| l.len() as u64).unwrap_or(0)
    }

    /// `TC(value)` within a structural range.
    pub fn text_count_in(&self, value: &str, range: &KeyRange) -> u64 {
        self.exact
            .get(value)
            .map(|l| l.count_in(range))
            .unwrap_or(0)
    }

    /// Keys of nodes whose value equals `value`, within `range`, in
    /// document order.
    pub fn keys_eq<'a>(&'a self, value: &str, range: &KeyRange) -> Vec<&'a [u8]> {
        self.exact
            .get(value)
            .map(|l| l.iter_in(range).collect())
            .unwrap_or_default()
    }

    /// Count of nodes whose *numeric* value satisfies `op bound`, within
    /// `range` (the paper's range predicates).
    pub fn numeric_count_in(&self, op: RangeOp, bound: f64, range: &KeyRange) -> u64 {
        self.numeric_lists(op, bound)
            .map(|l| l.count_in(range))
            .sum()
    }

    /// Keys whose numeric value satisfies `op bound`, within `range`,
    /// merged into document order.
    pub fn keys_numeric(&self, op: RangeOp, bound: f64, range: &KeyRange) -> Vec<&[u8]> {
        let mut out: Vec<&[u8]> = Vec::new();
        for list in self.numeric_lists(op, bound) {
            out.extend(list.iter_in(range));
        }
        out.sort_unstable();
        out
    }

    fn numeric_lists(&self, op: RangeOp, bound: f64) -> impl Iterator<Item = &SortedKeys> {
        let (lo, hi): (Bound<OrdF64>, Bound<OrdF64>) = match op {
            RangeOp::Lt => (Bound::Unbounded, Bound::Excluded(OrdF64(bound))),
            RangeOp::Le => (Bound::Unbounded, Bound::Included(OrdF64(bound))),
            RangeOp::Gt => (Bound::Excluded(OrdF64(bound)), Bound::Unbounded),
            RangeOp::Ge => (Bound::Included(OrdF64(bound)), Bound::Unbounded),
        };
        self.numeric.range((lo, hi)).map(|(_, l)| l)
    }

    /// Number of distinct indexed string values.
    pub fn distinct_values(&self) -> usize {
        self.exact.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_flex::{seq_label, FlexKey};

    fn flat(path: &[u64]) -> Vec<u8> {
        let mut k = FlexKey::root();
        for &i in path {
            k = k.child(&seq_label(i));
        }
        k.into_flat()
    }

    fn sample() -> ValueIndex {
        let mut v = ValueIndex::new();
        v.insert_ordered("Vermont", flat(&[0, 1]));
        v.insert_ordered("12", flat(&[0, 2]));
        v.insert_ordered("Vermont", flat(&[0, 3]));
        v.insert_ordered("42.5", flat(&[0, 4]));
        v.insert_ordered("7", flat(&[1, 0]));
        v
    }

    #[test]
    fn text_count_is_exact() {
        let v = sample();
        assert_eq!(v.text_count("Vermont"), 2);
        assert_eq!(v.text_count("12"), 1);
        assert_eq!(v.text_count("Texas"), 0);
    }

    #[test]
    fn text_count_in_range() {
        let v = sample();
        let doc0 = KeyRange::subtree(&FlexKey::root().child(&seq_label(0)));
        assert_eq!(v.text_count_in("Vermont", &doc0), 2);
        assert_eq!(v.text_count_in("7", &doc0), 0);
    }

    #[test]
    fn keys_eq_in_document_order() {
        let v = sample();
        let keys = v.keys_eq("Vermont", &KeyRange::all());
        assert_eq!(keys.len(), 2);
        assert!(keys[0] < keys[1]);
    }

    #[test]
    fn numeric_range_scans() {
        let v = sample();
        let all = KeyRange::all();
        assert_eq!(v.numeric_count_in(RangeOp::Lt, 10.0, &all), 1); // 7
        assert_eq!(v.numeric_count_in(RangeOp::Le, 12.0, &all), 2); // 7, 12
        assert_eq!(v.numeric_count_in(RangeOp::Gt, 12.0, &all), 1); // 42.5
        assert_eq!(v.numeric_count_in(RangeOp::Ge, 12.0, &all), 2);
        // Non-numeric values never appear in numeric scans.
        assert_eq!(v.numeric_count_in(RangeOp::Ge, f64::NEG_INFINITY, &all), 3);
    }

    #[test]
    fn keys_numeric_merged_sorted() {
        let v = sample();
        let keys = v.keys_numeric(RangeOp::Ge, 0.0, &KeyRange::all());
        assert_eq!(keys.len(), 3);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn remove_prunes_empty_lists() {
        let mut v = sample();
        v.remove("12", &flat(&[0, 2]));
        assert_eq!(v.text_count("12"), 0);
        assert_eq!(v.numeric_count_in(RangeOp::Le, 12.0, &KeyRange::all()), 1);
        // Removing one of two occurrences keeps the other.
        v.remove("Vermont", &flat(&[0, 1]));
        assert_eq!(v.text_count("Vermont"), 1);
    }

    #[test]
    fn insert_unordered_then_query() {
        let mut v = ValueIndex::new();
        v.insert("x", flat(&[5]));
        v.insert("x", flat(&[1]));
        v.insert("x", flat(&[3]));
        let keys = v.keys_eq("x", &KeyRange::all());
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn distinct_values_counts_strings() {
        assert_eq!(sample().distinct_values(), 4);
    }

    #[test]
    fn whitespace_tolerant_numeric_parse() {
        let mut v = ValueIndex::new();
        v.insert_ordered(" 19 ", flat(&[0]));
        assert_eq!(v.numeric_count_in(RangeOp::Ge, 19.0, &KeyRange::all()), 1);
    }
}
