//! The compressed page tier: store formats, varints, the per-store
//! value dictionary, and the front-coded (v2) record codec.
//!
//! Format v2 exploits two redundancies the v1 page image ignores:
//!
//! * **FLEX keys share prefixes.** Records are clustered in document
//!   order, and a descendant's key extends its ancestor's, so adjacent
//!   records on a page agree on most of their key bytes. V2 front-codes
//!   each key against its on-page predecessor: `varint(shared-prefix
//!   length) + varint(suffix length) + suffix bytes`.
//! * **Values repeat.** Tag and attribute names are already interned as
//!   [`crate::names::NameId`]s; v2 additionally interns *hot values*
//!   (short text/attribute strings that recur in a document) in a
//!   per-store [`ValueDict`] persisted in the catalog, so a repeated
//!   value costs a varint per occurrence instead of its bytes.
//!
//! Fixed-width fields shrink too: the v1 record spends 12 bytes on
//! `key_len(2) + kind(1) + name(4) + value_tag(1) + value_len(4)`; v2
//! packs kind + value tag + name presence into one meta byte and writes
//! the rest as varints. Pages self-describe their format in the header
//! magic, so a store may hold a mix (see the overflow rule in
//! `DESIGN.md`) and every page decodes without out-of-band state.

use crate::error::{MassError, Result};
use crate::names::NameId;
use crate::record::{NodeRecord, RecordKind, ValueRef};
use std::collections::HashMap;
use vamana_flex::FlexKey;

/// On-disk page format of a store. New pages are written in this format;
/// existing pages keep whatever format their header magic declares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum StoreFormat {
    /// The original uncompressed page image.
    #[default]
    V1,
    /// Front-coded keys + dictionary-coded values.
    V2,
}

impl StoreFormat {
    /// Short human-readable name (`"v1"` / `"v2"`).
    pub fn as_str(self) -> &'static str {
        match self {
            StoreFormat::V1 => "v1",
            StoreFormat::V2 => "v2",
        }
    }

    /// Reads `VAMANA_FORMAT` from the environment: `v2`/`compressed`/`2`
    /// select [`StoreFormat::V2`]; anything else (or unset) is v1.
    pub fn from_env() -> Self {
        match std::env::var("VAMANA_FORMAT").as_deref() {
            Ok("v2") | Ok("V2") | Ok("compressed") | Ok("2") => StoreFormat::V2,
            _ => StoreFormat::V1,
        }
    }
}

// ---- varints -------------------------------------------------------------

/// Bytes a LEB128 varint of `v` occupies (1..=10).
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Appends `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf`, returning `(value, bytes used)`.
pub fn read_varint(buf: &[u8]) -> Result<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(MassError::CorruptRecord("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(MassError::CorruptRecord("varint truncated".into()))
}

// ---- value dictionary ----------------------------------------------------

/// Only values this short are dictionary candidates; longer ones rarely
/// repeat and would bloat the catalog.
pub const DICT_MAX_VALUE_LEN: usize = 64;
/// A value must occur at least this often within one loaded document to
/// be admitted.
pub const DICT_MIN_FREQ: u64 = 4;
/// Hard cap on dictionary entries (ids stay comfortably in a varint).
pub const DICT_MAX_ENTRIES: usize = 1 << 16;

/// Per-store dictionary of hot text/attribute values.
///
/// Append-only with dense ids, mirroring [`crate::names::NameTable`]:
/// ids handed out are never reassigned, so a [`ValueRef::Dict`] stored in
/// a page stays valid for the life of the store. Entries are admitted
/// only during bulk loads (deterministically from the document, in
/// document order), which keeps WAL replay and replication byte-exact:
/// replaying the same loads in the same order rebuilds the same ids.
#[derive(Debug, Default, Clone)]
pub struct ValueDict {
    entries: Vec<Box<str>>,
    ids: HashMap<Box<str>, u32>,
}

impl ValueDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        ValueDict::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no values are interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Id of `value` if interned.
    pub fn lookup(&self, value: &str) -> Option<u32> {
        self.ids.get(value).copied()
    }

    /// Resolves an id to its value.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.entries.get(id as usize).map(|s| &**s)
    }

    /// Interns `value`, returning its id (existing or fresh). Returns
    /// `None` when the dictionary is full.
    pub fn intern(&mut self, value: &str) -> Option<u32> {
        if let Some(&id) = self.ids.get(value) {
            return Some(id);
        }
        if self.entries.len() >= DICT_MAX_ENTRIES {
            return None;
        }
        let id = self.entries.len() as u32;
        self.entries.push(value.into());
        self.ids.insert(value.into(), id);
        Some(id)
    }

    /// Iterates entries in id order (catalog serialization).
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|s| &**s)
    }
}

// ---- the v2 record codec -------------------------------------------------

const KIND_MASK: u8 = 0x07;
const TAG_SHIFT: u8 = 3;
const TAG_MASK: u8 = 0x03;
const HAS_NAME: u8 = 0x20;

fn kind_from_u8(b: u8) -> Result<RecordKind> {
    Ok(match b {
        0 => RecordKind::Document,
        1 => RecordKind::Element,
        2 => RecordKind::Attribute,
        3 => RecordKind::Text,
        4 => RecordKind::Comment,
        5 => RecordKind::Pi,
        other => return Err(MassError::CorruptRecord(format!("bad kind bits {other}"))),
    })
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Encoded size of `rec` front-coded against `prev` (the flat key of the
/// record's on-page predecessor, `None` for the first record).
pub fn v2_record_len(rec: &NodeRecord, prev: Option<&[u8]>) -> usize {
    let flat = rec.key.as_flat();
    let lcp = prev.map_or(0, |p| common_prefix(p, flat));
    let suffix = flat.len() - lcp;
    let name = rec.name.map_or(0, |NameId(raw)| varint_len(u64::from(raw)));
    let value = match &rec.value {
        ValueRef::None => 0,
        ValueRef::Inline(s) => varint_len(s.len() as u64) + s.len(),
        ValueRef::Overflow { offset, len } => varint_len(*offset) + varint_len(u64::from(*len)),
        ValueRef::Dict(id) => varint_len(u64::from(*id)),
    };
    varint_len(lcp as u64) + varint_len(suffix as u64) + suffix + 1 + name + value
}

/// Appends the v2 encoding of `rec` (front-coded against `prev`) to `out`.
pub fn v2_encode_record(rec: &NodeRecord, prev: Option<&[u8]>, out: &mut Vec<u8>) {
    let flat = rec.key.as_flat();
    let lcp = prev.map_or(0, |p| common_prefix(p, flat));
    put_varint(out, lcp as u64);
    put_varint(out, (flat.len() - lcp) as u64);
    out.extend_from_slice(&flat[lcp..]);
    let tag = match &rec.value {
        ValueRef::None => 0u8,
        ValueRef::Inline(_) => 1,
        ValueRef::Overflow { .. } => 2,
        ValueRef::Dict(_) => 3,
    };
    let mut meta = (rec.kind as u8) | (tag << TAG_SHIFT);
    if rec.name.is_some() {
        meta |= HAS_NAME;
    }
    out.push(meta);
    if let Some(NameId(raw)) = rec.name {
        put_varint(out, u64::from(raw));
    }
    match &rec.value {
        ValueRef::None => {}
        ValueRef::Inline(s) => {
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        ValueRef::Overflow { offset, len } => {
            put_varint(out, *offset);
            put_varint(out, u64::from(*len));
        }
        ValueRef::Dict(id) => put_varint(out, u64::from(*id)),
    }
}

/// Decodes one v2 record from `buf` given the predecessor's flat key,
/// returning the record and bytes consumed.
pub fn v2_decode_record(buf: &[u8], prev: Option<&[u8]>) -> Result<(NodeRecord, usize)> {
    let truncated = || MassError::CorruptRecord("v2 record truncated".into());
    let (lcp, n) = read_varint(buf)?;
    let mut at = n;
    let (suffix_len, n) = read_varint(&buf[at..])?;
    at += n;
    let (lcp, suffix_len) = (lcp as usize, suffix_len as usize);
    let prev = prev.unwrap_or(&[]);
    if lcp > prev.len() {
        return Err(MassError::CorruptRecord(
            "v2 shared prefix exceeds predecessor key".into(),
        ));
    }
    if buf.len() < at + suffix_len {
        return Err(truncated());
    }
    let mut flat = Vec::with_capacity(lcp + suffix_len);
    flat.extend_from_slice(&prev[..lcp]);
    flat.extend_from_slice(&buf[at..at + suffix_len]);
    at += suffix_len;
    if !FlexKey::is_valid_flat(&flat) {
        return Err(MassError::CorruptRecord("malformed front-coded key".into()));
    }
    let key = FlexKey::from_flat(flat);
    let meta = *buf.get(at).ok_or_else(truncated)?;
    at += 1;
    let kind = kind_from_u8(meta & KIND_MASK)?;
    let name = if meta & HAS_NAME != 0 {
        let (raw, n) = read_varint(&buf[at..])?;
        at += n;
        if raw >= u64::from(NameId::NONE_RAW) {
            return Err(MassError::CorruptRecord("name id out of range".into()));
        }
        Some(NameId(raw as u32))
    } else {
        None
    };
    let value = match (meta >> TAG_SHIFT) & TAG_MASK {
        0 => ValueRef::None,
        1 => {
            let (len, n) = read_varint(&buf[at..])?;
            at += n;
            let len = len as usize;
            if buf.len() < at + len {
                return Err(truncated());
            }
            let s = std::str::from_utf8(&buf[at..at + len])
                .map_err(|_| MassError::CorruptRecord("non-UTF8 value".into()))?;
            at += len;
            ValueRef::Inline(s.into())
        }
        2 => {
            let (offset, n) = read_varint(&buf[at..])?;
            at += n;
            let (len, n) = read_varint(&buf[at..])?;
            at += n;
            if len > u64::from(u32::MAX) {
                return Err(MassError::CorruptRecord("overflow length too large".into()));
            }
            ValueRef::Overflow {
                offset,
                len: len as u32,
            }
        }
        3 => {
            let (id, n) = read_varint(&buf[at..])?;
            at += n;
            if id > u64::from(u32::MAX) {
                return Err(MassError::CorruptRecord("dict id too large".into()));
            }
            ValueRef::Dict(id as u32)
        }
        _ => unreachable!("2-bit tag"),
    };
    Ok((
        NodeRecord {
            key,
            kind,
            name,
            value,
        },
        at,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_flex::seq_label;

    fn key(path: &[u64]) -> FlexKey {
        let mut k = FlexKey::root();
        for &i in path {
            k = k.child(&seq_label(i));
        }
        k
    }

    #[test]
    fn varint_round_trips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            assert_eq!(out.len(), varint_len(v), "len of {v}");
            let (back, used) = read_varint(&out).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, out.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut out = Vec::new();
        put_varint(&mut out, u64::MAX);
        assert!(read_varint(&out[..out.len() - 1]).is_err());
        assert!(read_varint(&[0x80; 11]).is_err());
        assert!(read_varint(&[]).is_err());
    }

    #[test]
    fn dict_interns_and_resolves() {
        let mut d = ValueDict::new();
        let a = d.intern("Vermont").unwrap();
        let b = d.intern("creditcard").unwrap();
        assert_eq!(d.intern("Vermont"), Some(a));
        assert_ne!(a, b);
        assert_eq!(d.resolve(a), Some("Vermont"));
        assert_eq!(d.lookup("creditcard"), Some(b));
        assert_eq!(d.lookup("absent"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn v2_record_round_trips_with_and_without_prev() {
        let recs = [
            NodeRecord::element(key(&[0, 3, 7]), NameId(5)),
            NodeRecord::text(key(&[0, 3, 7, 1]), "hello world"),
            NodeRecord::attribute(key(&[0, 3, 8]), NameId(300), "v"),
            NodeRecord {
                key: key(&[0, 4]),
                kind: RecordKind::Text,
                name: None,
                value: ValueRef::Dict(42),
            },
            NodeRecord {
                key: key(&[1]),
                kind: RecordKind::Text,
                name: None,
                value: ValueRef::Overflow {
                    offset: 1 << 40,
                    len: 9999,
                },
            },
        ];
        let mut prev: Option<Vec<u8>> = None;
        let mut buf = Vec::new();
        let mut lens = Vec::new();
        for r in &recs {
            let before = buf.len();
            v2_encode_record(r, prev.as_deref(), &mut buf);
            let used = buf.len() - before;
            assert_eq!(used, v2_record_len(r, prev.as_deref()));
            lens.push(used);
            prev = Some(r.key.as_flat().to_vec());
        }
        let mut at = 0;
        let mut prev: Option<Vec<u8>> = None;
        for (r, len) in recs.iter().zip(&lens) {
            let (back, used) = v2_decode_record(&buf[at..], prev.as_deref()).unwrap();
            assert_eq!(&back, r);
            assert_eq!(used, *len);
            at += used;
            prev = Some(back.key.as_flat().to_vec());
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn front_coding_shrinks_deep_siblings() {
        // Adjacent deep siblings share almost their whole key: the v2
        // encoding must be far smaller than the v1 one.
        let a = NodeRecord::element(key(&[0, 1, 2, 3, 4, 5, 6, 7]), NameId(3));
        let b = NodeRecord::element(key(&[0, 1, 2, 3, 4, 5, 6, 8]), NameId(3));
        let v2 = v2_record_len(&b, Some(a.key.as_flat()));
        assert!(
            v2 * 2 < b.encoded_len(),
            "v2 {} vs v1 {}",
            v2,
            b.encoded_len()
        );
    }

    #[test]
    fn v2_decode_rejects_corruption() {
        let rec = NodeRecord::text(key(&[0, 1]), "abc");
        let mut buf = Vec::new();
        v2_encode_record(&rec, None, &mut buf);
        for cut in 0..buf.len() {
            assert!(v2_decode_record(&buf[..cut], None).is_err(), "cut={cut}");
        }
        // A shared-prefix claim with no predecessor is corruption.
        let mut bad = Vec::new();
        v2_encode_record(&rec, Some(rec.key.as_flat()), &mut bad);
        assert!(v2_decode_record(&bad, None).is_err());
    }
}
