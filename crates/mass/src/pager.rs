//! Page storage backends.
//!
//! A [`PageStore`] persists fixed-size page images plus an append-only
//! *blob heap* for overflow values. Two backends are provided: an
//! in-memory store for tests and benchmarks, and a file-backed store for
//! documents larger than RAM (the scalability story of the paper).

use crate::error::Result;
use crate::page::PAGE_SIZE;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Abstract page + blob storage.
pub trait PageStore: Send {
    /// Reads the image of page `id`.
    fn read_page(&mut self, id: u32) -> Result<Vec<u8>>;
    /// Writes the image of page `id` (must be `PAGE_SIZE` bytes).
    fn write_page(&mut self, id: u32, image: &[u8]) -> Result<()>;
    /// Allocates a fresh page id.
    fn allocate(&mut self) -> Result<u32>;
    /// Number of allocated pages.
    fn page_count(&self) -> u32;
    /// Appends `bytes` to the blob heap, returning their offset.
    fn append_blob(&mut self, bytes: &[u8]) -> Result<u64>;
    /// Reads `len` blob bytes at `offset`.
    fn read_blob(&mut self, offset: u64, len: u32) -> Result<Vec<u8>>;
    /// Replaces the durable catalog image (name table, document registry).
    fn write_catalog(&mut self, bytes: &[u8]) -> Result<()>;
    /// Reads the catalog image, empty if never written.
    fn read_catalog(&mut self) -> Result<Vec<u8>>;
    /// Flushes all previously written pages/blobs to durable storage.
    /// No-op for stores without a durability boundary.
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Heap-backed page store for tests, benchmarks and small documents.
#[derive(Debug, Default)]
pub struct MemoryPager {
    pages: Vec<Vec<u8>>,
    blobs: Vec<u8>,
    catalog: Vec<u8>,
}

impl MemoryPager {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemoryPager {
    fn read_page(&mut self, id: u32) -> Result<Vec<u8>> {
        self.pages
            .get(id as usize)
            .cloned()
            .ok_or(crate::error::MassError::CorruptPage {
                page: id,
                reason: "unallocated".into(),
            })
    }

    fn write_page(&mut self, id: u32, image: &[u8]) -> Result<()> {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        let slot = self
            .pages
            .get_mut(id as usize)
            .ok_or(crate::error::MassError::CorruptPage {
                page: id,
                reason: "unallocated".into(),
            })?;
        slot.clear();
        slot.extend_from_slice(image);
        Ok(())
    }

    fn allocate(&mut self) -> Result<u32> {
        let id = self.pages.len() as u32;
        self.pages.push(vec![0u8; PAGE_SIZE]);
        Ok(id)
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn append_blob(&mut self, bytes: &[u8]) -> Result<u64> {
        let offset = self.blobs.len() as u64;
        self.blobs.extend_from_slice(bytes);
        Ok(offset)
    }

    fn read_blob(&mut self, offset: u64, len: u32) -> Result<Vec<u8>> {
        let start = offset as usize;
        let end = start + len as usize;
        if end > self.blobs.len() {
            return Err(crate::error::MassError::CorruptRecord(
                "blob out of range".into(),
            ));
        }
        Ok(self.blobs[start..end].to_vec())
    }

    fn write_catalog(&mut self, bytes: &[u8]) -> Result<()> {
        self.catalog = bytes.to_vec();
        Ok(())
    }

    fn read_catalog(&mut self) -> Result<Vec<u8>> {
        Ok(self.catalog.clone())
    }
}

/// File-backed page store: pages in `<path>`, blobs in `<path>.blob`.
#[derive(Debug)]
pub struct FilePager {
    pages: File,
    blobs: File,
    catalog_path: std::path::PathBuf,
    page_count: u32,
    blob_len: u64,
}

impl FilePager {
    /// Creates (truncating) a store at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let pages = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        let blob_path = Self::blob_path(path.as_ref());
        let blobs = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(blob_path)?;
        let catalog_path = Self::catalog_path(path.as_ref());
        std::fs::write(&catalog_path, [])?;
        Ok(FilePager {
            pages,
            blobs,
            catalog_path,
            page_count: 0,
            blob_len: 0,
        })
    }

    /// Opens an existing store at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let pages = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        let blobs = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(Self::blob_path(path.as_ref()))?;
        let page_bytes = pages.metadata()?.len();
        let blob_len = blobs.metadata()?.len();
        Ok(FilePager {
            pages,
            blobs,
            catalog_path: Self::catalog_path(path.as_ref()),
            page_count: (page_bytes / PAGE_SIZE as u64) as u32,
            blob_len,
        })
    }

    fn blob_path(path: &Path) -> std::path::PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".blob");
        std::path::PathBuf::from(p)
    }

    fn catalog_path(path: &Path) -> std::path::PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".cat");
        std::path::PathBuf::from(p)
    }

    /// Path of the write-ahead log that accompanies a durable store at
    /// `path` (same suffix convention as `.blob`/`.cat`).
    pub fn wal_path(path: &Path) -> std::path::PathBuf {
        let mut p = path.as_os_str().to_owned();
        p.push(".wal");
        std::path::PathBuf::from(p)
    }
}

impl PageStore for FilePager {
    fn read_page(&mut self, id: u32) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.pages
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.pages.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn write_page(&mut self, id: u32, image: &[u8]) -> Result<()> {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        self.pages
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.pages.write_all(image)?;
        Ok(())
    }

    fn allocate(&mut self) -> Result<u32> {
        let id = self.page_count;
        self.page_count += 1;
        // Extend the file eagerly so reads of fresh pages succeed.
        self.pages
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.pages.write_all(&[0u8; PAGE_SIZE])?;
        Ok(id)
    }

    fn page_count(&self) -> u32 {
        self.page_count
    }

    fn append_blob(&mut self, bytes: &[u8]) -> Result<u64> {
        let offset = self.blob_len;
        self.blobs.seek(SeekFrom::Start(offset))?;
        self.blobs.write_all(bytes)?;
        self.blob_len += bytes.len() as u64;
        Ok(offset)
    }

    fn read_blob(&mut self, offset: u64, len: u32) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        self.blobs.seek(SeekFrom::Start(offset))?;
        self.blobs.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn write_catalog(&mut self, bytes: &[u8]) -> Result<()> {
        // Atomic-enough for a single writer: write a temp file and rename.
        let tmp = self.catalog_path.with_extension("cat.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &self.catalog_path)?;
        Ok(())
    }

    fn read_catalog(&mut self) -> Result<Vec<u8>> {
        match std::fs::read(&self.catalog_path) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    fn sync(&mut self) -> Result<()> {
        self.pages.sync_all()?;
        self.blobs.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn PageStore) {
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(store.page_count(), 2);

        let mut img = vec![7u8; PAGE_SIZE];
        img[0] = 42;
        store.write_page(b, &img).unwrap();
        assert_eq!(store.read_page(b).unwrap()[0], 42);
        // Page `a` still zeroed.
        assert_eq!(store.read_page(a).unwrap()[0], 0);

        let off1 = store.append_blob(b"hello").unwrap();
        let off2 = store.append_blob(b"world!").unwrap();
        assert_eq!(store.read_blob(off1, 5).unwrap(), b"hello");
        assert_eq!(store.read_blob(off2, 6).unwrap(), b"world!");
    }

    #[test]
    fn memory_pager_basics() {
        exercise(&mut MemoryPager::new());
    }

    #[test]
    fn memory_pager_rejects_unallocated() {
        let mut p = MemoryPager::new();
        assert!(p.read_page(0).is_err());
        assert!(p.write_page(0, &[0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn file_pager_basics() {
        let dir = std::env::temp_dir().join(format!("vamana-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.mass");
        exercise(&mut FilePager::create(&path).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_pager_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("vamana-pager-reopen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.mass");
        {
            let mut p = FilePager::create(&path).unwrap();
            let id = p.allocate().unwrap();
            let mut img = vec![0u8; PAGE_SIZE];
            img[100] = 9;
            p.write_page(id, &img).unwrap();
            p.append_blob(b"persisted").unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.page_count(), 1);
            assert_eq!(p.read_page(0).unwrap()[100], 9);
            assert_eq!(p.read_blob(0, 9).unwrap(), b"persisted");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
