//! [`MassStore`]: the clustered, multi-document MASS index.
//!
//! Records of every loaded document live in FLEX-key order across
//! fixed-size pages; an in-memory sparse index maps each page's first key
//! to its page id. Name and value indexes hang off the store and answer
//! the counting queries that drive VAMANA's cost model.
//!
//! Each document `i` is rooted at a *document record* with key
//! `[seq_label(i)]` (kind [`RecordKind::Document`]); the whole database is
//! the subtree of the empty key, so "cost over the entire database, one
//! document, or a specific point" (paper §I.A) are all the same range
//! query with different bounds.

use crate::buffer::BufferPool;
use crate::compress::{StoreFormat, ValueDict};
use crate::error::{MassError, Result};
use crate::name_index::NameIndex;
use crate::names::{NameId, NameTable};
use crate::page::Page;
use crate::pager::{FilePager, MemoryPager, PageStore};
use crate::record::{NodeRecord, RecordKind, ValueRef};
use crate::stats::StoreStats;
use crate::value_index::{RangeOp, ValueIndex};
use crate::wal::{FileWalBackend, FsyncPolicy, Wal, WalBackend, WalRecord, WalStats};
use std::path::Path;
use vamana_flex::{attr_label, label_between, seq_label, FlexKey, KeyRange};

/// Values longer than this go to the overflow blob heap.
pub const INLINE_VALUE_MAX: usize = 1024;

/// Identifier of a loaded document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DocId(pub u32);

/// Registry entry for one document.
#[derive(Debug, Clone)]
pub struct DocInfo {
    /// Caller-supplied document name.
    pub name: Box<str>,
    /// Key of the document record (the XPath document node).
    pub doc_key: FlexKey,
}

/// The MASS storage structure.
pub struct MassStore {
    pub(crate) pool: BufferPool,
    /// Sparse index: (first flat key on page, page id), key-ordered.
    pub(crate) index: Vec<(Vec<u8>, u32)>,
    pub(crate) names: NameTable,
    pub(crate) name_index: NameIndex,
    pub(crate) value_index: ValueIndex,
    pub(crate) docs: Vec<DocInfo>,
    pub(crate) tuples: u64,
    /// Page ids emptied by deletes, reused by later inserts.
    pub(crate) free_pages: Vec<u32>,
    /// Bumped on every mutation (loads, inserts, deletes). Cached
    /// artifacts derived from store contents — compiled plans, cost
    /// estimates — key on this to detect staleness.
    pub(crate) generation: u64,
    /// Per-document mutation counters, parallel to `docs`. A plan cached
    /// for one document stays valid while *other* documents change.
    pub(crate) doc_gens: Vec<u64>,
    /// Write-ahead log for durable stores; `None` = volatile store.
    pub(crate) wal: Option<Wal>,
    /// Checkpoint LSN read back from the catalog during recovery; floors
    /// LSN assignment when the log header itself was lost.
    pub(crate) checkpoint_lsn_floor: u64,
    /// Replication ring: committed frames retained for follower catch-up,
    /// independent of checkpoint truncation. `None` until
    /// [`MassStore::attach_replication`].
    pub(crate) repl: Option<crate::repl::ReplicationLog>,
    /// Format new pages are written in (existing pages keep theirs).
    pub(crate) format: StoreFormat,
    /// Per-store dictionary of hot values ([`ValueRef::Dict`] targets).
    pub(crate) dict: ValueDict,
    /// On-disk format of each live data page (tracked at write/decode
    /// time, so stats never have to touch the pages).
    pub(crate) page_formats: std::collections::HashMap<u32, StoreFormat>,
    /// Sum of the v1 encodings of every stored record — the uncompressed
    /// footprint the compression ratio is measured against.
    pub(crate) logical_bytes: u64,
}

impl std::fmt::Debug for MassStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MassStore")
            .field("pages", &self.index.len())
            .field("tuples", &self.tuples)
            .field("documents", &self.docs.len())
            .finish_non_exhaustive()
    }
}

impl MassStore {
    /// An empty in-memory store with the default buffer-pool size.
    pub fn open_memory() -> Self {
        Self::with_pager(Box::new(MemoryPager::new()), BufferPool::DEFAULT_CAPACITY)
    }

    /// An empty in-memory store with `capacity` cached pages.
    pub fn open_memory_with_capacity(capacity: usize) -> Self {
        Self::with_pager(Box::new(MemoryPager::new()), capacity)
    }

    /// Creates a new file-backed store at `path` (truncates existing).
    pub fn create_file<P: AsRef<Path>>(path: P, capacity: usize) -> Result<Self> {
        Ok(Self::with_pager(
            Box::new(FilePager::create(path)?),
            capacity,
        ))
    }

    /// Wraps an arbitrary pager.
    pub fn with_pager(pager: Box<dyn PageStore>, capacity: usize) -> Self {
        MassStore {
            pool: BufferPool::new(pager, capacity),
            index: Vec::new(),
            names: NameTable::new(),
            name_index: NameIndex::new(),
            value_index: ValueIndex::new(),
            docs: Vec::new(),
            tuples: 0,
            free_pages: Vec::new(),
            generation: 0,
            doc_gens: Vec::new(),
            wal: None,
            checkpoint_lsn_floor: 0,
            repl: None,
            format: StoreFormat::V1,
            dict: ValueDict::new(),
            page_formats: std::collections::HashMap::new(),
            logical_bytes: 0,
        }
    }

    /// An empty in-memory store writing compressed (v2) pages.
    pub fn open_memory_v2() -> Self {
        let mut s = Self::open_memory();
        s.format = StoreFormat::V2;
        s
    }

    /// Format new pages are written in.
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    /// Selects the page format for this store. Must be called before any
    /// data is loaded: existing pages keep the format they were written
    /// in, and flipping mid-life would make the dictionary admission
    /// non-deterministic under WAL replay.
    pub fn set_format(&mut self, format: StoreFormat) -> Result<()> {
        if self.tuples != 0 || !self.docs.is_empty() {
            return Err(MassError::InvalidUpdate(
                "store format must be chosen before loading data".into(),
            ));
        }
        self.format = format;
        // Persist the choice right away on durable stores: without this a
        // crash before the first post-load checkpoint would reopen the
        // store with the catalog's (default) format.
        if self.wal.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// The value dictionary (read-only).
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// Creates a new durable store at `path` (truncates existing): a
    /// file-backed pager plus a write-ahead log at `<path>.wal`. Every
    /// update commits to the log before touching pages, so the store
    /// reopens to exactly the committed state after any crash.
    pub fn create_durable<P: AsRef<Path>>(
        path: P,
        capacity: usize,
        policy: FsyncPolicy,
    ) -> Result<Self> {
        let wal_path = FilePager::wal_path(path.as_ref());
        let pager = FilePager::create(path)?;
        let backend = FileWalBackend::create(&wal_path)?;
        Self::create_with_wal(Box::new(pager), capacity, Box::new(backend), policy)
    }

    /// Reopens a durable store created with [`MassStore::create_durable`]:
    /// rebuilds the in-memory indexes from the catalog and pages, then
    /// replays the log's committed suffix (discarding any torn tail).
    pub fn open_durable<P: AsRef<Path>>(
        path: P,
        capacity: usize,
        policy: FsyncPolicy,
    ) -> Result<Self> {
        let wal_path = FilePager::wal_path(path.as_ref());
        let pager = FilePager::open(path)?;
        let backend = FileWalBackend::open(&wal_path)?;
        Self::open_with_wal(Box::new(pager), capacity, Box::new(backend), policy)
    }

    /// [`MassStore::create_durable`] over arbitrary backends (tests,
    /// fault injection).
    pub fn create_with_wal(
        pager: Box<dyn PageStore>,
        capacity: usize,
        backend: Box<dyn WalBackend>,
        policy: FsyncPolicy,
    ) -> Result<Self> {
        let mut store = Self::with_pager(pager, capacity);
        store.wal = Some(Wal::create(backend, policy)?);
        // A durable empty catalog, so a crash before the first load still
        // reopens cleanly.
        store.checkpoint()?;
        Ok(store)
    }

    /// [`MassStore::open_durable`] over arbitrary backends (tests, fault
    /// injection).
    pub fn open_with_wal(
        pager: Box<dyn PageStore>,
        capacity: usize,
        backend: Box<dyn WalBackend>,
        policy: FsyncPolicy,
    ) -> Result<Self> {
        let mut store = Self::with_pager(pager, capacity);
        store.recover()?;
        let (wal, records) = Wal::open(backend, policy, store.checkpoint_lsn_floor)?;
        store.wal = Some(wal);
        store.replay_wal(records)?;
        Ok(store)
    }

    /// Applies the committed records handed back by [`Wal::open`]. Replay
    /// is idempotent: names are re-interned in LSN order (reproducing the
    /// exact id sequence on top of the catalog), inserts whose key
    /// already survived in the page file are skipped, deletes of absent
    /// subtrees are no-ops.
    fn replay_wal(&mut self, records: Vec<(u64, WalRecord)>) -> Result<()> {
        let mut last = 0u64;
        let mut n = 0u64;
        for (lsn, rec) in &records {
            self.apply_wal_record(rec, true)?;
            last = *lsn;
            n += 1;
        }
        if let Some(w) = self.wal.as_mut() {
            w.note_replayed(last, n);
        }
        Ok(())
    }

    /// True when updates are logged to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Write-ahead-log counters; all-zero for volatile stores.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.as_ref().map(Wal::stats).unwrap_or_default()
    }

    /// Mutation counter: changes whenever store contents change, so
    /// callers can cheaply validate cached plans or statistics.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub(crate) fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Mutation counter for one document. Cached plans key on
    /// `(doc, doc_generation)` so updates to one document invalidate only
    /// that document's plans.
    pub fn doc_generation(&self, doc: DocId) -> u64 {
        self.doc_gens.get(doc.0 as usize).copied().unwrap_or(0)
    }

    /// Bumps the generation of the document containing `key`.
    pub(crate) fn bump_doc(&mut self, key: &FlexKey) {
        if let Some(doc) = self.document_of(key) {
            if let Some(g) = self.doc_gens.get_mut(doc.0 as usize) {
                *g += 1;
            }
        }
    }

    // ---- names ---------------------------------------------------------

    /// The name table.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Interns a name (update/load path).
    pub fn intern(&mut self, name: &str) -> NameId {
        self.names.intern(name)
    }

    /// Id for `name` if it occurs anywhere in the store.
    pub fn name_id(&self, name: &str) -> Option<NameId> {
        self.names.lookup(name)
    }

    // ---- documents ------------------------------------------------------

    /// Loaded documents.
    pub fn documents(&self) -> &[DocInfo] {
        &self.docs
    }

    /// Document info by id.
    pub fn document(&self, id: DocId) -> Option<&DocInfo> {
        self.docs.get(id.0 as usize)
    }

    /// Looks a document up by name.
    pub fn document_by_name(&self, name: &str) -> Option<(DocId, &DocInfo)> {
        self.docs
            .iter()
            .enumerate()
            .find(|(_, d)| &*d.name == name)
            .map(|(i, d)| (DocId(i as u32), d))
    }

    /// The document that contains `key` (by its first label).
    pub fn document_of(&self, key: &FlexKey) -> Option<DocId> {
        let first = key.labels().next()?;
        let doc_key = FlexKey::root().child(first);
        self.docs
            .iter()
            .position(|d| d.doc_key == doc_key)
            .map(|i| DocId(i as u32))
    }

    // ---- point access ---------------------------------------------------

    /// Position in the sparse index of the page that could hold `flat`.
    pub(crate) fn page_pos_for(&self, flat: &[u8]) -> Option<usize> {
        if self.index.is_empty() {
            return None;
        }
        let pos = self
            .index
            .partition_point(|(first, _)| first.as_slice() <= flat);
        if pos == 0 {
            None // before the first page's first key
        } else {
            Some(pos - 1)
        }
    }

    /// Fetches the record at `key`, if present.
    pub fn get(&self, key: &FlexKey) -> Result<Option<NodeRecord>> {
        let flat = key.as_flat();
        let Some(pos) = self.page_pos_for(flat) else {
            // Could still be on page 0 if it starts exactly at `flat`.
            return Ok(None);
        };
        let page = self.pool.get(self.index[pos].1)?;
        match page.find(flat) {
            Ok(i) => Ok(Some(page.records()[i].clone())),
            Err(_) => Ok(None),
        }
    }

    /// True if `key` is stored.
    pub fn contains(&self, key: &FlexKey) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Point lookup returning a lightweight entry (key/kind/name) without
    /// cloning the record's value — the hot path for parent/ancestor
    /// navigation, which never needs values.
    pub fn get_entry(&self, key: &FlexKey) -> Result<Option<crate::axes::NodeEntry>> {
        let flat = key.as_flat();
        let Some(pos) = self.page_pos_for(flat) else {
            return Ok(None);
        };
        let page = self.pool.get(self.index[pos].1)?;
        match page.find(flat) {
            Ok(i) => {
                let rec = &page.records()[i];
                Ok(Some(crate::axes::NodeEntry {
                    key: rec.key.clone(),
                    kind: rec.kind,
                    name: rec.name,
                }))
            }
            Err(_) => Ok(None),
        }
    }

    /// Resolves a record's value, following overflow references.
    pub fn resolve_value(&self, rec: &NodeRecord) -> Result<Option<String>> {
        match &rec.value {
            ValueRef::None => Ok(None),
            ValueRef::Inline(s) => Ok(Some(s.to_string())),
            ValueRef::Overflow { offset, len } => {
                let bytes = self.pool.read_blob(*offset, *len)?;
                String::from_utf8(bytes)
                    .map(Some)
                    .map_err(|_| MassError::CorruptRecord("non-UTF8 overflow value".into()))
            }
            ValueRef::Dict(id) => match self.dict.resolve(*id) {
                Some(s) => Ok(Some(s.to_string())),
                None => Err(MassError::CorruptRecord(format!("dangling dict id {id}"))),
            },
        }
    }

    /// XPath string-value of the node at `key`: direct value for leaves,
    /// concatenated descendant text for elements/documents.
    pub fn string_value(&self, key: &FlexKey) -> Result<String> {
        let Some(rec) = self.get(key)? else {
            return Ok(String::new());
        };
        match rec.kind {
            RecordKind::Element | RecordKind::Document => {
                let mut out = String::new();
                let mut cur = crate::cursor::MassCursor::new(self, KeyRange::descendants(key));
                while let Some(r) = cur.next()? {
                    if r.kind == RecordKind::Text {
                        if let Some(v) = self.resolve_value(&r)? {
                            out.push_str(&v);
                        }
                    }
                }
                Ok(out)
            }
            _ => Ok(self.resolve_value(&rec)?.unwrap_or_default()),
        }
    }

    // ---- counting (the cost-model API) -----------------------------------

    /// Count of elements named `name` inside `range` — index-only.
    pub fn count_elements_in(&self, name: NameId, range: &KeyRange) -> u64 {
        self.name_index.elements(name).count_in(range)
    }

    /// Database-wide element count for `name`.
    pub fn count_elements(&self, name: NameId) -> u64 {
        self.count_elements_in(name, &KeyRange::all())
    }

    /// Count of attributes named `name` inside `range`.
    pub fn count_attributes_in(&self, name: NameId, range: &KeyRange) -> u64 {
        self.name_index.attributes(name).count_in(range)
    }

    /// Count of all elements (any name) inside `range`.
    pub fn count_all_elements_in(&self, range: &KeyRange) -> u64 {
        self.name_index.all_elements().count_in(range)
    }

    /// Count of text nodes inside `range`.
    pub fn count_text_in(&self, range: &KeyRange) -> u64 {
        self.name_index.text().count_in(range)
    }

    /// Count of comment nodes inside `range`.
    pub fn count_comments_in(&self, range: &KeyRange) -> u64 {
        self.name_index.comments().count_in(range)
    }

    /// Count of processing instructions inside `range`.
    pub fn count_pis_in(&self, range: &KeyRange) -> u64 {
        self.name_index.pis().count_in(range)
    }

    /// `TC(value)`: exact occurrences of `value` database-wide.
    pub fn text_count(&self, value: &str) -> u64 {
        self.value_index.text_count(value)
    }

    /// `TC(value)` within `range`.
    pub fn text_count_in(&self, value: &str, range: &KeyRange) -> u64 {
        self.value_index.text_count_in(value, range)
    }

    /// Count of nodes whose numeric value satisfies `op bound` in `range`.
    pub fn numeric_count_in(&self, op: RangeOp, bound: f64, range: &KeyRange) -> u64 {
        self.value_index.numeric_count_in(op, bound, range)
    }

    // ---- morsel partitioning (parallel scans) -----------------------------

    /// Splits `range` into at most `n` disjoint sub-ranges whose
    /// concatenation covers it exactly, with every interior boundary on
    /// a *page* boundary (the first key of some page in the sparse
    /// index). A cursor over one sub-range therefore never pins a page
    /// that a sibling sub-range's cursor reads past its first record —
    /// each morsel is a disjoint page run, so parallel workers don't
    /// fight over pins and the per-page batch amortization of
    /// [`crate::cursor::MassCursor::next_batch`] is preserved.
    ///
    /// The split starts from [`KeyRange::split_even`]'s key-space
    /// proposal with each cut snapped up to the next page-first key, but
    /// key-space interpolation is oblivious to the data distribution
    /// (flat keys cluster at the low end of the byte space), so when the
    /// snapped cuts leave any morsel with more than ~2x its fair share
    /// of pages — or the range is unbounded above — the proposal is
    /// replaced by equi-depth page runs taken directly from the sparse
    /// index, which *is* the distribution.
    ///
    /// Returns `vec![range]` when there is nothing to split (`n <= 1`,
    /// empty range/store, or the range spans a single page). Boundaries
    /// are derived from the live index: callers holding a consistent
    /// read view (same [`MassStore::generation`]) get morsels that
    /// exactly tile the serial scan.
    pub fn partition_range(&self, range: &KeyRange, n: usize) -> Vec<KeyRange> {
        if n <= 1 || range.is_empty() || self.index.is_empty() {
            return vec![range.clone()];
        }
        // Pages overlapping the range: positions [start, end) in the
        // sparse index.
        let start = self.page_pos_for(&range.lo).unwrap_or(0);
        let end = match &range.hi {
            Some(hi) => self
                .index
                .partition_point(|(first, _)| first.as_slice() < hi.as_slice()),
            None => self.index.len(),
        };
        if end <= start + 1 {
            return vec![range.clone()];
        }
        let pages = end - start;
        let m = n.min(pages);
        // Key-space proposal, each cut snapped up to the first key of
        // the nearest following page.
        let mut cut_pages: Vec<usize> = range
            .split_even(m)
            .iter()
            .skip(1)
            .map(|r| {
                self.index
                    .partition_point(|(first, _)| first.as_slice() < r.lo.as_slice())
            })
            .filter(|&p| p > start && p < end)
            .collect();
        cut_pages.dedup();
        let fair = pages.div_ceil(m);
        let balanced = cut_pages.len() + 1 == m && {
            let mut prev = start;
            let mut max_run = 0;
            for &p in cut_pages.iter().chain(std::iter::once(&end)) {
                max_run = max_run.max(p - prev);
                prev = p;
            }
            max_run <= fair * 2
        };
        if !balanced {
            // Equi-depth page runs: boundaries straight off the index.
            cut_pages = (1..m).map(|k| start + k * pages / m).collect();
            cut_pages.dedup();
        }
        let mut parts = Vec::with_capacity(m);
        let mut lo = range.lo.clone();
        for p in cut_pages {
            let cut = &self.index[p].0;
            if cut.as_slice() <= lo.as_slice() {
                continue;
            }
            if let Some(hi) = &range.hi {
                if cut.as_slice() >= hi.as_slice() {
                    continue;
                }
            }
            parts.push(KeyRange {
                lo: std::mem::replace(&mut lo, cut.clone()),
                hi: Some(cut.clone()),
            });
        }
        parts.push(KeyRange {
            lo,
            hi: range.hi.clone(),
        });
        parts
    }

    /// The name index (read-only).
    pub fn name_index(&self) -> &NameIndex {
        &self.name_index
    }

    /// The value index (read-only).
    pub fn value_index(&self) -> &ValueIndex {
        &self.value_index
    }

    /// Storage statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        let mut compressed = 0u32;
        let mut uncompressed = 0u32;
        for f in self.page_formats.values() {
            match f {
                StoreFormat::V2 => compressed += 1,
                StoreFormat::V1 => uncompressed += 1,
            }
        }
        StoreStats {
            pages: self.index.len() as u32,
            tuples: self.tuples,
            distinct_names: self.names.len(),
            distinct_values: self.value_index.distinct_values(),
            documents: self.docs.len(),
            buffer: self.pool.stats(),
            format: self.format,
            compressed_pages: compressed,
            uncompressed_pages: uncompressed,
            dict_entries: self.dict.len(),
            logical_bytes: self.logical_bytes,
        }
    }

    /// Average tuples per live clustered-index page — the blocking
    /// factor the cost model divides by to turn tuple estimates into
    /// page-I/O estimates. Reflects measured compression: v2 pages pack
    /// more records, so the same tuple count costs fewer pages.
    pub fn tuples_per_page(&self) -> f64 {
        if self.index.is_empty() {
            0.0
        } else {
            self.tuples as f64 / self.index.len() as f64
        }
    }

    /// The buffer pool (for stats reset / cache clearing in experiments).
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.pool
    }

    // ---- bulk-load internals (used by the loader) -------------------------

    /// Converts a value string to a [`ValueRef`], spilling long values to
    /// the blob heap. On v2 stores, values already in the dictionary
    /// become [`ValueRef::Dict`] references; the dictionary is never
    /// *grown* here (admission happens only during bulk loads), so WAL
    /// replay and replication reproduce identical refs.
    pub(crate) fn make_value(&mut self, value: &str) -> Result<ValueRef> {
        if self.format == StoreFormat::V2 {
            if let Some(id) = self.dict.lookup(value) {
                return Ok(ValueRef::Dict(id));
            }
        }
        if value.len() <= INLINE_VALUE_MAX {
            Ok(ValueRef::Inline(value.into()))
        } else {
            let offset = self.pool.append_blob(value.as_bytes())?;
            Ok(ValueRef::Overflow {
                offset,
                len: value.len() as u32,
            })
        }
    }

    /// Bytes `rec` would occupy in the v1 record encoding (dictionary
    /// refs expanded to their inline value) — the uncompressed footprint.
    fn v1_logical_len(&self, rec: &NodeRecord) -> u64 {
        let len = match &rec.value {
            ValueRef::Dict(id) => {
                let vlen = self.dict.resolve(*id).map_or(0, str::len);
                rec.encoded_len() - 4 + vlen
            }
            _ => rec.encoded_len(),
        };
        len as u64
    }

    /// Registers a freshly created record in the secondary indexes.
    pub(crate) fn index_record(&mut self, rec: &NodeRecord, value: Option<&str>, ordered: bool) {
        self.logical_bytes += self.v1_logical_len(rec);
        let flat = rec.key.as_flat().to_vec();
        match rec.kind {
            RecordKind::Element => {
                let name = rec.name.expect("element has a name");
                let list = self.name_index.elements_mut(name);
                if ordered {
                    list.push_ordered(flat.clone());
                    self.name_index.all_elements_mut().push_ordered(flat);
                } else {
                    list.insert(flat.clone());
                    self.name_index.all_elements_mut().insert(flat);
                }
            }
            RecordKind::Attribute => {
                let name = rec.name.expect("attribute has a name");
                let list = self.name_index.attributes_mut(name);
                if ordered {
                    list.push_ordered(flat.clone());
                } else {
                    list.insert(flat.clone());
                }
                if let Some(v) = value {
                    if ordered {
                        self.value_index.insert_ordered(v, flat);
                    } else {
                        self.value_index.insert(v, flat);
                    }
                }
            }
            RecordKind::Text => {
                let list = self.name_index.text_mut();
                if ordered {
                    list.push_ordered(flat.clone());
                } else {
                    list.insert(flat.clone());
                }
                if let Some(v) = value {
                    if ordered {
                        self.value_index.insert_ordered(v, flat);
                    } else {
                        self.value_index.insert(v, flat);
                    }
                }
            }
            RecordKind::Comment => {
                let list = self.name_index.comments_mut();
                if ordered {
                    list.push_ordered(flat);
                } else {
                    list.insert(flat);
                }
            }
            RecordKind::Pi => {
                let list = self.name_index.pis_mut();
                if ordered {
                    list.push_ordered(flat);
                } else {
                    list.insert(flat);
                }
            }
            RecordKind::Document => {}
        }
        self.tuples += 1;
    }

    /// Removes a record from the secondary indexes.
    fn unindex_record(&mut self, rec: &NodeRecord) -> Result<()> {
        self.logical_bytes = self.logical_bytes.saturating_sub(self.v1_logical_len(rec));
        let flat = rec.key.as_flat();
        match rec.kind {
            RecordKind::Element => {
                let name = rec.name.expect("element has a name");
                self.name_index.elements_mut(name).remove(flat);
                self.name_index.all_elements_mut().remove(flat);
            }
            RecordKind::Attribute => {
                let name = rec.name.expect("attribute has a name");
                self.name_index.attributes_mut(name).remove(flat);
                if let Some(v) = self.resolve_value(rec)? {
                    self.value_index.remove(&v, flat);
                }
            }
            RecordKind::Text => {
                self.name_index.text_mut().remove(flat);
                if let Some(v) = self.resolve_value(rec)? {
                    self.value_index.remove(&v, flat);
                }
            }
            RecordKind::Comment => {
                self.name_index.comments_mut().remove(flat);
            }
            RecordKind::Pi => {
                self.name_index.pis_mut().remove(flat);
            }
            RecordKind::Document => {}
        }
        self.tuples -= 1;
        Ok(())
    }

    // ---- updates ----------------------------------------------------------

    /// Allocates a page, preferring ids freed by earlier deletes.
    pub(crate) fn allocate_page(&mut self) -> Result<u32> {
        match self.free_pages.pop() {
            Some(id) => Ok(id),
            None => self.pool.allocate(),
        }
    }

    /// Writes a data page through the pool, tracking the on-disk format
    /// actually used (a v2 page can fall back to v1 — the overflow rule).
    pub(crate) fn put_data_page(&mut self, id: u32, page: Page) -> Result<()> {
        let written = self.pool.put(id, page)?;
        self.page_formats.insert(id, written);
        Ok(())
    }

    /// Releases a page emptied by deletes: drops its format entry and
    /// puts the id on the free list for reuse.
    pub(crate) fn release_page(&mut self, id: u32) {
        self.page_formats.remove(&id);
        self.free_pages.push(id);
    }

    /// Writes the mutated page at sparse-index position `pos` back,
    /// splitting it first when removals pushed its (v2) payload past
    /// capacity — removing a record can lengthen its successor's
    /// front-coding. Returns the number of index entries added, so
    /// callers iterating the index can skip the new pages (their records
    /// were already examined).
    pub(crate) fn put_page_at(&mut self, pos: usize, page: Page) -> Result<usize> {
        let page_id = self.index[pos].1;
        if !page.overflowed() {
            self.put_data_page(page_id, page)?;
            return Ok(0);
        }
        let mut parts = vec![page];
        while let Some(i) = parts.iter().position(Page::overflowed) {
            let upper = parts[i].split();
            parts.insert(i + 1, upper);
        }
        let mut lower = parts.remove(0);
        // In the pathological case the *lower* half is a single record
        // too big for any format; nothing to do but surface the error
        // when encoding (cannot happen for records built by this crate).
        let mut entries = Vec::with_capacity(parts.len());
        // Crash ordering, as in `insert_record`: write the new upper
        // pages before rewriting the shrunk original — duplicates are
        // repairable on recovery, loss is not.
        for part in parts {
            let first = part
                .first_key()
                .ok_or_else(|| MassError::InvalidUpdate("split produced empty page".into()))?
                .to_vec();
            let id = self.allocate_page()?;
            self.put_data_page(id, part)?;
            entries.push((first, id));
        }
        if lower.is_empty() {
            // Cannot happen (split never empties the lower half), but
            // keep the index consistent if it ever did.
            lower = Page::new_with_format(self.format);
        }
        self.put_data_page(page_id, lower)?;
        let added = entries.len();
        for (i, e) in entries.into_iter().enumerate() {
            self.index.insert(pos + 1 + i, e);
        }
        Ok(added)
    }

    /// Inserts a record into the clustered index at its key position,
    /// splitting the target page if needed.
    pub(crate) fn insert_record(&mut self, rec: NodeRecord) -> Result<()> {
        self.bump_generation();
        let flat = rec.key.as_flat().to_vec();
        if self.index.is_empty() {
            let id = self.allocate_page()?;
            let mut page = Page::new_with_format(self.format);
            page.append(rec)?;
            self.put_data_page(id, page)?;
            self.index.push((flat, id));
            return Ok(());
        }
        let pos = match self.page_pos_for(&flat) {
            Some(p) => p,
            None => {
                // New key sorts before the first page: extend page 0's range.
                self.index[0].0 = flat.clone();
                0
            }
        };
        let page_id = self.index[pos].1;
        let mut page = (*self.pool.get(page_id)?).clone();
        if page.fits_record(&rec) {
            page.insert(rec)?;
            self.put_data_page(page_id, page)?;
        } else {
            let mut upper = page.split();
            let upper_first = upper
                .first_key()
                .ok_or_else(|| MassError::InvalidUpdate("split produced empty page".into()))?
                .to_vec();
            if flat.as_slice() < upper_first.as_slice() {
                page.insert(rec)?;
            } else {
                upper.insert(rec)?;
            }
            let new_id = self.allocate_page()?;
            // Write the new upper page before rewriting the lower one: a
            // crash between the two leaves duplicated records (the old
            // image plus the upper copy), which recovery repairs, rather
            // than losing the upper half outright.
            self.put_data_page(new_id, upper)?;
            self.put_data_page(page_id, page)?;
            self.index.insert(pos + 1, (upper_first, new_id));
        }
        Ok(())
    }

    /// The key of `parent`'s last child (any node kind), if it has one.
    pub fn last_child_key(&self, parent: &FlexKey) -> Result<Option<FlexKey>> {
        let range = KeyRange::descendants(parent);
        let Some(last) = self.last_key_in(&range)? else {
            return Ok(None);
        };
        // Truncate the descendant to the child level.
        let child_level = parent.level() + 1;
        let mut key = FlexKey::root();
        for (i, label) in last.labels().enumerate() {
            if i >= child_level {
                break;
            }
            key = key.child(label);
        }
        Ok(Some(key))
    }

    /// Largest stored key inside `range`.
    pub(crate) fn last_key_in(&self, range: &KeyRange) -> Result<Option<FlexKey>> {
        if self.index.is_empty() || range.is_empty() {
            return Ok(None);
        }
        // Find the last page whose first key is below the upper bound.
        let page_pos = match &range.hi {
            Some(hi) => {
                let p = self
                    .index
                    .partition_point(|(first, _)| first.as_slice() < hi.as_slice());
                if p == 0 {
                    return Ok(None);
                }
                p - 1
            }
            None => self.index.len() - 1,
        };
        // Scan backwards through pages (usually just one).
        for pos in (0..=page_pos).rev() {
            let page = self.pool.get(self.index[pos].1)?;
            let idx = match &range.hi {
                Some(hi) => match page.find(hi) {
                    Ok(i) | Err(i) => i,
                },
                None => page.len(),
            };
            if idx > 0 {
                let rec = &page.records()[idx - 1];
                if rec.key.as_flat() >= range.lo.as_slice() {
                    return Ok(Some(rec.key.clone()));
                }
                return Ok(None);
            }
        }
        Ok(None)
    }

    /// The next sibling key of `key` (any kind), if one exists.
    pub fn next_sibling_key(&self, key: &FlexKey) -> Result<Option<FlexKey>> {
        let Some(parent) = key.parent() else {
            return Ok(None);
        };
        let Some(upper) = key.subtree_upper() else {
            return Ok(None);
        };
        let bound = if parent.is_root() {
            None
        } else {
            parent.subtree_upper()
        };
        let mut cursor = crate::cursor::MassCursor::new(
            self,
            KeyRange {
                lo: upper,
                hi: bound,
            },
        );
        Ok(cursor.next()?.map(|r| r.key))
    }

    /// Applies one logical WAL record to the store. On the live path
    /// (`replay == false`) the caller has already logged and committed the
    /// record; on recovery (`replay == true`) the record may be partially
    /// applied already, so inserts skip keys that survived in the page
    /// file. Names are interned *before* the existence check so the
    /// interned-id sequence is identical on both paths.
    pub(crate) fn apply_wal_record(&mut self, rec: &WalRecord, replay: bool) -> Result<()> {
        match rec {
            WalRecord::InsertElement { key, name } => {
                let name_id = self.intern(name);
                if replay && self.contains(key)? {
                    return Ok(());
                }
                let rec = NodeRecord::element(key.clone(), name_id);
                self.insert_record(rec.clone())?;
                self.index_record(&rec, None, false);
            }
            WalRecord::InsertText { key, value } => {
                if replay && self.contains(key)? {
                    return Ok(());
                }
                let vref = self.make_value(value)?;
                let rec = NodeRecord {
                    key: key.clone(),
                    kind: RecordKind::Text,
                    name: None,
                    value: vref,
                };
                self.insert_record(rec.clone())?;
                self.index_record(&rec, Some(value), false);
            }
            WalRecord::InsertAttribute { key, name, value } => {
                let name_id = self.intern(name);
                if replay && self.contains(key)? {
                    return Ok(());
                }
                let vref = self.make_value(value)?;
                let rec = NodeRecord {
                    key: key.clone(),
                    kind: RecordKind::Attribute,
                    name: Some(name_id),
                    value: vref,
                };
                self.insert_record(rec.clone())?;
                self.index_record(&rec, Some(value), false);
            }
            WalRecord::DeleteSubtree { key } => {
                self.delete_subtree_unlogged(key)?;
            }
            WalRecord::LoadDocument { name, xml } => {
                // A bulk load that entered the log (for replication) but
                // also checkpointed right after it — replay skips it when
                // the document already survived in the page file. The
                // unlogged loader assigns keys deterministically from the
                // document structure and load ordinal, so replaying on a
                // follower reproduces the primary's exact key space.
                if replay && self.document_by_name(name).is_some() {
                    return Ok(());
                }
                let doc = vamana_xml::parse(xml)
                    .map_err(|e| MassError::InvalidUpdate(format!("load replay parse: {e}")))?;
                self.load_document_unlogged(name, &doc)?;
            }
            WalRecord::Commit => {}
        }
        Ok(())
    }

    /// Logs `recs` plus a commit marker to the WAL, returning the commit
    /// LSN (0 for volatile stores). On any failure the uncommitted frames
    /// are rolled back so the log never exposes a torn operation. Once
    /// committed, the batch is published to the replication ring (if one
    /// is attached) under the exact LSNs the log assigned.
    pub(crate) fn log_records(&mut self, recs: &[WalRecord]) -> Result<u64> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(0);
        };
        let mut lsns = Vec::with_capacity(recs.len());
        for rec in recs {
            match wal.append(rec) {
                Ok(lsn) => lsns.push(lsn),
                Err(e) => {
                    wal.rollback().ok();
                    return Err(e);
                }
            }
        }
        let commit_lsn = match wal.commit() {
            Ok(lsn) => lsn,
            Err(e) => {
                wal.rollback().ok();
                return Err(e);
            }
        };
        if let Some(log) = &self.repl {
            let mut frames: Vec<(u64, std::sync::Arc<Vec<u8>>)> = lsns
                .into_iter()
                .zip(recs)
                .map(|(lsn, rec)| (lsn, std::sync::Arc::new(rec.encode())))
                .collect();
            frames.push((commit_lsn, std::sync::Arc::new(WalRecord::Commit.encode())));
            log.publish(&frames);
        }
        Ok(commit_lsn)
    }

    /// Inserts a new element under `parent` after all existing children,
    /// returning its key.
    pub fn append_element(&mut self, parent: &FlexKey, name: &str) -> Result<FlexKey> {
        if self.get(parent)?.is_none() {
            return Err(MassError::InvalidUpdate("parent does not exist".into()));
        }
        let key = self.next_child_key(parent)?;
        let rec = WalRecord::InsertElement {
            key: key.clone(),
            name: name.to_string(),
        };
        self.log_records(std::slice::from_ref(&rec))?;
        self.apply_wal_record(&rec, false)?;
        self.bump_doc(&key);
        Ok(key)
    }

    /// Inserts a new text node under `parent` after all existing children.
    pub fn append_text(&mut self, parent: &FlexKey, value: &str) -> Result<FlexKey> {
        if self.get(parent)?.is_none() {
            return Err(MassError::InvalidUpdate("parent does not exist".into()));
        }
        let key = self.next_child_key(parent)?;
        let rec = WalRecord::InsertText {
            key: key.clone(),
            value: value.to_string(),
        };
        self.log_records(std::slice::from_ref(&rec))?;
        self.apply_wal_record(&rec, false)?;
        self.bump_doc(&key);
        Ok(key)
    }

    /// Inserts a new element *between* two adjacent sibling subtrees.
    pub fn insert_element_after(&mut self, sibling: &FlexKey, name: &str) -> Result<FlexKey> {
        let parent = sibling
            .parent()
            .ok_or_else(|| MassError::InvalidUpdate("cannot insert sibling of root".into()))?;
        let key = match self.next_sibling_key(sibling)? {
            Some(next) => {
                let label = label_between(
                    sibling.last_label().expect("non-root"),
                    next.last_label().expect("non-root"),
                )?;
                parent.child(&label)
            }
            None => self.next_child_key(&parent)?,
        };
        let rec = WalRecord::InsertElement {
            key: key.clone(),
            name: name.to_string(),
        };
        self.log_records(std::slice::from_ref(&rec))?;
        self.apply_wal_record(&rec, false)?;
        self.bump_doc(&key);
        Ok(key)
    }

    fn next_child_key(&self, parent: &FlexKey) -> Result<FlexKey> {
        match self.last_child_key(parent)? {
            Some(last) => {
                let label = label_after(last.last_label().expect("child key has label"));
                Ok(parent.child(&label))
            }
            None => Ok(parent.child(&seq_label(0))),
        }
    }

    /// Inserts a parsed XML fragment as the last child of `parent`,
    /// returning the key of the fragment's root element. The fragment
    /// must have a single root element.
    ///
    /// The whole fragment is planned into WAL records first (assigning
    /// every key without touching the store), logged as one atomic
    /// operation, then applied — so a crash mid-fragment recovers to
    /// either none or all of it.
    pub fn append_fragment(&mut self, parent: &FlexKey, xml: &str) -> Result<FlexKey> {
        let doc = vamana_xml::parse(xml)
            .map_err(|e| MassError::InvalidUpdate(format!("fragment parse failed: {e}")))?;
        let root = doc
            .root_element()
            .ok_or_else(|| MassError::InvalidUpdate("fragment has no root element".into()))?;
        if self.get(parent)?.is_none() {
            return Err(MassError::InvalidUpdate("parent does not exist".into()));
        }
        let root_key = self.next_child_key(parent)?;
        let mut recs = Vec::new();
        Self::plan_node(&doc, root, &root_key, &mut recs)?;
        self.log_records(&recs)?;
        for rec in &recs {
            self.apply_wal_record(rec, false)?;
        }
        self.bump_doc(&root_key);
        Ok(root_key)
    }

    /// Plans the WAL records for inserting `node` (and its subtree) at
    /// `key`, without touching the store. Fresh elements get attribute
    /// ordinals `0..n` and child labels chained with [`label_after`] from
    /// the last attribute label — exactly the keys the sequential
    /// append path would assign. Unsupported node kinds are rejected here,
    /// before anything is logged.
    fn plan_node(
        doc: &vamana_xml::Document,
        node: vamana_xml::NodeId,
        key: &FlexKey,
        out: &mut Vec<WalRecord>,
    ) -> Result<()> {
        use vamana_xml::NodeKind;
        match doc.kind(node) {
            NodeKind::Element { name } => {
                out.push(WalRecord::InsertElement {
                    key: key.clone(),
                    name: name.to_string(),
                });
                let mut n_attrs = 0u64;
                for attr in doc.attributes(node) {
                    let aname = doc.name(attr).expect("attribute name").to_string();
                    let avalue = doc.value(attr).expect("attribute value").to_string();
                    out.push(WalRecord::InsertAttribute {
                        key: key.child(&attr_label(n_attrs)),
                        name: aname,
                        value: avalue,
                    });
                    n_attrs += 1;
                }
                let mut last_label = if n_attrs > 0 {
                    Some(attr_label(n_attrs - 1))
                } else {
                    None
                };
                for child in doc.children(node) {
                    let label = match &last_label {
                        Some(prev) => label_after(prev),
                        None => seq_label(0),
                    };
                    Self::plan_node(doc, child, &key.child(&label), out)?;
                    last_label = Some(label);
                }
                Ok(())
            }
            NodeKind::Text { value } => {
                out.push(WalRecord::InsertText {
                    key: key.clone(),
                    value: value.to_string(),
                });
                Ok(())
            }
            other => Err(MassError::InvalidUpdate(format!(
                "unsupported fragment node kind {other:?}"
            ))),
        }
    }

    /// Attaches an attribute to an existing element.
    pub fn append_attribute(
        &mut self,
        element: &FlexKey,
        name: &str,
        value: &str,
    ) -> Result<FlexKey> {
        let Some(rec) = self.get(element)? else {
            return Err(MassError::InvalidUpdate("element does not exist".into()));
        };
        if rec.kind != RecordKind::Element {
            return Err(MassError::InvalidUpdate(
                "attributes attach to elements".into(),
            ));
        }
        // Find the next free attribute ordinal by scanning existing
        // attribute children (they cluster first).
        let mut ordinal = 0u64;
        let mut cursor = crate::cursor::MassCursor::new(self, KeyRange::descendants(element));
        while let Some(r) = cursor.next()? {
            if r.kind == RecordKind::Attribute && element.is_parent_of(&r.key) {
                ordinal += 1;
            } else {
                break;
            }
        }
        let key = element.child(&attr_label(ordinal));
        let rec = WalRecord::InsertAttribute {
            key: key.clone(),
            name: name.to_string(),
            value: value.to_string(),
        };
        self.log_records(std::slice::from_ref(&rec))?;
        self.apply_wal_record(&rec, false)?;
        self.bump_doc(&key);
        Ok(key)
    }

    /// Deletes the node at `key` and its whole subtree. Returns the number
    /// of records removed.
    pub fn delete_subtree(&mut self, key: &FlexKey) -> Result<u64> {
        let rec = WalRecord::DeleteSubtree { key: key.clone() };
        self.log_records(std::slice::from_ref(&rec))?;
        let removed = self.delete_subtree_unlogged(key)?;
        if removed > 0 {
            self.bump_doc(key);
        }
        Ok(removed)
    }

    /// [`MassStore::delete_subtree`] without WAL logging — the apply/replay
    /// half of the operation.
    fn delete_subtree_unlogged(&mut self, key: &FlexKey) -> Result<u64> {
        self.bump_generation();
        let range = KeyRange::subtree(key);
        if self.index.is_empty() {
            return Ok(0);
        }
        let start = self.page_pos_for(&range.lo).unwrap_or(0);
        let mut removed = 0u64;
        let mut pos = start;
        let mut dead_pages = Vec::new();
        while pos < self.index.len() {
            if let Some(hi) = &range.hi {
                if self.index[pos].0.as_slice() >= hi.as_slice() {
                    break;
                }
            }
            let page_id = self.index[pos].1;
            let mut page = (*self.pool.get(page_id)?).clone();
            let mut i = 0;
            let mut touched = false;
            while i < page.len() {
                let in_range = range.contains(page.records()[i].key.as_flat());
                if in_range {
                    let rec = page.remove(i);
                    self.unindex_record(&rec)?;
                    removed += 1;
                    touched = true;
                } else {
                    i += 1;
                }
            }
            if touched {
                if page.is_empty() {
                    dead_pages.push(pos);
                    self.put_data_page(page_id, page)?;
                } else {
                    self.index[pos].0 = page.first_key().expect("non-empty").to_vec();
                    // Removing records can *grow* a v2 page (the
                    // successor's front-coding lengthens); split before
                    // write-out and skip the new pages — their records
                    // were already examined.
                    pos += self.put_page_at(pos, page)?;
                }
            }
            pos += 1;
        }
        // Remove emptied pages from the sparse index and put their ids on
        // the free list for reuse.
        for p in dead_pages.into_iter().rev() {
            let (_, page_id) = self.index.remove(p);
            self.release_page(page_id);
        }
        Ok(removed)
    }
}

/// A label strictly greater than `label`, for appending after the last
/// sibling. Never ends in `0x00`/`0x01`.
fn label_after(label: &[u8]) -> Vec<u8> {
    let mut out = label.to_vec();
    let last = *out.last().expect("labels are non-empty");
    if last < 0xFF {
        *out.last_mut().expect("non-empty") = last + 1;
    } else {
        out.push(0x80);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_after_increments() {
        assert_eq!(label_after(&[0x40]), vec![0x41]);
        assert_eq!(label_after(&[0x80, 0x02]), vec![0x80, 0x03]);
    }

    #[test]
    fn label_after_extends_at_max() {
        assert_eq!(label_after(&[0xFF]), vec![0xFF, 0x80]);
        assert!(label_after(&[0xFF]).as_slice() > &[0xFF][..]);
    }

    #[test]
    fn empty_store_basics() {
        let store = MassStore::open_memory();
        assert_eq!(store.stats().tuples, 0);
        assert_eq!(store.documents().len(), 0);
        assert!(store
            .get(&FlexKey::root().child(&seq_label(0)))
            .unwrap()
            .is_none());
    }
    // Full store behavior is exercised via the loader tests in
    // `crate::loader` and the integration tests.

    /// A store whose clustered index spans many pages.
    fn multi_page_store() -> MassStore {
        let mut xml = String::from("<root>");
        for i in 0..3000 {
            xml.push_str(&format!("<e><v>{i}</v></e>"));
        }
        xml.push_str("</root>");
        let mut store = MassStore::open_memory();
        store.load_xml("doc", &xml).unwrap();
        assert!(
            store.stats().pages >= 16,
            "need a multi-page store, got {} pages",
            store.stats().pages
        );
        store
    }

    /// Flat keys of every record a cursor yields over `range`.
    fn scan_keys(store: &MassStore, range: &KeyRange) -> Vec<Vec<u8>> {
        let mut cur = crate::cursor::MassCursor::new(store, range.clone());
        let mut keys = Vec::new();
        while let Some(e) = cur.next_entry().unwrap() {
            keys.push(e.key.as_flat().to_vec());
        }
        keys
    }

    #[test]
    fn partition_range_tiles_the_serial_scan() {
        let store = multi_page_store();
        let doc_key = store.documents()[0].doc_key.clone();
        let range = KeyRange::descendants(&doc_key);
        let full = scan_keys(&store, &range);
        for n in [2, 3, 4, 8, 64] {
            let parts = store.partition_range(&range, n);
            assert!(!parts.is_empty() && parts.len() <= n);
            assert_eq!(parts[0].lo, range.lo);
            assert_eq!(parts.last().unwrap().hi, range.hi);
            for w in parts.windows(2) {
                assert_eq!(w[0].hi.as_ref().unwrap(), &w[1].lo);
            }
            // Concatenating the morsel scans reproduces the full scan.
            let tiled: Vec<_> = parts.iter().flat_map(|p| scan_keys(&store, p)).collect();
            assert_eq!(tiled, full);
        }
    }

    #[test]
    fn partition_range_boundaries_are_page_firsts() {
        let store = multi_page_store();
        let doc_key = store.documents()[0].doc_key.clone();
        let range = KeyRange::subtree(&doc_key);
        let parts = store.partition_range(&range, 4);
        assert!(parts.len() >= 2, "multi-page range must actually split");
        for p in &parts[1..] {
            assert!(
                store.index.iter().any(|(first, _)| first == &p.lo),
                "interior boundary must be a page-first key"
            );
        }
        // Morsels are balanced: no morsel hogs the page budget.
        let pages = store.index.len();
        let runs: Vec<usize> = parts.iter().map(|p| scan_keys(&store, p).len()).collect();
        assert!(runs.iter().all(|&r| r > 0));
        assert!(pages >= parts.len());
    }

    #[test]
    fn partition_range_unbounded_uses_index_depth() {
        let store = multi_page_store();
        // Descendants-of-root is unbounded above; the index still knows
        // where the data ends, so the split must cover everything.
        let range = KeyRange::descendants(&FlexKey::root());
        assert_eq!(range.hi, None);
        let full = scan_keys(&store, &range);
        let parts = store.partition_range(&range, 4);
        assert!(parts.len() >= 2);
        assert_eq!(parts.last().unwrap().hi, None);
        let tiled: Vec<_> = parts.iter().flat_map(|p| scan_keys(&store, p)).collect();
        assert_eq!(tiled, full);
    }

    #[test]
    fn partition_range_degenerate_cases() {
        let empty = MassStore::open_memory();
        let all = KeyRange::all();
        assert_eq!(empty.partition_range(&all, 4), vec![all.clone()]);

        let mut small = MassStore::open_memory();
        small.load_xml("doc", "<a><b/></a>").unwrap();
        // Single page: nothing to split.
        assert_eq!(small.partition_range(&all, 4), vec![all.clone()]);
        assert_eq!(small.partition_range(&all, 1), vec![all.clone()]);
        assert_eq!(
            small.partition_range(&KeyRange::empty(), 4),
            vec![KeyRange::empty()]
        );
    }
}
