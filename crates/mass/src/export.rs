//! Exporting stored subtrees back to XML.
//!
//! Reconstructs a [`vamana_xml::Document`] from the clustered index by
//! scanning a subtree range — used by `.save` in the CLI, by XQuery
//! element constructors (which copy nodes into their output), and by
//! tests that verify load → export round trips.

use crate::cursor::MassCursor;
use crate::error::{MassError, Result};
use crate::record::RecordKind;
use crate::store::MassStore;
use vamana_flex::{FlexKey, KeyRange};
use vamana_xml::{Document, NodeId};

/// Rebuilds the subtree rooted at `key` as a fresh XML document.
///
/// `key` may be a document record (exports the whole document) or any
/// element (exports that element as the new root).
pub fn export_subtree(store: &MassStore, key: &FlexKey) -> Result<Document> {
    let mut doc = Document::new();
    let root_rec = store.get(key)?.ok_or(MassError::KeyNotFound)?;
    let mut stack: Vec<(FlexKey, NodeId)> = Vec::new();
    match root_rec.kind {
        RecordKind::Document => {
            stack.push((key.clone(), Document::ROOT));
        }
        RecordKind::Element => {
            let name = store.names().resolve(
                root_rec
                    .name
                    .ok_or_else(|| MassError::CorruptRecord("element without name".into()))?,
            );
            let id = doc.push_element(Document::ROOT, name);
            stack.push((key.clone(), id));
        }
        other => {
            return Err(MassError::InvalidUpdate(format!(
                "can only export documents or elements, got {other:?}"
            )))
        }
    }

    let mut cursor = MassCursor::new(store, KeyRange::descendants(key));
    while let Some(rec) = cursor.next()? {
        while let Some((top_key, _)) = stack.last() {
            if top_key.is_ancestor_of(&rec.key) {
                break;
            }
            stack.pop();
        }
        let (_, parent) = *stack
            .last()
            .ok_or_else(|| MassError::CorruptRecord("record outside exported subtree".into()))?;
        match rec.kind {
            RecordKind::Element => {
                let name = store.names().resolve(
                    rec.name
                        .ok_or_else(|| MassError::CorruptRecord("element without name".into()))?,
                );
                let id = doc.push_element(parent, name);
                stack.push((rec.key.clone(), id));
            }
            RecordKind::Attribute => {
                let name =
                    store
                        .names()
                        .resolve(rec.name.ok_or_else(|| {
                            MassError::CorruptRecord("attribute without name".into())
                        })?)
                        .to_string();
                let value = store.resolve_value(&rec)?.unwrap_or_default();
                doc.push_attribute(parent, &name, &value);
            }
            RecordKind::Text => {
                let value = store.resolve_value(&rec)?.unwrap_or_default();
                doc.push_text(parent, &value);
            }
            RecordKind::Comment => {
                let value = store.resolve_value(&rec)?.unwrap_or_default();
                doc.push_comment(parent, &value);
            }
            RecordKind::Pi => {
                let target = store
                    .names()
                    .resolve(
                        rec.name
                            .ok_or_else(|| MassError::CorruptRecord("PI without target".into()))?,
                    )
                    .to_string();
                let data = store.resolve_value(&rec)?.unwrap_or_default();
                doc.push_pi(parent, &target, &data);
            }
            RecordKind::Document => {
                return Err(MassError::CorruptRecord("nested document record".into()))
            }
        }
    }
    Ok(doc)
}

/// Exports the subtree at `key` as XML text (compact).
pub fn export_subtree_xml(store: &MassStore, key: &FlexKey) -> Result<String> {
    let doc = export_subtree(store, key)?;
    Ok(vamana_xml::write_document(
        &doc,
        &vamana_xml::WriteOptions::default(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"<site><person id="p0"><name>Yung Flach</name><!--vip--><watches><watch open_auction="oa1"/></watches></person><person id="p1"><name>Ann</name></person></site>"#;

    fn store() -> MassStore {
        let mut s = MassStore::open_memory();
        s.load_xml("doc", SRC).unwrap();
        s
    }

    #[test]
    fn whole_document_round_trips() {
        let s = store();
        let doc_key = s.documents()[0].doc_key.clone();
        assert_eq!(export_subtree_xml(&s, &doc_key).unwrap(), SRC);
    }

    #[test]
    fn element_subtree_exports_as_root() {
        let s = store();
        let person = s.name_id("person").unwrap();
        let first = FlexKey::from_flat(
            s.name_index()
                .elements(person)
                .iter()
                .next()
                .unwrap()
                .to_vec(),
        );
        let xml = export_subtree_xml(&s, &first).unwrap();
        assert_eq!(
            xml,
            r#"<person id="p0"><name>Yung Flach</name><!--vip--><watches><watch open_auction="oa1"/></watches></person>"#
        );
    }

    #[test]
    fn text_nodes_export_standalone_parents() {
        let s = store();
        let name = s.name_id("name").unwrap();
        let second = FlexKey::from_flat(
            s.name_index()
                .elements(name)
                .iter()
                .nth(1)
                .unwrap()
                .to_vec(),
        );
        assert_eq!(export_subtree_xml(&s, &second).unwrap(), "<name>Ann</name>");
    }

    #[test]
    fn exporting_missing_key_errors() {
        let s = store();
        let bogus = FlexKey::root().child(&vamana_flex::seq_label(999));
        assert!(export_subtree(&s, &bogus).is_err());
    }

    #[test]
    fn export_after_update_reflects_changes() {
        let mut s = store();
        let person = s.name_id("person").unwrap();
        let first = FlexKey::from_flat(
            s.name_index()
                .elements(person)
                .iter()
                .next()
                .unwrap()
                .to_vec(),
        );
        let e = s.append_element(&first, "phone").unwrap();
        s.append_text(&e, "555").unwrap();
        let xml = export_subtree_xml(&s, &first).unwrap();
        assert!(xml.contains("<phone>555</phone>"), "{xml}");
    }
}
