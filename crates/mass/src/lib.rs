//! # vamana-mass
//!
//! MASS — the Multi-Axis Storage Structure (Deschler & Rundensteiner,
//! CIKM 2003) — is the storage and index substrate of the VAMANA XPath
//! engine. It stores XML documents as FLEX-keyed node records clustered
//! in document order across fixed-size pages, with secondary indexes that
//! make both axis navigation and value lookups index-only operations:
//!
//! * **clustered index** ([`store::MassStore`]): records in FLEX-key
//!   (= document) order; a sparse in-memory index maps page first-keys to
//!   page ids; pages move through an LRU [`buffer::BufferPool`] over an
//!   in-memory or file-backed [`pager::PageStore`];
//! * **name index** ([`name_index::NameIndex`]): per-name sorted key
//!   lists for elements and attributes plus per-kind lists — node-test
//!   counts inside any structural range are two binary searches;
//! * **value index** ([`value_index::ValueIndex`]): exact string and
//!   numeric projections of text/attribute values — `TC(literal)` in one
//!   lookup, and `value::`-step evaluation without touching data pages;
//! * **axis streams** ([`axes::axis_stream`]): lazy document-order
//!   evaluation of all 13 XPath axes, choosing name-driven (index-only)
//!   or clustered-scan strategies per node test.
//!
//! ```
//! use vamana_mass::{MassStore, axes::{axis_stream, NodeFilter}};
//! use vamana_mass::record::RecordKind;
//! use vamana_flex::Axis;
//!
//! let mut store = MassStore::open_memory();
//! store.load_xml("doc", "<site><person><name>Yung Flach</name></person></site>").unwrap();
//!
//! // COUNT(person) without touching data pages:
//! let person = store.name_id("person").unwrap();
//! assert_eq!(store.count_elements(person), 1);
//!
//! // descendant::name from the document root:
//! let doc_key = store.documents()[0].doc_key.clone();
//! let name = store.name_id("name").unwrap();
//! let mut stream = axis_stream(&store, &doc_key, RecordKind::Document,
//!                              Axis::Descendant, NodeFilter::element(name)).unwrap();
//! assert!(stream.next().unwrap().is_some());
//! ```

#![deny(missing_docs)]

pub mod axes;
pub mod buffer;
pub mod catalog;
pub mod compress;
pub mod cursor;
pub mod error;
pub mod export;
pub mod fault;
pub mod loader;
pub mod name_index;
pub mod names;
pub mod page;
pub mod pager;
pub mod record;
pub mod repl;
pub mod stats;
pub mod store;
pub mod value_index;
pub mod wal;

pub use axes::{axis_stream, range_scan_stream, AxisStream, KindFilter, NodeEntry, NodeFilter};
pub use buffer::{BufferPool, BufferStats};
pub use compress::{StoreFormat, ValueDict};
pub use cursor::MassCursor;
pub use error::{MassError, Result};
pub use fault::{FaultClock, FaultPager, FaultWalBackend, SharedPager};
pub use names::{NameId, NameTable};
pub use record::{NodeRecord, RecordKind, ValueRef};
pub use repl::{ReplLogStats, ReplicationLog, DEFAULT_RETAIN_FRAMES};
pub use stats::StoreStats;
pub use store::{DocId, DocInfo, MassStore};
pub use value_index::RangeOp;
pub use wal::{
    encode_frame, verify_frame, FileWalBackend, FsyncPolicy, MemWalBackend, Wal, WalBackend,
    WalRecord, WalStats, FRAME_HEADER_LEN,
};
