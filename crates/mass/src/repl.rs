//! Replication: a retained feed of committed WAL frames plus the
//! follower-side apply path.
//!
//! A primary [`MassStore`] with an attached [`ReplicationLog`] publishes
//! every committed operation — updates *and* bulk loads (as
//! [`WalRecord::LoadDocument`]) — into an in-memory ring of `(lsn,
//! payload)` pairs. Feed connections read frames out of the ring and ship
//! them byte-identically to the on-disk WAL framing
//! ([`crate::wal::encode_frame`]), so a follower can persist what it
//! receives without re-framing and replay it through the exact recovery
//! path a crash would use.
//!
//! ## Checkpoints never strand followers
//!
//! [`MassStore::checkpoint`] truncates the *file* log but leaves the
//! replication ring untouched: retention is governed only by the ring's
//! frame budget. A follower whose resume LSN has aged out of the ring
//! (`from < floor`) is told to take a snapshot instead — the deterministic
//! FLEX key assignment of the bulk loader means shipping each document's
//! serialized XML in load order reproduces the primary's exact key space.

use crate::error::{MassError, Result};
use crate::store::MassStore;
use crate::wal::WalRecord;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Default number of committed frames a primary retains for catch-up.
pub const DEFAULT_RETAIN_FRAMES: usize = 1 << 16;

/// Counters describing the replication ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplLogStats {
    /// Highest LSN that has been discarded from the ring (0 = none):
    /// followers at or above this can stream, below it they must
    /// snapshot.
    pub floor_lsn: u64,
    /// LSN of the newest retained frame (0 when empty).
    pub last_lsn: u64,
    /// Frames currently retained.
    pub retained: usize,
    /// Frames appended since the log was attached.
    pub appended: u64,
}

struct LogInner {
    /// Retained committed frames: `(lsn, encoded WalRecord payload)`,
    /// contiguous LSNs, oldest first.
    frames: VecDeque<(u64, Arc<Vec<u8>>)>,
    /// Highest discarded (or never-captured) LSN.
    floor: u64,
    /// LSN of the newest frame ever appended.
    last: u64,
    /// Retention budget in frames.
    retain: usize,
    appended: u64,
}

/// A shared, bounded ring of committed WAL frames — the source every
/// replication feed reads from. Clones share the same ring.
#[derive(Clone)]
pub struct ReplicationLog {
    inner: Arc<(Mutex<LogInner>, Condvar)>,
}

impl std::fmt::Debug for ReplicationLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ReplicationLog")
            .field("floor", &s.floor_lsn)
            .field("last", &s.last_lsn)
            .field("retained", &s.retained)
            .finish()
    }
}

impl ReplicationLog {
    /// An empty ring retaining up to `retain` frames. `floor` marks the
    /// history that predates the ring (a store attaching mid-life passes
    /// its last committed LSN).
    pub fn new(retain: usize, floor: u64) -> Self {
        ReplicationLog {
            inner: Arc::new((
                Mutex::new(LogInner {
                    frames: VecDeque::new(),
                    floor,
                    last: floor,
                    retain: retain.max(1),
                    appended: 0,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Publishes one committed batch (data records then the commit
    /// marker, with their log LSNs) and wakes waiting feeds.
    pub fn publish(&self, frames: &[(u64, Arc<Vec<u8>>)]) {
        if frames.is_empty() {
            return;
        }
        let (lock, cvar) = &*self.inner;
        let mut inner = lock.lock().unwrap_or_else(|p| p.into_inner());
        for (lsn, payload) in frames {
            inner.frames.push_back((*lsn, Arc::clone(payload)));
            inner.last = *lsn;
            inner.appended += 1;
        }
        while inner.frames.len() > inner.retain {
            if let Some((lsn, _)) = inner.frames.pop_front() {
                inner.floor = lsn;
            }
        }
        cvar.notify_all();
    }

    /// Frames with LSN strictly greater than `from`, up to `max` of
    /// them. `None` means `from` has aged out of retention and the
    /// follower needs a snapshot.
    pub fn frames_after(&self, from: u64, max: usize) -> Option<Vec<(u64, Arc<Vec<u8>>)>> {
        let (lock, _) = &*self.inner;
        let inner = lock.lock().unwrap_or_else(|p| p.into_inner());
        if from < inner.floor {
            return None;
        }
        Some(
            inner
                .frames
                .iter()
                .skip_while(|(lsn, _)| *lsn <= from)
                .take(max)
                .map(|(lsn, p)| (*lsn, Arc::clone(p)))
                .collect(),
        )
    }

    /// Blocks until a frame newer than `lsn` exists (true) or `timeout`
    /// elapses (false).
    pub fn wait_beyond(&self, lsn: u64, timeout: Duration) -> bool {
        let (lock, cvar) = &*self.inner;
        let mut inner = lock.lock().unwrap_or_else(|p| p.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        while inner.last <= lsn {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = cvar
                .wait_timeout(inner, left)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
        }
        true
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ReplLogStats {
        let (lock, _) = &*self.inner;
        let inner = lock.lock().unwrap_or_else(|p| p.into_inner());
        ReplLogStats {
            floor_lsn: inner.floor,
            last_lsn: inner.last,
            retained: inner.frames.len(),
            appended: inner.appended,
        }
    }
}

impl MassStore {
    /// Attaches a replication ring retaining `retain` committed frames.
    /// Requires a durable store (LSNs come from the WAL). History
    /// committed before the attach is below the ring's floor: followers
    /// starting from scratch receive a snapshot instead.
    pub fn attach_replication(&mut self, retain: usize) -> Result<ReplicationLog> {
        if self.wal.is_none() {
            return Err(MassError::InvalidUpdate(
                "replication requires a durable store".into(),
            ));
        }
        let log = ReplicationLog::new(retain, self.replicated_lsn());
        self.repl = Some(log.clone());
        Ok(log)
    }

    /// The attached replication ring, if any.
    pub fn replication_log(&self) -> Option<ReplicationLog> {
        self.repl.clone()
    }

    /// LSN of the last durably committed operation (0 for volatile
    /// stores or before the first commit). Survives restarts: the WAL
    /// header/catalog floor carries it across reopen.
    pub fn replicated_lsn(&self) -> u64 {
        self.wal
            .as_ref()
            .map(|w| w.last_committed_lsn())
            .unwrap_or(0)
    }

    /// Fsync policy of the WAL (`None` for volatile stores).
    pub fn fsync_policy(&self) -> Option<crate::wal::FsyncPolicy> {
        self.wal.as_ref().map(|w| w.policy())
    }

    /// Re-bases an empty WAL so the next external frame must carry
    /// `snapshot_lsn + 1` — the follower-side epilogue of a snapshot
    /// install. The store checkpoints first (folding any local state into
    /// the pages and emptying the log) and again after, so the catalog's
    /// LSN floor agrees with the new numbering across restarts.
    pub fn rebase_replica(&mut self, snapshot_lsn: u64) -> Result<()> {
        self.checkpoint()?;
        self.wal
            .as_mut()
            .ok_or_else(|| MassError::InvalidUpdate("replica store must be durable".into()))?
            .set_next_lsn(snapshot_lsn + 1)?;
        self.checkpoint()?;
        Ok(())
    }

    /// Applies one committed batch received from a primary: the frames
    /// are appended to this store's own WAL under the *primary's* LSNs
    /// (contiguity enforced — a gap aborts with the log rolled back),
    /// sealed by the batch's commit marker, and only then replayed into
    /// the pages through the idempotent recovery path. Touched documents
    /// get their generations bumped so cached plans invalidate exactly
    /// like local writes. Returns the commit marker's LSN.
    pub fn apply_replicated(&mut self, frames: &[(u64, WalRecord)]) -> Result<u64> {
        let Some((last, rest)) = frames.split_last() else {
            return Ok(self.replicated_lsn());
        };
        if !matches!(last.1, WalRecord::Commit) {
            return Err(MassError::InvalidUpdate(
                "replicated batch must end with a commit marker".into(),
            ));
        }
        if self.wal.is_none() {
            return Err(MassError::InvalidUpdate(
                "replica store must be durable".into(),
            ));
        }
        {
            let wal = self.wal.as_mut().expect("checked durable");
            for (lsn, rec) in frames {
                if let Err(e) = wal.append_external(*lsn, rec) {
                    wal.rollback().ok();
                    return Err(e);
                }
            }
        }
        // Log is durable; now redo into the pages. Replay-mode apply is
        // idempotent, so an overlap after reconnect is harmless.
        for (_, rec) in rest {
            self.apply_wal_record(rec, true)?;
            match rec {
                WalRecord::InsertElement { key, .. }
                | WalRecord::InsertText { key, .. }
                | WalRecord::InsertAttribute { key, .. }
                | WalRecord::DeleteSubtree { key } => self.bump_doc(key),
                WalRecord::LoadDocument { .. } | WalRecord::Commit => {}
            }
        }
        // Cascade: a follower with its own ring can feed further
        // followers.
        if let Some(log) = &self.repl {
            let encoded: Vec<(u64, Arc<Vec<u8>>)> = frames
                .iter()
                .map(|(lsn, rec)| (*lsn, Arc::new(rec.encode())))
                .collect();
            log.publish(&encoded);
        }
        Ok(last.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemoryPager;
    use crate::wal::{FsyncPolicy, MemWalBackend};

    fn durable_store() -> MassStore {
        MassStore::create_with_wal(
            Box::new(MemoryPager::new()),
            64,
            Box::new(MemWalBackend::new()),
            FsyncPolicy::Never,
        )
        .unwrap()
    }

    #[test]
    fn ring_retention_moves_the_floor() {
        let log = ReplicationLog::new(4, 0);
        let frames: Vec<_> = (1..=6u64).map(|l| (l, Arc::new(vec![l as u8]))).collect();
        log.publish(&frames);
        let s = log.stats();
        assert_eq!((s.floor_lsn, s.last_lsn, s.retained), (2, 6, 4));
        // Below the floor: snapshot required.
        assert!(log.frames_after(1, 100).is_none());
        // At the floor: the retained tail streams.
        let tail = log.frames_after(2, 100).unwrap();
        assert_eq!(
            tail.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            [3, 4, 5, 6]
        );
        assert!(log.frames_after(6, 100).unwrap().is_empty());
    }

    #[test]
    fn commits_and_loads_enter_the_ring() {
        let mut primary = durable_store();
        let log = primary.attach_replication(1024).unwrap();
        primary.load_xml("d", "<r><a/></r>").unwrap();
        let after_load = log.stats();
        assert!(after_load.retained >= 2, "load + commit frames retained");
        let root = {
            let id = primary.name_id("r").unwrap();
            vamana_flex::FlexKey::from_flat(
                primary
                    .name_index()
                    .elements(id)
                    .iter()
                    .next()
                    .unwrap()
                    .to_vec(),
            )
        };
        primary.append_element(&root, "b").unwrap();
        assert_eq!(log.stats().last_lsn, primary.replicated_lsn());
        // A checkpoint truncates the file log but not the ring.
        primary.checkpoint().unwrap();
        assert_eq!(log.stats().last_lsn, after_load.last_lsn + 2);
        assert!(log.frames_after(0, 100).is_some());
    }

    #[test]
    fn apply_replicated_reproduces_the_primary() {
        let mut primary = durable_store();
        let log = primary.attach_replication(1024).unwrap();
        primary.load_xml("d", "<r><a>1</a></r>").unwrap();
        let root = {
            let id = primary.name_id("r").unwrap();
            vamana_flex::FlexKey::from_flat(
                primary
                    .name_index()
                    .elements(id)
                    .iter()
                    .next()
                    .unwrap()
                    .to_vec(),
            )
        };
        let e = primary.append_element(&root, "b").unwrap();
        primary.append_text(&e, "two").unwrap();
        let a = {
            let id = primary.name_id("a").unwrap();
            vamana_flex::FlexKey::from_flat(
                primary
                    .name_index()
                    .elements(id)
                    .iter()
                    .next()
                    .unwrap()
                    .to_vec(),
            )
        };
        primary.delete_subtree(&a).unwrap();

        // Replay the ring on a fresh follower, batch by commit marker.
        let mut follower = durable_store();
        let mut batch: Vec<(u64, WalRecord)> = Vec::new();
        for (lsn, payload) in log.frames_after(0, usize::MAX).unwrap() {
            let rec = WalRecord::decode(&payload).unwrap();
            let is_commit = matches!(rec, WalRecord::Commit);
            batch.push((lsn, rec));
            if is_commit {
                follower.apply_replicated(&batch).unwrap();
                batch.clear();
            }
        }
        assert_eq!(follower.replicated_lsn(), primary.replicated_lsn());
        assert_eq!(follower.documents().len(), 1);
        let doc = follower.documents()[0].doc_key.clone();
        assert_eq!(
            crate::export::export_subtree_xml(&follower, &doc).unwrap(),
            crate::export::export_subtree_xml(&primary, &primary.documents()[0].doc_key.clone())
                .unwrap()
        );
        assert_eq!(follower.stats().tuples, primary.stats().tuples);
        // Plan-cache hook: the replicated writes bumped the doc generation.
        assert!(follower.doc_generation(crate::store::DocId(0)) > 0);
        // Re-applying the same batch after "reconnect overlap" is rejected
        // by LSN contiguity, not silently double-applied.
        let overlap: Vec<(u64, WalRecord)> = log
            .frames_after(0, usize::MAX)
            .unwrap()
            .into_iter()
            .map(|(l, p)| (l, WalRecord::decode(&p).unwrap()))
            .collect();
        assert!(follower.apply_replicated(&overlap).is_err());
        assert_eq!(follower.replicated_lsn(), primary.replicated_lsn());
    }

    #[test]
    fn rebase_replica_accepts_primary_numbering() {
        let mut follower = durable_store();
        follower.load_xml("d", "<r/>").unwrap();
        follower.rebase_replica(100).unwrap();
        assert_eq!(follower.replicated_lsn(), 100);
        let batch = vec![
            (
                101,
                WalRecord::LoadDocument {
                    name: "x".into(),
                    xml: "<x/>".into(),
                },
            ),
            (102, WalRecord::Commit),
        ];
        assert_eq!(follower.apply_replicated(&batch).unwrap(), 102);
        assert!(follower.document_by_name("x").is_some());
    }
}
