//! The name (node-test) index.
//!
//! For every interned name MASS keeps the sorted list of FLEX keys of the
//! elements (and, separately, attributes) bearing that name, plus global
//! lists per node kind (text, comment, PI). Because the lists are sorted
//! in document order, the count of nodes satisfying a node test *within
//! any structural range* is two binary searches — the paper's "count on
//! the index level without going to data", which powers `COUNT(opᵢ)`.

use crate::names::NameId;
use vamana_flex::KeyRange;

/// A sorted (document-order) list of flat keys.
#[derive(Debug, Default, Clone)]
pub struct SortedKeys {
    keys: Vec<Vec<u8>>,
}

impl SortedKeys {
    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends a key that must sort after every existing key (bulk load).
    pub fn push_ordered(&mut self, flat: Vec<u8>) {
        debug_assert!(
            self.keys.last().is_none_or(|k| k < &flat),
            "out-of-order push"
        );
        self.keys.push(flat);
    }

    /// Inserts a key at its sorted position (update path). Duplicate
    /// inserts are ignored.
    pub fn insert(&mut self, flat: Vec<u8>) {
        if let Err(pos) = self.keys.binary_search(&flat) {
            self.keys.insert(pos, flat);
        }
    }

    /// Removes a key if present; returns whether it was there.
    pub fn remove(&mut self, flat: &[u8]) -> bool {
        match self.keys.binary_search_by(|k| k.as_slice().cmp(flat)) {
            Ok(pos) => {
                self.keys.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Index of the first key `>= flat`.
    pub fn lower_bound(&self, flat: &[u8]) -> usize {
        self.keys.partition_point(|k| k.as_slice() < flat)
    }

    /// Membership test — one binary search, no data access.
    pub fn contains(&self, flat: &[u8]) -> bool {
        self.keys
            .binary_search_by(|k| k.as_slice().cmp(flat))
            .is_ok()
    }

    /// Number of keys inside `range` — two binary searches, no data access.
    pub fn count_in(&self, range: &KeyRange) -> u64 {
        let lo = self.lower_bound(&range.lo);
        let hi = match &range.hi {
            Some(h) => self.keys.partition_point(|k| k.as_slice() < h.as_slice()),
            None => self.keys.len(),
        };
        hi.saturating_sub(lo) as u64
    }

    /// Iterator over the keys inside `range`, in document order.
    pub fn iter_in<'a>(&'a self, range: &KeyRange) -> impl Iterator<Item = &'a [u8]> + 'a {
        self.slice_in(range).iter().map(|k| k.as_slice())
    }

    /// Borrowed slice of the keys inside `range` (zero-copy scans).
    pub fn slice_in(&self, range: &KeyRange) -> &[Vec<u8>] {
        let lo = self.lower_bound(&range.lo);
        let hi = match &range.hi {
            Some(h) => self.keys.partition_point(|k| k.as_slice() < h.as_slice()),
            None => self.keys.len(),
        };
        &self.keys[lo..hi]
    }

    /// All keys, in document order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.keys.iter().map(|k| k.as_slice())
    }
}

/// Per-name and per-kind key lists.
#[derive(Debug, Default, Clone)]
pub struct NameIndex {
    elements: Vec<SortedKeys>,
    attributes: Vec<SortedKeys>,
    all_elements: SortedKeys,
    text: SortedKeys,
    comments: SortedKeys,
    pis: SortedKeys,
}

impl NameIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(list: &mut Vec<SortedKeys>, name: NameId) -> &mut SortedKeys {
        let idx = name.0 as usize;
        if list.len() <= idx {
            list.resize_with(idx + 1, SortedKeys::default);
        }
        &mut list[idx]
    }

    /// Element list for `name` (empty if never seen).
    pub fn elements(&self, name: NameId) -> &SortedKeys {
        static EMPTY: SortedKeys = SortedKeys { keys: Vec::new() };
        self.elements.get(name.0 as usize).unwrap_or(&EMPTY)
    }

    /// Attribute list for `name`.
    pub fn attributes(&self, name: NameId) -> &SortedKeys {
        static EMPTY: SortedKeys = SortedKeys { keys: Vec::new() };
        self.attributes.get(name.0 as usize).unwrap_or(&EMPTY)
    }

    /// Keys of *all* elements regardless of name (wildcard node tests).
    pub fn all_elements(&self) -> &SortedKeys {
        &self.all_elements
    }

    /// All text-node keys.
    pub fn text(&self) -> &SortedKeys {
        &self.text
    }

    /// All comment keys.
    pub fn comments(&self) -> &SortedKeys {
        &self.comments
    }

    /// All processing-instruction keys.
    pub fn pis(&self) -> &SortedKeys {
        &self.pis
    }

    /// Mutable element list (loader/update path).
    pub fn elements_mut(&mut self, name: NameId) -> &mut SortedKeys {
        Self::slot(&mut self.elements, name)
    }

    /// Mutable all-elements list.
    pub fn all_elements_mut(&mut self) -> &mut SortedKeys {
        &mut self.all_elements
    }

    /// Mutable attribute list.
    pub fn attributes_mut(&mut self, name: NameId) -> &mut SortedKeys {
        Self::slot(&mut self.attributes, name)
    }

    /// Mutable text list.
    pub fn text_mut(&mut self) -> &mut SortedKeys {
        &mut self.text
    }

    /// Mutable comment list.
    pub fn comments_mut(&mut self) -> &mut SortedKeys {
        &mut self.comments
    }

    /// Mutable PI list.
    pub fn pis_mut(&mut self) -> &mut SortedKeys {
        &mut self.pis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vamana_flex::{seq_label, FlexKey};

    fn key(path: &[u64]) -> FlexKey {
        let mut k = FlexKey::root();
        for &i in path {
            k = k.child(&seq_label(i));
        }
        k
    }

    fn flat(path: &[u64]) -> Vec<u8> {
        key(path).into_flat()
    }

    #[test]
    fn count_in_subtree_range() {
        let mut s = SortedKeys::default();
        for p in [&[0, 0][..], &[0, 1], &[0, 1, 2], &[0, 2], &[1, 0]] {
            s.push_ordered(flat(p));
        }
        let r = KeyRange::subtree(&key(&[0, 1]));
        assert_eq!(s.count_in(&r), 2); // [0,1] and [0,1,2]
        assert_eq!(s.count_in(&KeyRange::all()), 5);
        assert_eq!(s.count_in(&KeyRange::subtree(&key(&[7]))), 0);
    }

    #[test]
    fn iter_in_matches_count() {
        let mut s = SortedKeys::default();
        for i in 0..50 {
            s.push_ordered(flat(&[i / 10, i % 10]));
        }
        let r = KeyRange::subtree(&key(&[2]));
        let items: Vec<_> = s.iter_in(&r).collect();
        assert_eq!(items.len() as u64, s.count_in(&r));
        assert_eq!(items.len(), 10);
    }

    #[test]
    fn insert_and_remove_keep_order() {
        let mut s = SortedKeys::default();
        s.push_ordered(flat(&[0]));
        s.push_ordered(flat(&[2]));
        s.insert(flat(&[1]));
        let keys: Vec<_> = s.iter().map(|k| k.to_vec()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(s.remove(&flat(&[1])));
        assert!(!s.remove(&flat(&[1])));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut s = SortedKeys::default();
        s.insert(flat(&[3]));
        s.insert(flat(&[3]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn name_index_separates_elements_and_attributes() {
        let mut idx = NameIndex::new();
        let name = NameId(0);
        idx.elements_mut(name).push_ordered(flat(&[0]));
        idx.attributes_mut(name).push_ordered(flat(&[0, 0]));
        assert_eq!(idx.elements(name).len(), 1);
        assert_eq!(idx.attributes(name).len(), 1);
        // Unknown names resolve to the empty list, not a panic.
        assert_eq!(idx.elements(NameId(99)).len(), 0);
    }

    #[test]
    fn kind_lists_are_independent() {
        let mut idx = NameIndex::new();
        idx.text_mut().push_ordered(flat(&[0, 0]));
        idx.comments_mut().push_ordered(flat(&[0, 1]));
        idx.pis_mut().push_ordered(flat(&[0, 2]));
        assert_eq!(idx.text().len(), 1);
        assert_eq!(idx.comments().len(), 1);
        assert_eq!(idx.pis().len(), 1);
    }
}
