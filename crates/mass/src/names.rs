//! Interned element/attribute names.
//!
//! Every distinct name in the store maps to a dense [`NameId`]; records
//! carry ids, and the name index is keyed by id. Interning makes node-test
//! comparison an integer compare and keeps records small.

use std::collections::HashMap;

/// Dense identifier of an interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// Sentinel encoded in records that have no name (text, comments).
    pub(crate) const NONE_RAW: u32 = u32::MAX;
}

/// Bidirectional name ↔ id table.
#[derive(Debug, Default, Clone)]
pub struct NameTable {
    by_name: HashMap<Box<str>, NameId>,
    by_id: Vec<Box<str>>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = NameId(self.by_id.len() as u32);
        self.by_id.push(name.into());
        self.by_name.insert(name.into(), id);
        id
    }

    /// Looks up an id without interning.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.by_name.get(name).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.by_id[id.0 as usize]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if no names are interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("person");
        let b = t.intern("person");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_resolve() {
        let mut t = NameTable::new();
        let p = t.intern("person");
        let n = t.intern("name");
        assert_eq!(p, NameId(0));
        assert_eq!(n, NameId(1));
        assert_eq!(t.resolve(p), "person");
        assert_eq!(t.resolve(n), "name");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = NameTable::new();
        assert_eq!(t.lookup("absent"), None);
        t.intern("present");
        assert!(t.lookup("present").is_some());
        assert_eq!(t.len(), 1);
    }
}
