//! Buffer pool: a sharded LRU cache of decoded pages over a [`PageStore`].
//!
//! The pool is the unit of "I/O" in experiments: hits and misses are
//! counted so benchmarks can report how much of a document a query plan
//! actually touched — the paper's index-only plans read only a fraction of
//! the pages a scan would.
//!
//! Concurrency: the cache is split into [`SHARDS`] independent
//! mutex-protected shards selected by `page_id % SHARDS`, so concurrent
//! readers hitting different pages do not serialize on one lock (the
//! serving layer in `vamana-server` runs many queries against one pool).
//! Counters live inside their shard and are merged on read, which keeps
//! [`BufferStats`] exact under any interleaving. Only the backing
//! [`PageStore`] keeps a single lock: it is the simulated disk, touched
//! only on misses and writes.

use crate::compress::StoreFormat;
use crate::error::Result;
use crate::page::Page;
use crate::pager::PageStore;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of independent LRU shards. A small power of two: enough to
/// spread contention across a worker pool without fragmenting capacity.
pub const SHARDS: usize = 8;

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that went to the backing store.
    pub misses: u64,
    /// Page images written back.
    pub writes: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Pages pinned once by a batched scan (see
    /// [`crate::cursor::MassCursor::next_batch`]).
    pub batch_pins: u64,
    /// Per-record pool entries a batched scan avoided: records decoded
    /// beyond the first under a single pin. `pins_saved / batch_pins` is
    /// the average amortization factor of the batched pipeline.
    pub pins_saved: u64,
    /// Misses that decoded an uncompressed (v1) page image.
    pub decodes_v1: u64,
    /// Misses that decoded a compressed (v2) page image.
    pub decodes_v2: u64,
    /// Page images written in the uncompressed format.
    pub writes_v1: u64,
    /// Page images written front-coded (v2).
    pub writes_v2: u64,
    /// V2 pages whose compressed image did not fit and were written
    /// uncompressed instead (the overflow rule).
    pub format_fallbacks: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; 0 when nothing was requested.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Shard {
    /// page id → (page, last-used stamp). Stamps are updated in place on
    /// hits (O(1)); eviction scans for the minimum stamp, which is cheap
    /// because eviction only happens when the working set outgrows the
    /// shard.
    cache: HashMap<u32, (Arc<Page>, u64)>,
    clock: u64,
    stats: BufferStats,
}

/// Write-through sharded LRU buffer pool.
pub struct BufferPool {
    store: Mutex<Box<dyn PageStore>>,
    shards: [Mutex<Shard>; SHARDS],
    /// Per-shard page capacity (total capacity / SHARDS, at least 1).
    shard_capacity: usize,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &(self.shard_capacity * SHARDS))
            .field("shards", &SHARDS)
            .finish_non_exhaustive()
    }
}

/// Std mutexes poison on panic; the pool holds plain data, so a panicked
/// holder leaves nothing half-updated that the next holder could trip on.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl BufferPool {
    /// Default number of cached pages (8 MiB of 8 KiB pages).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Wraps `store` with a pool caching up to `capacity` pages.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        BufferPool {
            store: Mutex::new(store),
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            shard_capacity: (capacity.max(1)).div_ceil(SHARDS),
        }
    }

    fn shard(&self, id: u32) -> &Mutex<Shard> {
        &self.shards[id as usize % SHARDS]
    }

    /// Fetches page `id`, reading it from the store on a miss.
    pub fn get(&self, id: u32) -> Result<Arc<Page>> {
        {
            let mut shard = lock(self.shard(id));
            shard.clock += 1;
            let clock = shard.clock;
            if let Some((page, stamp)) = shard.cache.get_mut(&id) {
                *stamp = clock;
                let page = page.clone();
                shard.stats.hits += 1;
                return Ok(page);
            }
            shard.stats.misses += 1;
        }
        // Read outside the shard lock; re-acquire to install. Two racing
        // readers may both miss and read — the second install wins, which
        // is correct (pages are immutable snapshots) and keeps counters
        // honest about actual store reads.
        let image = lock(&self.store).read_page(id)?;
        let page = Arc::new(Page::decode(&image, id)?);
        {
            let mut shard = lock(self.shard(id));
            match page.format() {
                StoreFormat::V1 => shard.stats.decodes_v1 += 1,
                StoreFormat::V2 => shard.stats.decodes_v2 += 1,
            }
        }
        self.install(id, page.clone());
        Ok(page)
    }

    fn install(&self, id: u32, page: Arc<Page>) {
        let mut shard = lock(self.shard(id));
        shard.clock += 1;
        let stamp = shard.clock;
        shard.cache.insert(id, (page, stamp));
        while shard.cache.len() > self.shard_capacity {
            // Evict the least-recently-used entry (linear scan — rare).
            let victim = shard
                .cache
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(id, _)| *id);
            match victim {
                Some(v) => {
                    shard.cache.remove(&v);
                    shard.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Records one batched scan over page `id` that examined `scanned`
    /// records under a single pin. Counted in the page's own shard so
    /// concurrent batched scans do not serialize on one counter lock.
    pub(crate) fn note_batch(&self, id: u32, scanned: u64) {
        let mut shard = lock(self.shard(id));
        shard.stats.batch_pins += 1;
        shard.stats.pins_saved += scanned.saturating_sub(1);
    }

    /// Writes `page` through to the store and refreshes the cache,
    /// returning the format actually written (a v2 page whose compressed
    /// image does not fit falls back to v1 — the overflow rule).
    pub fn put(&self, id: u32, page: Page) -> Result<StoreFormat> {
        let (image, written) = page.encode_with_format()?;
        lock(&self.store).write_page(id, &image)?;
        {
            let mut shard = lock(self.shard(id));
            shard.stats.writes += 1;
            match written {
                StoreFormat::V1 => shard.stats.writes_v1 += 1,
                StoreFormat::V2 => shard.stats.writes_v2 += 1,
            }
            if written != page.format() {
                shard.stats.format_fallbacks += 1;
            }
        }
        self.install(id, Arc::new(page));
        Ok(written)
    }

    /// Allocates a new page id in the backing store.
    pub fn allocate(&self) -> Result<u32> {
        lock(&self.store).allocate()
    }

    /// Number of pages in the backing store.
    pub fn page_count(&self) -> u32 {
        lock(&self.store).page_count()
    }

    /// Appends to the blob heap.
    pub fn append_blob(&self, bytes: &[u8]) -> Result<u64> {
        lock(&self.store).append_blob(bytes)
    }

    /// Reads from the blob heap.
    pub fn read_blob(&self, offset: u64, len: u32) -> Result<Vec<u8>> {
        lock(&self.store).read_blob(offset, len)
    }

    /// Persists the catalog image.
    pub fn write_catalog(&self, bytes: &[u8]) -> Result<()> {
        lock(&self.store).write_catalog(bytes)
    }

    /// Reads the catalog image (empty if never written).
    pub fn read_catalog(&self) -> Result<Vec<u8>> {
        lock(&self.store).read_catalog()
    }

    /// Flushes all previously written pages/blobs to durable storage.
    pub fn sync(&self) -> Result<()> {
        lock(&self.store).sync()
    }

    /// Snapshot of the pool counters, merged across shards. Each shard's
    /// counters are read under its lock, so the totals never tear a
    /// single-shard update; concurrent activity on *other* shards may be
    /// included or not, as with any moment-in-time snapshot.
    pub fn stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for shard in &self.shards {
            let s = lock(shard).stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.writes += s.writes;
            total.evictions += s.evictions;
            total.batch_pins += s.batch_pins;
            total.pins_saved += s.pins_saved;
            total.decodes_v1 += s.decodes_v1;
            total.decodes_v2 += s.decodes_v2;
            total.writes_v1 += s.writes_v1;
            total.writes_v2 += s.writes_v2;
            total.format_fallbacks += s.format_fallbacks;
        }
        total
    }

    /// Cheap two-counter snapshot for per-operator instrumentation:
    /// `(probes, batch_pins)`, where probes = page requests
    /// (hits + misses). Reads two counters per shard instead of the full
    /// [`BufferStats`] merge, so `EXPLAIN ANALYZE` can take before/after
    /// deltas around every batch without measurably perturbing the run.
    pub fn probe_pin_counts(&self) -> (u64, u64) {
        let mut probes = 0;
        let mut pins = 0;
        for shard in &self.shards {
            let s = &lock(shard).stats;
            probes += s.hits + s.misses;
            pins += s.batch_pins;
        }
        (probes, pins)
    }

    /// Resets the counters (not the cache) — used between benchmark runs.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            lock(shard).stats = BufferStats::default();
        }
    }

    /// Drops every cached page (cold-cache benchmarking).
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            lock(shard).cache.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NameId;
    use crate::pager::MemoryPager;
    use crate::record::NodeRecord;
    use vamana_flex::{seq_label, FlexKey};

    fn page_with(i: u64) -> Page {
        let mut p = Page::new();
        p.append(NodeRecord::element(
            FlexKey::root().child(&seq_label(i)),
            NameId(i as u32),
        ))
        .unwrap();
        p
    }

    fn pool(capacity: usize, pages: u32) -> BufferPool {
        let pool = BufferPool::new(Box::new(MemoryPager::new()), capacity);
        for i in 0..pages {
            let id = pool.allocate().unwrap();
            pool.put(id, page_with(i as u64)).unwrap();
        }
        pool.reset_stats();
        pool
    }

    #[test]
    fn get_after_put_hits_cache() {
        let pool = pool(8, 2);
        pool.get(0).unwrap();
        pool.get(0).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn cold_read_is_a_miss_then_hits() {
        let pool = pool(8, 2);
        pool.clear_cache();
        pool.get(1).unwrap();
        pool.get(1).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eviction_respects_lru_order_within_a_shard() {
        // Page ids a shard apart land in the same shard, so a 1-per-shard
        // capacity forces LRU eviction among them.
        let pool = pool(1, 0);
        let ids = [0u32, SHARDS as u32, 2 * SHARDS as u32];
        // Allocate enough backing pages to cover the ids used.
        for i in 0..=(2 * SHARDS as u32) {
            let id = pool.allocate().unwrap();
            pool.put(id, page_with(i as u64)).unwrap();
        }
        pool.clear_cache();
        pool.reset_stats();
        pool.get(ids[0]).unwrap();
        pool.get(ids[1]).unwrap(); // evicts ids[0] (capacity 1 per shard)
        pool.get(ids[0]).unwrap(); // miss again
        let s = pool.stats();
        assert_eq!(s.misses, 3);
        assert!(s.evictions >= 2);
    }

    #[test]
    fn put_writes_through() {
        let pool = pool(2, 1);
        pool.put(0, page_with(42)).unwrap();
        pool.clear_cache();
        let p = pool.get(0).unwrap();
        assert_eq!(p.records()[0].name, Some(NameId(42)));
    }

    #[test]
    fn blob_round_trip_through_pool() {
        let pool = pool(2, 0);
        let off = pool.append_blob(b"overflow value").unwrap();
        assert_eq!(pool.read_blob(off, 14).unwrap(), b"overflow value");
    }

    #[test]
    fn eviction_counter_increments() {
        let pool = pool(1, 0);
        // Three pages in one shard with room for one.
        for i in 0..=(2 * SHARDS as u32) {
            let id = pool.allocate().unwrap();
            pool.put(id, page_with(i as u64)).unwrap();
        }
        pool.clear_cache();
        pool.reset_stats();
        pool.get(0).unwrap();
        pool.get(SHARDS as u32).unwrap();
        pool.get(2 * SHARDS as u32).unwrap();
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn stats_are_exact_under_concurrent_readers() {
        let pool = pool(64, 16);
        pool.clear_cache();
        pool.reset_stats();
        let threads = 8;
        let rounds = 200u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..rounds {
                        pool.get(((t + i) % 16) as u32).unwrap();
                    }
                });
            }
        });
        let s = pool.stats();
        // Every single get is accounted for: hits + misses add up exactly.
        assert_eq!(s.hits + s.misses, threads * rounds);
        // All 16 pages were cold at most once per shard-install race.
        assert!(s.misses >= 16);
    }
}
