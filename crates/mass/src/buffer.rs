//! Buffer pool: an LRU cache of decoded pages over a [`PageStore`].
//!
//! The pool is the unit of "I/O" in experiments: hits and misses are
//! counted so benchmarks can report how much of a document a query plan
//! actually touched — the paper's index-only plans read only a fraction of
//! the pages a scan would.

use crate::error::Result;
use crate::page::Page;
use crate::pager::PageStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that went to the backing store.
    pub misses: u64,
    /// Page images written back.
    pub writes: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; 0 when nothing was requested.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct PoolInner {
    /// page id → (page, last-used stamp). Stamps are updated in place on
    /// hits (O(1)); eviction scans for the minimum stamp, which is cheap
    /// because eviction only happens when the working set outgrows the
    /// pool.
    cache: HashMap<u32, (Arc<Page>, u64)>,
    clock: u64,
    stats: BufferStats,
}

/// Write-through LRU buffer pool.
pub struct BufferPool {
    store: Mutex<Box<dyn PageStore>>,
    inner: Mutex<PoolInner>,
    capacity: usize,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl BufferPool {
    /// Default number of cached pages (8 MiB of 8 KiB pages).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Wraps `store` with a pool caching up to `capacity` pages.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        BufferPool {
            store: Mutex::new(store),
            inner: Mutex::new(PoolInner {
                cache: HashMap::new(),
                clock: 0,
                stats: BufferStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Fetches page `id`, reading it from the store on a miss.
    pub fn get(&self, id: u32) -> Result<Arc<Page>> {
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some((page, stamp)) = inner.cache.get_mut(&id) {
                *stamp = clock;
                let page = page.clone();
                inner.stats.hits += 1;
                return Ok(page);
            }
            inner.stats.misses += 1;
        }
        // Read outside the cache lock's hot path; re-acquire to install.
        let image = self.store.lock().read_page(id)?;
        let page = Arc::new(Page::decode(&image, id)?);
        self.install(id, page.clone());
        Ok(page)
    }

    fn install(&self, id: u32, page: Arc<Page>) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        inner.cache.insert(id, (page, stamp));
        while inner.cache.len() > self.capacity {
            // Evict the least-recently-used entry (linear scan — rare).
            let victim = inner
                .cache
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(id, _)| *id);
            match victim {
                Some(v) => {
                    inner.cache.remove(&v);
                    inner.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Writes `page` through to the store and refreshes the cache.
    pub fn put(&self, id: u32, page: Page) -> Result<()> {
        let image = page.encode()?;
        self.store.lock().write_page(id, &image)?;
        self.inner.lock().stats.writes += 1;
        self.install(id, Arc::new(page));
        Ok(())
    }

    /// Allocates a new page id in the backing store.
    pub fn allocate(&self) -> Result<u32> {
        self.store.lock().allocate()
    }

    /// Number of pages in the backing store.
    pub fn page_count(&self) -> u32 {
        self.store.lock().page_count()
    }

    /// Appends to the blob heap.
    pub fn append_blob(&self, bytes: &[u8]) -> Result<u64> {
        self.store.lock().append_blob(bytes)
    }

    /// Reads from the blob heap.
    pub fn read_blob(&self, offset: u64, len: u32) -> Result<Vec<u8>> {
        self.store.lock().read_blob(offset, len)
    }

    /// Persists the catalog image.
    pub fn write_catalog(&self, bytes: &[u8]) -> Result<()> {
        self.store.lock().write_catalog(bytes)
    }

    /// Reads the catalog image (empty if never written).
    pub fn read_catalog(&self) -> Result<Vec<u8>> {
        self.store.lock().read_catalog()
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    /// Resets the counters (not the cache) — used between benchmark runs.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = BufferStats::default();
    }

    /// Drops every cached page (cold-cache benchmarking).
    pub fn clear_cache(&self) {
        let mut inner = self.inner.lock();
        inner.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NameId;
    use crate::pager::MemoryPager;
    use crate::record::NodeRecord;
    use vamana_flex::{seq_label, FlexKey};

    fn page_with(i: u64) -> Page {
        let mut p = Page::new();
        p.append(NodeRecord::element(
            FlexKey::root().child(&seq_label(i)),
            NameId(i as u32),
        ))
        .unwrap();
        p
    }

    fn pool(capacity: usize, pages: u32) -> BufferPool {
        let pool = BufferPool::new(Box::new(MemoryPager::new()), capacity);
        for i in 0..pages {
            let id = pool.allocate().unwrap();
            pool.put(id, page_with(i as u64)).unwrap();
        }
        pool.reset_stats();
        pool
    }

    #[test]
    fn get_after_put_hits_cache() {
        let pool = pool(8, 2);
        pool.get(0).unwrap();
        pool.get(0).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn cold_read_is_a_miss_then_hits() {
        let pool = pool(8, 2);
        pool.clear_cache();
        pool.get(1).unwrap();
        pool.get(1).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eviction_respects_lru_order() {
        let pool = pool(2, 3);
        pool.clear_cache();
        pool.get(0).unwrap();
        pool.get(1).unwrap();
        pool.get(0).unwrap(); // 0 is now most recent
        pool.get(2).unwrap(); // evicts 1
        pool.reset_stats();
        pool.get(0).unwrap(); // hit
        pool.get(1).unwrap(); // miss
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn put_writes_through() {
        let pool = pool(2, 1);
        pool.put(0, page_with(42)).unwrap();
        pool.clear_cache();
        let p = pool.get(0).unwrap();
        assert_eq!(p.records()[0].name, Some(NameId(42)));
    }

    #[test]
    fn blob_round_trip_through_pool() {
        let pool = pool(2, 0);
        let off = pool.append_blob(b"overflow value").unwrap();
        assert_eq!(pool.read_blob(off, 14).unwrap(), b"overflow value");
    }

    #[test]
    fn eviction_counter_increments() {
        let pool = pool(1, 3);
        pool.clear_cache();
        pool.reset_stats();
        pool.get(0).unwrap();
        pool.get(1).unwrap();
        pool.get(2).unwrap();
        assert_eq!(pool.stats().evictions, 2);
    }
}
