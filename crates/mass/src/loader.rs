//! Bulk loading of parsed XML documents into a [`MassStore`].
//!
//! The loader walks the document in pre-order, assigns FLEX keys with a
//! [`KeyGenerator`], packs records into pages append-only, and feeds the
//! name/value indexes in document order (cheap `push_ordered` instead of
//! sorted inserts).

use crate::error::{MassError, Result};
use crate::page::Page;
use crate::record::{NodeRecord, RecordKind};
use crate::store::{DocId, DocInfo, MassStore};
use vamana_flex::KeyGenerator;
use vamana_xml::{Document, NodeId, NodeKind};

impl MassStore {
    /// Loads `doc` under `name`, returning its id. Documents load after
    /// all previously loaded ones; their records never interleave.
    ///
    /// On durable stores the load is first logged as one
    /// [`crate::wal::WalRecord::LoadDocument`] record carrying the
    /// document's compact serialization — that is what replication
    /// streams to followers — and then checkpointed, so the local log
    /// stays shallow (the page file + catalog are the durable image,
    /// exactly as before; the replication ring retains the frame
    /// independently of the checkpoint's truncation).
    pub fn load_document(&mut self, name: &str, doc: &Document) -> Result<DocId> {
        if self.is_durable() {
            let xml = vamana_xml::write_document(doc, &vamana_xml::WriteOptions::default());
            self.log_records(&[crate::wal::WalRecord::LoadDocument {
                name: name.to_string(),
                xml,
            }])?;
        }
        let id = self.load_document_unlogged(name, doc)?;
        if self.is_durable() {
            self.checkpoint()?;
        }
        Ok(id)
    }

    /// The unlogged bulk load: key assignment, page packing, index
    /// feeding — no WAL traffic, no checkpoint. Keys depend only on the
    /// document structure and the load ordinal, so replaying the same
    /// documents in the same order (WAL recovery, replication snapshots)
    /// reproduces an identical key space.
    pub(crate) fn load_document_unlogged(&mut self, name: &str, doc: &Document) -> Result<DocId> {
        self.bump_generation();
        if self.format == crate::compress::StoreFormat::V2 {
            self.admit_dictionary_values(doc);
        }
        let ordinal = self.docs.len() as u64;
        let mut generator = KeyGenerator::new();
        // Skip ordinals already consumed by earlier documents.
        for _ in 0..ordinal {
            let k = generator.open_element();
            generator.close_element();
            debug_assert!(!k.is_root());
        }
        let doc_key = generator.open_element();
        let mut sink = PageSink::new(self);
        sink.emit(
            NodeRecord {
                key: doc_key.clone(),
                kind: RecordKind::Document,
                name: None,
                value: crate::record::ValueRef::None,
            },
            None,
        )?;

        // Iterative pre-order walk of the XML arena.
        enum Step {
            Enter(NodeId),
            Leave,
        }
        let mut stack: Vec<Step> = doc
            .children(Document::ROOT)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .map(Step::Enter)
            .collect();
        while let Some(step) = stack.pop() {
            match step {
                Step::Leave => generator.close_element(),
                Step::Enter(id) => match doc.kind(id) {
                    NodeKind::Element { name } => {
                        let name_id = sink.store.intern(name);
                        let key = generator.open_element();
                        sink.emit(NodeRecord::element(key, name_id), None)?;
                        // Attributes cluster directly after the element.
                        for attr in doc.attributes(id) {
                            let aname = doc.name(attr).expect("attribute has name");
                            let avalue = doc.value(attr).expect("attribute has value");
                            let aid = sink.store.intern(aname);
                            let akey = generator.attribute();
                            let vref = sink.store.make_value(avalue)?;
                            sink.emit(
                                NodeRecord {
                                    key: akey,
                                    kind: RecordKind::Attribute,
                                    name: Some(aid),
                                    value: vref,
                                },
                                Some(avalue.to_string()),
                            )?;
                        }
                        stack.push(Step::Leave);
                        let kids: Vec<_> = doc.children(id).collect();
                        for child in kids.into_iter().rev() {
                            stack.push(Step::Enter(child));
                        }
                    }
                    NodeKind::Text { value } => {
                        let key = generator.leaf();
                        let vref = sink.store.make_value(value)?;
                        sink.emit(
                            NodeRecord {
                                key,
                                kind: RecordKind::Text,
                                name: None,
                                value: vref,
                            },
                            Some(value.to_string()),
                        )?;
                    }
                    NodeKind::Comment { value } => {
                        let key = generator.leaf();
                        let vref = sink.store.make_value(value)?;
                        sink.emit(
                            NodeRecord {
                                key,
                                kind: RecordKind::Comment,
                                name: None,
                                value: vref,
                            },
                            None,
                        )?;
                    }
                    NodeKind::ProcessingInstruction { target, data } => {
                        let name_id = sink.store.intern(target);
                        let key = generator.leaf();
                        let vref = sink.store.make_value(data)?;
                        sink.emit(
                            NodeRecord {
                                key,
                                kind: RecordKind::Pi,
                                name: Some(name_id),
                                value: vref,
                            },
                            None,
                        )?;
                    }
                    NodeKind::Attribute { .. } => unreachable!("attributes are not children"),
                    NodeKind::Document => unreachable!("nested document node"),
                },
            }
        }
        sink.flush()?;
        self.docs.push(DocInfo {
            name: name.into(),
            doc_key,
        });
        self.doc_gens.push(0);
        Ok(DocId(ordinal as u32))
    }

    /// Admits `doc`'s hot values into the store dictionary: short
    /// text/attribute values occurring at least
    /// [`crate::compress::DICT_MIN_FREQ`] times, admitted in document
    /// order of first occurrence. Both passes depend only on the document
    /// and the dictionary's prior state, so WAL replay and replication
    /// (which re-run the same loads in the same order) reproduce the
    /// exact id sequence.
    fn admit_dictionary_values(&mut self, doc: &Document) {
        use std::collections::HashMap;
        let mut counts: HashMap<&str, u64> = HashMap::new();
        for_each_value(doc, &mut |v| {
            if !v.is_empty() && v.len() <= crate::compress::DICT_MAX_VALUE_LEN {
                *counts.entry(v).or_insert(0) += 1;
            }
        });
        for_each_value(doc, &mut |v| {
            if counts.get(v).copied().unwrap_or(0) >= crate::compress::DICT_MIN_FREQ {
                self.dict.intern(v);
            }
        });
    }

    /// Parses and loads XML text in one step.
    pub fn load_xml(&mut self, name: &str, xml: &str) -> Result<DocId> {
        let doc = vamana_xml::parse(xml)
            .map_err(|e| MassError::InvalidUpdate(format!("XML parse failed: {e}")))?;
        self.load_document(name, &doc)
    }
}

/// Walks every text and attribute value of `doc` in document order.
fn for_each_value<'d>(doc: &'d Document, f: &mut dyn FnMut(&'d str)) {
    let mut stack: Vec<NodeId> = doc.children(Document::ROOT).collect();
    stack.reverse();
    while let Some(id) = stack.pop() {
        match doc.kind(id) {
            NodeKind::Element { .. } => {
                for attr in doc.attributes(id) {
                    f(doc.value(attr).expect("attribute has value"));
                }
                let kids: Vec<_> = doc.children(id).collect();
                for child in kids.into_iter().rev() {
                    stack.push(child);
                }
            }
            NodeKind::Text { value } => f(value),
            _ => {}
        }
    }
}

/// Append-only page packer used during bulk load. Pages are created in
/// the store's format, so a v2 store bulk-loads compressed pages.
struct PageSink<'a> {
    store: &'a mut MassStore,
    page: Page,
}

impl<'a> PageSink<'a> {
    fn new(store: &'a mut MassStore) -> Self {
        let page = Page::new_with_format(store.format);
        PageSink { store, page }
    }

    fn emit(&mut self, rec: NodeRecord, value: Option<String>) -> Result<()> {
        if !self.page.fits_record(&rec) {
            if self.page.is_empty() {
                return Err(MassError::InvalidUpdate(format!(
                    "record of {} bytes exceeds page capacity (key too deep?)",
                    rec.encoded_len()
                )));
            }
            self.write_page()?;
        }
        self.store.index_record(&rec, value.as_deref(), true);
        self.page.append(rec)?;
        Ok(())
    }

    fn write_page(&mut self) -> Result<()> {
        let first = self
            .page
            .first_key()
            .expect("write_page on empty page")
            .to_vec();
        let id = self.store.allocate_page()?;
        let page = std::mem::replace(&mut self.page, Page::new_with_format(self.store.format));
        self.store.put_data_page(id, page)?;
        self.store.index.push((first, id));
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if !self.page.is_empty() {
            self.write_page()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::MassCursor;
    use vamana_flex::KeyRange;

    const PERSON: &str = r#"<site><people>
        <person id="person0"><name>Yung Flach</name><emailaddress>f@x.gr</emailaddress></person>
        <person id="person1"><name>Ann Smith</name></person>
    </people></site>"#;

    fn store_with(xml: &str) -> MassStore {
        let mut s = MassStore::open_memory();
        s.load_xml("test", xml).unwrap();
        s
    }

    #[test]
    fn load_registers_document() {
        let s = store_with(PERSON);
        assert_eq!(s.documents().len(), 1);
        let (_, info) = s.document_by_name("test").unwrap();
        assert_eq!(info.doc_key.level(), 1);
        assert!(s.contains(&info.doc_key).unwrap());
    }

    #[test]
    fn records_are_key_ordered_across_pages() {
        // Enough nodes to span several pages.
        let mut xml = String::from("<r>");
        for i in 0..5000 {
            xml.push_str(&format!("<e a='{i}'>{i}</e>"));
        }
        xml.push_str("</r>");
        let s = store_with(&xml);
        assert!(
            s.stats().pages > 3,
            "expected multiple pages, got {}",
            s.stats().pages
        );
        let mut cur = MassCursor::new(&s, KeyRange::all());
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0u64;
        while let Some(rec) = cur.next().unwrap() {
            let flat = rec.key.as_flat().to_vec();
            if let Some(p) = &prev {
                assert!(p < &flat, "cursor out of order");
            }
            prev = Some(flat);
            count += 1;
        }
        // doc + root + 5000 elements + 5000 attrs + 5000 texts
        assert_eq!(count, 2 + 15000);
        assert_eq!(s.stats().tuples, count);
    }

    #[test]
    fn name_index_counts_match_document() {
        let s = store_with(PERSON);
        let person = s.name_id("person").unwrap();
        let name = s.name_id("name").unwrap();
        let email = s.name_id("emailaddress").unwrap();
        assert_eq!(s.count_elements(person), 2);
        assert_eq!(s.count_elements(name), 2);
        assert_eq!(s.count_elements(email), 1);
        let id = s.name_id("id").unwrap();
        assert_eq!(s.count_attributes_in(id, &KeyRange::all()), 2);
        assert_eq!(s.count_text_in(&KeyRange::all()), 3);
    }

    #[test]
    fn value_index_counts_literals() {
        let s = store_with(PERSON);
        assert_eq!(s.text_count("Yung Flach"), 1);
        assert_eq!(s.text_count("Ann Smith"), 1);
        assert_eq!(s.text_count("person0"), 1); // attribute values too
        assert_eq!(s.text_count("Nobody"), 0);
    }

    #[test]
    fn string_value_concatenates_text() {
        let s = store_with(PERSON);
        let person = s.name_id("person").unwrap();
        let first = s
            .name_index()
            .elements(person)
            .iter()
            .next()
            .unwrap()
            .to_vec();
        let key = vamana_flex::FlexKey::from_flat(first);
        assert_eq!(s.string_value(&key).unwrap(), "Yung Flachf@x.gr");
    }

    #[test]
    fn get_fetches_by_key() {
        let s = store_with(PERSON);
        let name = s.name_id("name").unwrap();
        for flat in s.name_index().elements(name).iter() {
            let key = vamana_flex::FlexKey::from_flat(flat.to_vec());
            let rec = s.get(&key).unwrap().unwrap();
            assert_eq!(rec.kind, RecordKind::Element);
            assert_eq!(rec.name, Some(name));
        }
    }

    #[test]
    fn multiple_documents_do_not_interleave() {
        let mut s = MassStore::open_memory();
        let d0 = s.load_xml("a", "<a><x/></a>").unwrap();
        let d1 = s.load_xml("b", "<b><x/><x/></b>").unwrap();
        assert_ne!(d0, d1);
        let a = s.document(d0).unwrap().doc_key.clone();
        let b = s.document(d1).unwrap().doc_key.clone();
        assert!(a < b);
        let x = s.name_id("x").unwrap();
        assert_eq!(s.count_elements_in(x, &KeyRange::subtree(&a)), 1);
        assert_eq!(s.count_elements_in(x, &KeyRange::subtree(&b)), 2);
        assert_eq!(s.count_elements(x), 3);
        assert_eq!(s.document_of(&a), Some(d0));
    }

    #[test]
    fn long_values_overflow_to_blob_heap() {
        let long = "x".repeat(5000);
        let s = store_with(&format!("<r><t>{long}</t></r>"));
        let t_keys: Vec<_> = s.name_index().text().iter().map(|k| k.to_vec()).collect();
        assert_eq!(t_keys.len(), 1);
        let key = vamana_flex::FlexKey::from_flat(t_keys[0].clone());
        let rec = s.get(&key).unwrap().unwrap();
        assert!(matches!(
            rec.value,
            crate::record::ValueRef::Overflow { .. }
        ));
        assert_eq!(s.resolve_value(&rec).unwrap().unwrap(), long);
        // And the value index still counts it.
        assert_eq!(s.text_count(&long), 1);
    }

    #[test]
    fn cursor_seek_jumps_over_subtrees() {
        let s = store_with(PERSON);
        let person = s.name_id("person").unwrap();
        let people: Vec<_> = s
            .name_index()
            .elements(person)
            .iter()
            .map(|k| k.to_vec())
            .collect();
        let first = vamana_flex::FlexKey::from_flat(people[0].clone());
        let mut cur = MassCursor::new(&s, KeyRange::all());
        cur.seek(&first.subtree_upper().unwrap());
        let next = cur.next().unwrap().unwrap();
        assert_eq!(next.key.as_flat(), people[1].as_slice());
    }

    #[test]
    fn updates_keep_counts_fresh() {
        // The paper's claim: statistics stay accurate under updates
        // because they come from the index, not a cached histogram.
        let mut s = store_with(PERSON);
        let person = s.name_id("person").unwrap();
        assert_eq!(s.count_elements(person), 2);

        let people_key = {
            let people = s.name_id("people").unwrap();
            let flat = s
                .name_index()
                .elements(people)
                .iter()
                .next()
                .unwrap()
                .to_vec();
            vamana_flex::FlexKey::from_flat(flat)
        };
        let new_person = s.append_element(&people_key, "person").unwrap();
        assert_eq!(s.count_elements(person), 3);
        let name_key = s.append_element(&new_person, "name").unwrap();
        s.append_text(&name_key, "Zed Zombie").unwrap();
        assert_eq!(s.text_count("Zed Zombie"), 1);

        let removed = s.delete_subtree(&new_person).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(s.count_elements(person), 2);
        assert_eq!(s.text_count("Zed Zombie"), 0);
    }

    #[test]
    fn insert_between_siblings_keeps_order() {
        let mut s = store_with("<r><a/><b/></r>");
        let a_key = {
            let a = s.name_id("a").unwrap();
            vamana_flex::FlexKey::from_flat(
                s.name_index().elements(a).iter().next().unwrap().to_vec(),
            )
        };
        let mid = s.insert_element_after(&a_key, "m").unwrap();
        let b_key = {
            let b = s.name_id("b").unwrap();
            vamana_flex::FlexKey::from_flat(
                s.name_index().elements(b).iter().next().unwrap().to_vec(),
            )
        };
        assert!(a_key < mid && mid < b_key);
        // Cursor sees a, m, b in order.
        let mut cur = MassCursor::new(&s, KeyRange::descendants(&a_key.parent().unwrap()));
        let names: Vec<_> = std::iter::from_fn(|| cur.next().unwrap())
            .filter_map(|r| r.name.map(|n| s.names().resolve(n).to_string()))
            .collect();
        assert_eq!(names, vec!["a", "m", "b"]);
    }

    #[test]
    fn page_split_on_insert_preserves_scan() {
        // Fill one document, then insert enough new children to split pages.
        let mut xml = String::from("<r>");
        for i in 0..400 {
            xml.push_str(&format!("<e>{i}</e>"));
        }
        xml.push_str("</r>");
        let mut s = store_with(&xml);
        let r_key = {
            let r = s.name_id("r").unwrap();
            vamana_flex::FlexKey::from_flat(
                s.name_index().elements(r).iter().next().unwrap().to_vec(),
            )
        };
        let pages_before = s.stats().pages;
        for _ in 0..500 {
            s.append_element(&r_key, "late").unwrap();
        }
        assert!(s.stats().pages > pages_before, "inserts should split pages");
        // Order still holds end to end.
        let mut cur = MassCursor::new(&s, KeyRange::all());
        let mut prev: Option<Vec<u8>> = None;
        while let Some(rec) = cur.next().unwrap() {
            let flat = rec.key.as_flat().to_vec();
            if let Some(p) = &prev {
                assert!(p < &flat);
            }
            prev = Some(flat);
        }
        let late = s.name_id("late").unwrap();
        assert_eq!(s.count_elements(late), 500);
    }

    #[test]
    fn delete_entire_document_leaves_store_usable() {
        let mut s = MassStore::open_memory();
        s.load_xml("a", "<a><x/></a>").unwrap();
        s.load_xml("b", "<b><y/></b>").unwrap();
        let a_doc = s.documents()[0].doc_key.clone();
        s.delete_subtree(&a_doc).unwrap();
        let x = s.name_id("x").unwrap();
        let y = s.name_id("y").unwrap();
        assert_eq!(s.count_elements(x), 0);
        assert_eq!(s.count_elements(y), 1);
        let mut cur = MassCursor::new(&s, KeyRange::all());
        let mut seen = 0;
        while cur.next().unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 3); // doc b + <b> + <y>
    }
}

#[cfg(test)]
mod fragment_tests {
    use crate::cursor::MassCursor;
    use crate::store::MassStore;
    use vamana_flex::{FlexKey, KeyRange};

    fn store() -> MassStore {
        let mut s = MassStore::open_memory();
        s.load_xml(
            "d",
            "<site><people><person id='p0'><name>Ann</name></person></people></site>",
        )
        .unwrap();
        s
    }

    fn key_of(s: &MassStore, name: &str, i: usize) -> FlexKey {
        let id = s.name_id(name).unwrap();
        FlexKey::from_flat(s.name_index().elements(id).iter().nth(i).unwrap().to_vec())
    }

    #[test]
    fn append_fragment_inserts_whole_subtree() {
        let mut s = store();
        let people = key_of(&s, "people", 0);
        let new_person = s
            .append_fragment(
                &people,
                "<person id='p1'><name>Bob</name><watches><watch open_auction='oa1'/></watches></person>",
            )
            .unwrap();
        let person = s.name_id("person").unwrap();
        assert_eq!(s.count_elements(person), 2);
        assert_eq!(s.text_count("Bob"), 1);
        assert_eq!(s.text_count("oa1"), 1); // attribute value indexed
                                            // Exported XML matches the fragment.
        let xml = crate::export::export_subtree_xml(&s, &new_person).unwrap();
        assert_eq!(
            xml,
            "<person id=\"p1\"><name>Bob</name><watches><watch open_auction=\"oa1\"/></watches></person>"
        );
    }

    #[test]
    fn append_attribute_to_existing_element() {
        let mut s = store();
        let person = key_of(&s, "person", 0);
        s.append_attribute(&person, "vip", "yes").unwrap();
        let vip = s.name_id("vip").unwrap();
        assert_eq!(s.count_attributes_in(vip, &KeyRange::all()), 1);
        // The new attribute still clusters with the element, after the
        // existing `id` attribute.
        let xml = crate::export::export_subtree_xml(&s, &person).unwrap();
        assert!(xml.starts_with("<person id=\"p0\" vip=\"yes\">"), "{xml}");
    }

    #[test]
    fn fragment_with_no_root_is_rejected() {
        let mut s = store();
        let people = key_of(&s, "people", 0);
        assert!(s.append_fragment(&people, "no markup").is_err());
        assert!(s.append_fragment(&people, "<broken>").is_err());
    }

    #[test]
    fn fragment_ordering_is_after_existing_children() {
        let mut s = store();
        let people = key_of(&s, "people", 0);
        s.append_fragment(&people, "<person id='p1'><name>Zed</name></person>")
            .unwrap();
        let mut cur = MassCursor::new(&s, KeyRange::descendants(&people));
        let names: Vec<String> = std::iter::from_fn(|| cur.next().unwrap())
            .filter(|r| r.kind == crate::record::RecordKind::Text)
            .map(|r| s.resolve_value(&r).unwrap().unwrap())
            .collect();
        assert_eq!(names, vec!["Ann", "Zed"]);
    }
}
