//! Error type for the MASS storage structure.

use std::fmt;

/// Errors raised by storage and index operations.
#[derive(Debug)]
pub enum MassError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A page id was out of range or a page image was malformed.
    CorruptPage {
        /// The offending page id.
        page: u32,
        /// What was wrong with it.
        reason: String,
    },
    /// A record did not decode.
    CorruptRecord(String),
    /// The requested key does not exist in the store.
    KeyNotFound,
    /// A structural update was invalid (e.g. inserting under a missing
    /// parent, or between keys that are not adjacent siblings).
    InvalidUpdate(String),
    /// Sibling label space was exhausted during an insert.
    Label(vamana_flex::LabelError),
    /// A writer needed exclusive store access while readers still pinned
    /// it (the epoch gate timed out draining them).
    WriterConflict,
}

impl fmt::Display for MassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MassError::Io(e) => write!(f, "I/O error: {e}"),
            MassError::CorruptPage { page, reason } => {
                write!(f, "corrupt page {page}: {reason}")
            }
            MassError::CorruptRecord(r) => write!(f, "corrupt record: {r}"),
            MassError::KeyNotFound => write!(f, "key not found"),
            MassError::InvalidUpdate(r) => write!(f, "invalid update: {r}"),
            MassError::Label(e) => write!(f, "label allocation failed: {e}"),
            MassError::WriterConflict => {
                write!(f, "writer conflict: store pinned by active readers")
            }
        }
    }
}

impl std::error::Error for MassError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MassError::Io(e) => Some(e),
            MassError::Label(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MassError {
    fn from(e: std::io::Error) -> Self {
        MassError::Io(e)
    }
}

impl From<vamana_flex::LabelError> for MassError {
    fn from(e: vamana_flex::LabelError) -> Self {
        MassError::Label(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MassError>;
