//! Store-level statistics.
//!
//! These are the numbers the paper's cost estimator reads "directly from
//! the storage structure": page and tuple counts plus buffer-pool
//! behavior, and — for the compressed tier — per-format page counts and
//! the effective compression ratio. Name/value counts come from the
//! indexes and are exposed on [`crate::store::MassStore`] itself.

use crate::buffer::BufferStats;
use crate::compress::StoreFormat;
use crate::page::PAGE_SIZE;

/// A snapshot of storage statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreStats {
    /// Allocated pages in the clustered index.
    pub pages: u32,
    /// Stored node records (tuples).
    pub tuples: u64,
    /// Distinct interned names.
    pub distinct_names: usize,
    /// Distinct indexed string values.
    pub distinct_values: usize,
    /// Loaded documents.
    pub documents: usize,
    /// Buffer-pool counters since the last reset.
    pub buffer: BufferStats,
    /// Format new pages are written in.
    pub format: StoreFormat,
    /// Live pages whose on-disk image is front-coded (v2).
    pub compressed_pages: u32,
    /// Live pages whose on-disk image is uncompressed (v1).
    pub uncompressed_pages: u32,
    /// Entries in the value dictionary.
    pub dict_entries: usize,
    /// Sum of the v1 (uncompressed) encodings of every stored record —
    /// what the clustered index would occupy without compression.
    pub logical_bytes: u64,
}

impl StoreStats {
    /// Average tuples per page (0 when no pages).
    pub fn tuples_per_page(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.tuples as f64 / self.pages as f64
        }
    }

    /// On-disk bytes of the clustered index (live pages × page size).
    pub fn disk_bytes(&self) -> u64 {
        u64::from(self.pages) * PAGE_SIZE as u64
    }

    /// Effective compression ratio: uncompressed record bytes over
    /// on-disk bytes. 1.0± for v1 stores (page padding vs. fixed
    /// overhead), noticeably above 1 for v2 stores; 0 when empty.
    pub fn compression_ratio(&self) -> f64 {
        let disk = self.disk_bytes();
        if disk == 0 {
            0.0
        } else {
            self.logical_bytes as f64 / disk as f64
        }
    }

    /// On-disk bytes per stored tuple (0 when empty).
    pub fn bytes_per_tuple(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.disk_bytes() as f64 / self.tuples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> StoreStats {
        StoreStats {
            pages: 0,
            tuples: 0,
            distinct_names: 0,
            distinct_values: 0,
            documents: 0,
            buffer: BufferStats::default(),
            format: StoreFormat::V1,
            compressed_pages: 0,
            uncompressed_pages: 0,
            dict_entries: 0,
            logical_bytes: 0,
        }
    }

    #[test]
    fn tuples_per_page_handles_empty() {
        let s = base();
        assert_eq!(s.tuples_per_page(), 0.0);
        assert_eq!(s.disk_bytes(), 0);
        assert_eq!(s.compression_ratio(), 0.0);
        assert_eq!(s.bytes_per_tuple(), 0.0);
    }

    #[test]
    fn tuples_per_page_divides() {
        let s = StoreStats {
            pages: 4,
            tuples: 100,
            distinct_names: 1,
            distinct_values: 1,
            documents: 1,
            logical_bytes: 4 * PAGE_SIZE as u64 * 3,
            ..base()
        };
        assert_eq!(s.tuples_per_page(), 25.0);
        assert_eq!(s.disk_bytes(), 4 * PAGE_SIZE as u64);
        assert!((s.compression_ratio() - 3.0).abs() < 1e-9);
        assert!((s.bytes_per_tuple() - 4.0 * PAGE_SIZE as f64 / 100.0).abs() < 1e-9);
    }
}
