//! Store-level statistics.
//!
//! These are the numbers the paper's cost estimator reads "directly from
//! the storage structure": page and tuple counts plus buffer-pool
//! behavior. Name/value counts come from the indexes and are exposed on
//! [`crate::store::MassStore`] itself.

use crate::buffer::BufferStats;

/// A snapshot of storage statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreStats {
    /// Allocated pages in the clustered index.
    pub pages: u32,
    /// Stored node records (tuples).
    pub tuples: u64,
    /// Distinct interned names.
    pub distinct_names: usize,
    /// Distinct indexed string values.
    pub distinct_values: usize,
    /// Loaded documents.
    pub documents: usize,
    /// Buffer-pool counters since the last reset.
    pub buffer: BufferStats,
}

impl StoreStats {
    /// Average tuples per page (0 when no pages).
    pub fn tuples_per_page(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.tuples as f64 / self.pages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_per_page_handles_empty() {
        let s = StoreStats {
            pages: 0,
            tuples: 0,
            distinct_names: 0,
            distinct_values: 0,
            documents: 0,
            buffer: BufferStats::default(),
        };
        assert_eq!(s.tuples_per_page(), 0.0);
    }

    #[test]
    fn tuples_per_page_divides() {
        let s = StoreStats {
            pages: 4,
            tuples: 100,
            distinct_names: 1,
            distinct_values: 1,
            documents: 1,
            buffer: BufferStats::default(),
        };
        assert_eq!(s.tuples_per_page(), 25.0);
    }
}
