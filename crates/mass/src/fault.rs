//! Fault injection for crash-recovery testing.
//!
//! The harness models a crash as an *ordered write stream cut at the Nth
//! write*: a shared [`FaultClock`] is charged by every durable write
//! issued by the page store **and** the WAL backend; once the armed
//! budget is exhausted, page writes fail outright and WAL appends write
//! only a partial frame (a genuine torn tail) before failing. Everything
//! written before the cut survives in shared backing buffers
//! ([`SharedPager`], [`crate::wal::MemWalBackend`]) that outlive the
//! "crashed" store, so a test can drop the store mid-operation and
//! reopen from exactly the bytes a real crash would have left behind.

use crate::error::Result;
use crate::pager::{MemoryPager, PageStore};
use crate::wal::WalBackend;
use std::sync::{Arc, Mutex};

fn io_fault() -> crate::error::MassError {
    crate::error::MassError::Io(std::io::Error::other("injected write fault"))
}

#[derive(Debug, Default)]
struct ClockState {
    /// Remaining writes before the cut; `None` = unlimited (disarmed).
    budget: Option<u64>,
    /// Total writes charged while disarmed or within budget.
    writes: u64,
}

/// Shared write-budget counter. Disarmed it just counts (to size a crash
/// matrix); armed with `n`, the first `n` writes succeed and every later
/// one fails.
#[derive(Debug, Default)]
pub struct FaultClock(Mutex<ClockState>);

impl FaultClock {
    /// A fresh, disarmed clock.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arms the clock: the next `budget` writes succeed, later ones fail.
    pub fn arm(&self, budget: u64) {
        let mut s = self.0.lock().unwrap_or_else(|p| p.into_inner());
        s.budget = Some(budget);
        s.writes = 0;
    }

    /// Disarms the clock (all writes succeed again; recovery phase).
    pub fn disarm(&self) {
        let mut s = self.0.lock().unwrap_or_else(|p| p.into_inner());
        s.budget = None;
    }

    /// Writes charged since the last `arm`/reset.
    pub fn writes(&self) -> u64 {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).writes
    }

    /// Charges one write. Returns `false` when the budget is exhausted —
    /// the caller must fail (or tear) the write.
    fn charge(&self) -> bool {
        let mut s = self.0.lock().unwrap_or_else(|p| p.into_inner());
        match &mut s.budget {
            None => {
                s.writes += 1;
                true
            }
            Some(0) => false,
            Some(rem) => {
                *rem -= 1;
                s.writes += 1;
                true
            }
        }
    }
}

/// A [`MemoryPager`] behind an `Arc`, so the backing bytes survive the
/// store that writes them — the reopen half of a crash test reads the
/// same pages the crashed store wrote.
#[derive(Debug, Clone, Default)]
pub struct SharedPager(Arc<Mutex<MemoryPager>>);

impl SharedPager {
    /// A fresh empty shared pager.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoryPager> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl PageStore for SharedPager {
    fn read_page(&mut self, id: u32) -> Result<Vec<u8>> {
        self.lock().read_page(id)
    }
    fn write_page(&mut self, id: u32, image: &[u8]) -> Result<()> {
        self.lock().write_page(id, image)
    }
    fn allocate(&mut self) -> Result<u32> {
        self.lock().allocate()
    }
    fn page_count(&self) -> u32 {
        self.lock().page_count()
    }
    fn append_blob(&mut self, bytes: &[u8]) -> Result<u64> {
        self.lock().append_blob(bytes)
    }
    fn read_blob(&mut self, offset: u64, len: u32) -> Result<Vec<u8>> {
        self.lock().read_blob(offset, len)
    }
    fn write_catalog(&mut self, bytes: &[u8]) -> Result<()> {
        self.lock().write_catalog(bytes)
    }
    fn read_catalog(&mut self) -> Result<Vec<u8>> {
        self.lock().read_catalog()
    }
}

/// Page store wrapper that charges the clock on every durable write and
/// fails once the budget is gone. Reads are free (a crash loses no
/// already-written bytes in the ordered-write model).
pub struct FaultPager {
    inner: Box<dyn PageStore>,
    clock: Arc<FaultClock>,
}

impl FaultPager {
    /// Wraps `inner`, charging `clock` per write.
    pub fn new(inner: Box<dyn PageStore>, clock: Arc<FaultClock>) -> Self {
        FaultPager { inner, clock }
    }
}

impl PageStore for FaultPager {
    fn read_page(&mut self, id: u32) -> Result<Vec<u8>> {
        self.inner.read_page(id)
    }

    fn write_page(&mut self, id: u32, image: &[u8]) -> Result<()> {
        if !self.clock.charge() {
            return Err(io_fault());
        }
        self.inner.write_page(id, image)
    }

    fn allocate(&mut self) -> Result<u32> {
        if !self.clock.charge() {
            return Err(io_fault());
        }
        self.inner.allocate()
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn append_blob(&mut self, bytes: &[u8]) -> Result<u64> {
        if !self.clock.charge() {
            return Err(io_fault());
        }
        self.inner.append_blob(bytes)
    }

    fn read_blob(&mut self, offset: u64, len: u32) -> Result<Vec<u8>> {
        self.inner.read_blob(offset, len)
    }

    fn write_catalog(&mut self, bytes: &[u8]) -> Result<()> {
        if !self.clock.charge() {
            return Err(io_fault());
        }
        self.inner.write_catalog(bytes)
    }

    fn read_catalog(&mut self) -> Result<Vec<u8>> {
        self.inner.read_catalog()
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
}

/// WAL backend wrapper: the write that exhausts the budget appends only
/// *half* its bytes before failing — a genuine torn frame for recovery
/// to detect and truncate. Later writes fail without writing.
pub struct FaultWalBackend {
    inner: Box<dyn WalBackend>,
    clock: Arc<FaultClock>,
    torn: bool,
}

impl FaultWalBackend {
    /// Wraps `inner`, charging `clock` per append/truncate.
    pub fn new(inner: Box<dyn WalBackend>, clock: Arc<FaultClock>) -> Self {
        FaultWalBackend {
            inner,
            clock,
            torn: false,
        }
    }
}

impl WalBackend for FaultWalBackend {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        if !self.clock.charge() {
            if !self.torn {
                self.torn = true;
                let cut = bytes.len() / 2;
                let _ = self.inner.append(&bytes[..cut]);
            }
            return Err(io_fault());
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        if !self.clock.charge() {
            return Err(io_fault());
        }
        self.inner.truncate(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemWalBackend;

    #[test]
    fn clock_counts_when_disarmed_and_cuts_when_armed() {
        let clock = FaultClock::new();
        assert!(clock.charge() && clock.charge());
        assert_eq!(clock.writes(), 2);
        clock.arm(1);
        assert!(clock.charge());
        assert!(!clock.charge());
        assert!(!clock.charge(), "stays failed");
        clock.disarm();
        assert!(clock.charge());
    }

    #[test]
    fn fault_pager_fails_after_budget() {
        let clock = FaultClock::new();
        clock.arm(2);
        let mut p = FaultPager::new(Box::new(SharedPager::new()), Arc::clone(&clock));
        let a = p.allocate().unwrap(); // write 1
        p.write_page(a, &[0u8; crate::page::PAGE_SIZE]).unwrap(); // write 2
        assert!(p.write_page(a, &[0u8; crate::page::PAGE_SIZE]).is_err());
        assert!(p.read_page(a).is_ok(), "reads stay free");
    }

    #[test]
    fn fault_wal_tears_the_failing_append() {
        let clock = FaultClock::new();
        clock.arm(1);
        let shared = MemWalBackend::new();
        let mut w = FaultWalBackend::new(Box::new(shared.clone()), Arc::clone(&clock));
        w.append(&[1, 2, 3, 4]).unwrap();
        assert!(w.append(&[5, 6, 7, 8]).is_err());
        // Half of the failing write landed: a torn tail.
        assert_eq!(shared.len(), 4 + 2);
        assert!(w.append(&[9]).is_err());
        assert_eq!(shared.len(), 6, "later failed writes add nothing");
    }

    #[test]
    fn shared_pager_survives_writer_drop() {
        let shared = SharedPager::new();
        {
            let mut handle = shared.clone();
            let id = handle.allocate().unwrap();
            let mut img = vec![0u8; crate::page::PAGE_SIZE];
            img[0] = 7;
            handle.write_page(id, &img).unwrap();
        }
        let mut reader = shared;
        assert_eq!(reader.read_page(0).unwrap()[0], 7);
    }
}
