//! Index-based evaluation of all 13 XPath axes.
//!
//! [`axis_stream`] returns a lazy, document-order stream of the nodes
//! reachable from a context node along an axis, filtered by a node test.
//! Two evaluation strategies are chosen automatically:
//!
//! * **Name-driven** (node test is a name, or `text()`): iterate the name
//!   index inside the axis's key range and verify the structural relation
//!   from the key alone — *no data page is touched*. This is the
//!   index-only execution the paper contrasts with join-based engines.
//! * **Clustered scan** (wildcard/kind tests): scan the clustered index
//!   inside the axis range, using sibling jumps (`seek(subtree_upper)`)
//!   for `child` and the sibling axes so whole subtrees are skipped.

use crate::cursor::MassCursor;
use crate::error::Result;
use crate::names::NameId;
use crate::record::{NodeRecord, RecordKind};
use crate::store::MassStore;
use vamana_flex::{Axis, FlexKey, KeyRange};

/// A kind filter derived from an XPath node test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindFilter {
    /// `node()`
    Any,
    /// name test / `*` on a non-attribute axis
    Element,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()`
    Pi,
    /// name test / `*` on the attribute axis
    Attribute,
}

impl KindFilter {
    /// Whether a record of `kind` passes the filter.
    pub fn matches(self, kind: RecordKind) -> bool {
        match self {
            KindFilter::Any => kind != RecordKind::Document,
            KindFilter::Element => kind == RecordKind::Element,
            KindFilter::Text => kind == RecordKind::Text,
            KindFilter::Comment => kind == RecordKind::Comment,
            KindFilter::Pi => kind == RecordKind::Pi,
            KindFilter::Attribute => kind == RecordKind::Attribute,
        }
    }
}

/// A resolved node test: kind plus optional interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFilter {
    /// Kind constraint.
    pub kind: KindFilter,
    /// Name constraint (elements/attributes/PI targets).
    pub name: Option<NameId>,
}

impl NodeFilter {
    /// `node()`
    pub fn any() -> Self {
        NodeFilter {
            kind: KindFilter::Any,
            name: None,
        }
    }

    /// Element with `name`.
    pub fn element(name: NameId) -> Self {
        NodeFilter {
            kind: KindFilter::Element,
            name: Some(name),
        }
    }

    /// Any element (`*`).
    pub fn any_element() -> Self {
        NodeFilter {
            kind: KindFilter::Element,
            name: None,
        }
    }

    /// `text()`
    pub fn text() -> Self {
        NodeFilter {
            kind: KindFilter::Text,
            name: None,
        }
    }

    /// Attribute with `name`.
    pub fn attribute(name: NameId) -> Self {
        NodeFilter {
            kind: KindFilter::Attribute,
            name: Some(name),
        }
    }

    /// Whether `rec` passes kind and name constraints.
    pub fn matches(&self, rec: &NodeRecord) -> bool {
        self.matches_parts(rec.kind, rec.name)
    }

    /// Kind/name check without a record in hand.
    pub fn matches_parts(&self, kind: RecordKind, name: Option<NameId>) -> bool {
        self.kind.matches(kind) && self.name.is_none_or(|n| name == Some(n))
    }

    /// Whether an entry passes kind and name constraints.
    pub fn matches_entry(&self, entry: &NodeEntry) -> bool {
        self.matches_parts(entry.kind, entry.name)
    }
}

/// A lightweight node handle produced by axis evaluation: everything the
/// pipeline needs without materializing values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    /// Structural key.
    pub key: FlexKey,
    /// Node kind.
    pub kind: RecordKind,
    /// Interned name, if the node has one.
    pub name: Option<NameId>,
}

impl NodeEntry {
    /// Builds an entry from a stored record.
    pub fn from_record(rec: &NodeRecord) -> Self {
        NodeEntry {
            key: rec.key.clone(),
            kind: rec.kind,
            name: rec.name,
        }
    }
}

/// Structural verification applied to name-index candidates.
#[derive(Debug, Clone)]
enum StructVerify {
    /// Range membership is enough.
    None,
    /// Key level must equal this value (child / sibling axes).
    Level(usize),
    /// Key must not be an ancestor of the context (preceding axis).
    NotAncestorOf(FlexKey),
}

impl StructVerify {
    fn ok(&self, key: &FlexKey) -> bool {
        match self {
            StructVerify::None => true,
            StructVerify::Level(l) => key.level() == *l,
            StructVerify::NotAncestorOf(ctx) => !key.is_ancestor_of(ctx),
        }
    }
}

enum Inner<'a> {
    Empty,
    /// Pre-computed keys resolved by point lookups (self/parent/ancestor).
    Keys {
        store: &'a MassStore,
        keys: std::vec::IntoIter<FlexKey>,
        filter: NodeFilter,
    },
    /// Pre-computed keys verified by name-index membership — one binary
    /// search per key, no data page touched (index-only reverse axes).
    KeysIndexOnly {
        keys: std::vec::IntoIter<FlexKey>,
        list: &'a crate::name_index::SortedKeys,
        kind: RecordKind,
        name: NameId,
    },
    /// Name-index iteration with structural verification (index-only).
    /// Borrows the index's key slice directly — no copies.
    NameList {
        keys: &'a [Vec<u8>],
        pos: usize,
        kind: RecordKind,
        name: Option<NameId>,
        verify: StructVerify,
    },
    /// Clustered-index range scan.
    Scan {
        cursor: MassCursor<'a>,
        filter: NodeFilter,
        skip_attrs: bool,
        not_ancestor_of: Option<FlexKey>,
    },
    /// Clustered scan that jumps over subtrees (child / sibling axes).
    JumpScan {
        cursor: MassCursor<'a>,
        filter: NodeFilter,
        skip_attrs: bool,
    },
    /// Attribute scan: attributes cluster immediately after their element,
    /// so the scan stops at the first non-attribute record.
    AttrScan {
        cursor: MassCursor<'a>,
        filter: NodeFilter,
    },
    /// Fully materialized (namespace axis).
    Materialized {
        items: std::vec::IntoIter<NodeEntry>,
    },
}

/// Lazy stream of nodes along an axis. Pull with [`AxisStream::next`].
pub struct AxisStream<'a> {
    inner: Inner<'a>,
}

impl<'a> AxisStream<'a> {
    /// Pulls the next matching node in document order.
    #[allow(clippy::should_implement_trait)] // fallible, so not Iterator
    pub fn next(&mut self) -> Result<Option<NodeEntry>> {
        match &mut self.inner {
            Inner::Empty => Ok(None),
            Inner::Keys {
                store,
                keys,
                filter,
            } => {
                for key in keys.by_ref() {
                    if let Some(entry) = store.get_entry(&key)? {
                        if filter.matches_entry(&entry) {
                            return Ok(Some(entry));
                        }
                    }
                }
                Ok(None)
            }
            Inner::KeysIndexOnly {
                keys,
                list,
                kind,
                name,
            } => {
                for key in keys.by_ref() {
                    if list.contains(key.as_flat()) {
                        return Ok(Some(NodeEntry {
                            key,
                            kind: *kind,
                            name: Some(*name),
                        }));
                    }
                }
                Ok(None)
            }
            Inner::NameList {
                keys,
                pos,
                kind,
                name,
                verify,
            } => {
                while *pos < keys.len() {
                    let flat = &keys[*pos];
                    *pos += 1;
                    let key = FlexKey::from_flat(flat.clone());
                    if verify.ok(&key) {
                        return Ok(Some(NodeEntry {
                            key,
                            kind: *kind,
                            name: *name,
                        }));
                    }
                }
                Ok(None)
            }
            Inner::Scan {
                cursor,
                filter,
                skip_attrs,
                not_ancestor_of,
            } => {
                while let Some(entry) = cursor.next_entry()? {
                    if *skip_attrs && entry.kind == RecordKind::Attribute {
                        continue;
                    }
                    if let Some(ctx) = not_ancestor_of {
                        if entry.key.is_ancestor_of(ctx) {
                            continue;
                        }
                    }
                    if filter.matches_entry(&entry) {
                        return Ok(Some(entry));
                    }
                }
                Ok(None)
            }
            Inner::JumpScan {
                cursor,
                filter,
                skip_attrs,
            } => {
                loop {
                    let Some(entry) = cursor.next_entry()? else {
                        return Ok(None);
                    };
                    // Jump past this node's subtree so only siblings at
                    // the scan level are visited.
                    if let Some(upper) = entry.key.subtree_upper() {
                        cursor.seek(&upper);
                    }
                    if *skip_attrs && entry.kind == RecordKind::Attribute {
                        continue;
                    }
                    if filter.matches_entry(&entry) {
                        return Ok(Some(entry));
                    }
                }
            }
            Inner::AttrScan { cursor, filter } => {
                while let Some(entry) = cursor.next_entry()? {
                    if entry.kind != RecordKind::Attribute {
                        return Ok(None);
                    }
                    if filter.matches_entry(&entry) {
                        return Ok(Some(entry));
                    }
                }
                Ok(None)
            }
            Inner::Materialized { items } => Ok(items.next()),
        }
    }

    /// Pulls up to `max` matching nodes into `out`, returning how many
    /// were appended. A short (or zero) count means the stream is
    /// exhausted — callers may treat it as end-of-stream without another
    /// call.
    ///
    /// Clustered scans decode whole pinned pages in one pass
    /// ([`MassCursor::next_batch`]); sibling-jump scans resolve in-page
    /// jumps by binary search over the pinned records
    /// (`MassCursor::next_batch_jump`); name-index iteration fills the
    /// batch in a tight loop over the borrowed key slice. Point-lookup
    /// modes fall back to the scalar pull per entry — they still amortize
    /// the caller's per-tuple dispatch.
    pub fn next_batch(&mut self, out: &mut Vec<NodeEntry>, max: usize) -> Result<usize> {
        let start = out.len();
        match &mut self.inner {
            Inner::Empty => {}
            Inner::Scan {
                cursor,
                filter,
                skip_attrs,
                not_ancestor_of,
            } => {
                cursor.next_batch_filtered(
                    filter,
                    *skip_attrs,
                    not_ancestor_of.as_ref(),
                    out,
                    max,
                )?;
            }
            Inner::JumpScan {
                cursor,
                filter,
                skip_attrs,
            } => {
                cursor.next_batch_jump(filter, *skip_attrs, out, max)?;
            }
            Inner::NameList {
                keys,
                pos,
                kind,
                name,
                verify,
            } => {
                while *pos < keys.len() && out.len() - start < max {
                    let flat = &keys[*pos];
                    *pos += 1;
                    let key = FlexKey::from_flat(flat.clone());
                    if verify.ok(&key) {
                        out.push(NodeEntry {
                            key,
                            kind: *kind,
                            name: *name,
                        });
                    }
                }
            }
            Inner::Materialized { items } => {
                out.extend(items.by_ref().take(max));
            }
            // Keys / KeysIndexOnly / AttrScan: scalar pulls.
            // When the scalar pull reports exhaustion the stream flips to
            // `Empty`, so the short-count contract above holds even for
            // modes whose scalar `next` is not idempotent at end-of-stream
            // (AttrScan stops at the first non-attribute record).
            _ => {
                while out.len() - start < max {
                    match self.next()? {
                        Some(e) => out.push(e),
                        None => {
                            self.inner = Inner::Empty;
                            break;
                        }
                    }
                }
            }
        }
        Ok(out.len() - start)
    }

    /// Drains the stream into a vector (tests, reverse-axis
    /// materialization in the executor).
    pub fn collect(mut self) -> Result<Vec<NodeEntry>> {
        let mut out = Vec::new();
        while let Some(e) = self.next()? {
            out.push(e);
        }
        Ok(out)
    }

    fn empty() -> Self {
        AxisStream {
            inner: Inner::Empty,
        }
    }
}

/// Returns the document-order stream of nodes on `axis` from `ctx`,
/// filtered by `filter`.
///
/// `ctx_kind` disambiguates attribute contexts: per the XPath data model,
/// attribute nodes have no children or siblings, but they do have a
/// parent, ancestors, and `following`/`preceding` relative to document
/// order.
pub fn axis_stream<'a>(
    store: &'a MassStore,
    ctx: &FlexKey,
    ctx_kind: RecordKind,
    axis: Axis,
    filter: NodeFilter,
) -> Result<AxisStream<'a>> {
    let is_attr_ctx = ctx_kind == RecordKind::Attribute;
    let stream = match axis {
        Axis::SelfAxis => keys_stream(store, vec![ctx.clone()], filter),
        Axis::Parent => match ctx.parent() {
            Some(p) if !p.is_root() => keys_stream(store, vec![p], filter),
            _ => AxisStream::empty(),
        },
        Axis::Ancestor | Axis::AncestorOrSelf => {
            let mut keys = Vec::new();
            if axis == Axis::AncestorOrSelf {
                keys.push(ctx.clone());
            }
            let mut cur = ctx.clone();
            while let Some(p) = cur.parent() {
                if p.is_root() {
                    break;
                }
                keys.push(p.clone());
                cur = p;
            }
            keys.reverse(); // document order: outermost first
            keys_stream(store, keys, filter)
        }
        Axis::Child if is_attr_ctx => AxisStream::empty(),
        Axis::Child => ranged_stream(
            store,
            KeyRange::descendants(ctx),
            filter,
            Some(ctx.level() + 1),
            None,
            true,
        ),
        Axis::Descendant if is_attr_ctx => AxisStream::empty(),
        Axis::Descendant => {
            ranged_stream(store, KeyRange::descendants(ctx), filter, None, None, false)
        }
        Axis::DescendantOrSelf if is_attr_ctx => keys_stream(store, vec![ctx.clone()], filter),
        Axis::DescendantOrSelf => {
            ranged_stream(store, KeyRange::subtree(ctx), filter, None, None, false)
        }
        Axis::Following => {
            // Bounded by the end of the containing document.
            let doc_range = document_range(ctx);
            let range = KeyRange::following(ctx).intersect(&doc_range);
            ranged_stream(store, range, filter, None, None, false)
        }
        Axis::Preceding => {
            let doc_range = document_range(ctx);
            let range = KeyRange::before(ctx).intersect(&doc_range);
            ranged_stream(store, range, filter, None, Some(ctx.clone()), false)
        }
        Axis::FollowingSibling if is_attr_ctx => AxisStream::empty(),
        Axis::FollowingSibling => {
            let range = KeyRange::following_siblings(ctx);
            ranged_stream(store, range, filter, Some(ctx.level()), None, true)
        }
        Axis::PrecedingSibling if is_attr_ctx => AxisStream::empty(),
        Axis::PrecedingSibling => {
            let range = KeyRange::preceding_siblings(ctx);
            ranged_stream(store, range, filter, Some(ctx.level()), None, true)
        }
        Axis::Attribute if is_attr_ctx => AxisStream::empty(),
        Axis::Attribute => attribute_stream(store, ctx, filter),
        Axis::Namespace => namespace_stream(store, ctx, filter)?,
    };
    Ok(stream)
}

/// The stream a morsel-parallel worker runs over one sub-range of a
/// descendant(-or-self) axis: the same evaluation [`axis_stream`] picks
/// for those axes (name-driven index slice when the filter allows,
/// clustered batched scan otherwise), restricted to `range`.
///
/// Splitting the axis range with [`MassStore::partition_range`] and
/// concatenating the streams of the parts in order yields exactly the
/// sequence `axis_stream` produces over the whole range — the contract
/// the ordered merge in `vamana-core` relies on.
pub fn range_scan_stream(store: &MassStore, range: KeyRange, filter: NodeFilter) -> AxisStream<'_> {
    ranged_stream(store, range, filter, None, None, false)
}

/// The subtree range of the document containing `key` (or all documents
/// when `key` is the virtual super-root).
fn document_range(key: &FlexKey) -> KeyRange {
    match key.labels().next() {
        Some(first) => KeyRange::subtree(&FlexKey::root().child(first)),
        None => KeyRange::all(),
    }
}

fn keys_stream(store: &MassStore, keys: Vec<FlexKey>, filter: NodeFilter) -> AxisStream<'_> {
    // Named element/attribute tests verify by name-index membership —
    // pure key arithmetic plus binary searches, no page access.
    if let Some(name) = filter.name {
        let (list, kind) = match filter.kind {
            KindFilter::Element => (store.name_index().elements(name), RecordKind::Element),
            KindFilter::Attribute => (store.name_index().attributes(name), RecordKind::Attribute),
            _ => {
                return AxisStream {
                    inner: Inner::Keys {
                        store,
                        keys: keys.into_iter(),
                        filter,
                    },
                }
            }
        };
        return AxisStream {
            inner: Inner::KeysIndexOnly {
                keys: keys.into_iter(),
                list,
                kind,
                name,
            },
        };
    }
    AxisStream {
        inner: Inner::Keys {
            store,
            keys: keys.into_iter(),
            filter,
        },
    }
}

/// Chooses name-driven or clustered-scan evaluation for a ranged axis.
///
/// `level`: require this key level (child / sibling axes). `not_ancestor_of`:
/// exclude ancestors of this key (preceding axis). `jump`: use sibling
/// jumps on the clustered scan fallback.
fn ranged_stream<'a>(
    store: &'a MassStore,
    range: KeyRange,
    filter: NodeFilter,
    level: Option<usize>,
    not_ancestor_of: Option<FlexKey>,
    jump: bool,
) -> AxisStream<'a> {
    if range.is_empty() {
        return AxisStream::empty();
    }
    // Name-driven (index-only) path.
    let list = match (filter.kind, filter.name) {
        (KindFilter::Element, Some(name)) => Some((
            store.name_index().elements(name),
            RecordKind::Element,
            Some(name),
        )),
        (KindFilter::Attribute, Some(name)) => Some((
            store.name_index().attributes(name),
            RecordKind::Attribute,
            Some(name),
        )),
        (KindFilter::Text, None) => Some((store.name_index().text(), RecordKind::Text, None)),
        (KindFilter::Comment, None) => {
            Some((store.name_index().comments(), RecordKind::Comment, None))
        }
        _ => None,
    };
    if let Some((list, kind, name)) = list {
        let keys = list.slice_in(&range);
        let verify = match (&level, &not_ancestor_of) {
            (Some(l), _) => StructVerify::Level(*l),
            (None, Some(ctx)) => StructVerify::NotAncestorOf(ctx.clone()),
            (None, None) => StructVerify::None,
        };
        return AxisStream {
            inner: Inner::NameList {
                keys,
                pos: 0,
                kind,
                name,
                verify,
            },
        };
    }
    // Clustered scan path.
    let cursor = MassCursor::new(store, range);
    let skip_attrs = filter.kind != KindFilter::Attribute;
    if jump {
        AxisStream {
            inner: Inner::JumpScan {
                cursor,
                filter,
                skip_attrs,
            },
        }
    } else {
        AxisStream {
            inner: Inner::Scan {
                cursor,
                filter,
                skip_attrs,
                not_ancestor_of,
            },
        }
    }
}

/// Attribute axis: attributes cluster directly after the element record,
/// so a short bounded scan suffices; it stops at the first non-attribute.
fn attribute_stream<'a>(store: &'a MassStore, ctx: &FlexKey, filter: NodeFilter) -> AxisStream<'a> {
    // A name/`*` test on this axis selects attributes (its principal node
    // kind); an explicit kind test like `text()` is honored and matches
    // nothing, since the axis only contains attributes.
    let kind = match filter.kind {
        KindFilter::Element | KindFilter::Any => KindFilter::Attribute,
        other => other,
    };
    let filter = NodeFilter {
        kind,
        name: filter.name,
    };
    let cursor = MassCursor::new(store, KeyRange::descendants(ctx));
    AxisStream {
        inner: Inner::AttrScan { cursor, filter },
    }
}

/// Namespace axis: synthesized from `xmlns`/`xmlns:*` attributes in scope
/// (nearest declaration wins). Nodes are reported as attribute entries.
fn namespace_stream<'a>(
    store: &'a MassStore,
    ctx: &FlexKey,
    filter: NodeFilter,
) -> Result<AxisStream<'a>> {
    let mut seen: Vec<NameId> = Vec::new();
    let mut items: Vec<NodeEntry> = Vec::new();
    let mut cur = Some(ctx.clone());
    while let Some(key) = cur {
        if key.is_root() {
            break;
        }
        let mut attrs = attribute_stream(
            store,
            &key,
            NodeFilter {
                kind: KindFilter::Attribute,
                name: None,
            },
        );
        while let Some(a) = attrs.next()? {
            let Some(name_id) = a.name else { continue };
            let name = store.names().resolve(name_id);
            if (name == "xmlns" || name.starts_with("xmlns:")) && !seen.contains(&name_id) {
                seen.push(name_id);
                if filter.name.is_none_or(|n| n == name_id) {
                    items.push(a);
                }
            }
        }
        cur = key.parent();
    }
    items.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(AxisStream {
        inner: Inner::Materialized {
            items: items.into_iter(),
        },
    })
}
